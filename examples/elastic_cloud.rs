//! Elastic repartitioning: a cloud deployment scales from 8 to 12 machines
//! and Spinner adapts the partitioning instead of recomputing it (§III-E).
//!
//! ```sh
//! cargo run --release --example elastic_cloud
//! ```

use spinner::graph::conversion::to_weighted_undirected;
use spinner::graph::generators::{planted_partition, SbmConfig};
use spinner::metrics::partitioning_difference;
use spinner::prelude::*;

fn main() {
    let graph = to_weighted_undirected(&planted_partition(SbmConfig {
        n: 30_000,
        communities: 24,
        internal_degree: 12.0,
        external_degree: 3.0,
        skew: None,
        seed: 3,
    }));
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // Day 0: the graph lives on 8 machines.
    let cfg8 = SpinnerConfig::new(8).with_seed(42);
    let base = partition(&graph, &cfg8);
    println!(
        "8 machines : phi = {:.3}, rho = {:.3} ({} iterations)",
        base.quality.phi, base.quality.rho, base.iterations
    );

    // Traffic grows: scale out to 12 machines. Spinner migrates each vertex
    // with probability n/(k+n) = 4/12 (Eq. 11) and re-converges from there.
    let cfg12 = SpinnerConfig::new(12).with_seed(42);
    let grown = elastic(&graph, &base.labels, 8, &cfg12);
    let moved = partitioning_difference(&base.labels, &grown.labels);
    println!(
        "12 machines (elastic): phi = {:.3}, rho = {:.3} ({} iterations), {:.0}% of vertices moved",
        grown.quality.phi,
        grown.quality.rho,
        grown.iterations,
        100.0 * moved
    );

    // Compare against repartitioning from scratch: similar quality, but the
    // graph store would reshuffle almost everything.
    let scratch = partition(&graph, &cfg12.clone().with_seed(1234));
    let moved_scratch = partitioning_difference(&base.labels, &scratch.labels);
    println!(
        "12 machines (scratch): phi = {:.3}, rho = {:.3} ({} iterations), {:.0}% of vertices moved",
        scratch.quality.phi,
        scratch.quality.rho,
        scratch.iterations,
        100.0 * moved_scratch
    );
    println!(
        "\nelastic adaptation kept {:.0}% of vertices in place and saved {:.0}% of the messages.",
        100.0 * (1.0 - moved),
        100.0 * (1.0 - grown.totals.messages as f64 / scratch.totals.messages as f64)
    );
    println!(
        "The trade-off is real: on graphs with strong communities the adapted partitioning"
    );
    println!(
        "can settle at lower locality than a full recompute — the price of not reshuffling"
    );
    println!("the whole graph store (paper §III-E discusses exactly this balance).");

    // Scale back down to 6 machines at night.
    let cfg6 = SpinnerConfig::new(6).with_seed(42);
    let shrunk = elastic(&graph, &grown.labels, 12, &cfg6);
    println!(
        "6 machines (elastic) : phi = {:.3}, rho = {:.3}, all labels < 6: {}",
        shrunk.quality.phi,
        shrunk.quality.rho,
        shrunk.labels.iter().all(|&l| l < 6)
    );
}
