//! Quickstart: partition a graph with Spinner and inspect the quality.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spinner::graph::conversion::to_weighted_undirected;
use spinner::graph::generators::{planted_partition, SbmConfig};
use spinner::prelude::*;

fn main() {
    // 1. Get a directed graph (here: a synthetic social network with 16
    //    communities; swap in `spinner_graph::io::read_edge_list_file` for a
    //    real edge list).
    let directed = planted_partition(SbmConfig {
        n: 20_000,
        communities: 16,
        internal_degree: 10.0,
        external_degree: 2.0,
        skew: None,
        seed: 7,
    });
    println!(
        "graph: {} vertices, {} directed edges",
        directed.num_vertices(),
        directed.num_edges()
    );

    // 2. Convert to the weighted undirected form of the paper's Eq. 3 —
    //    the weights count the messages a Pregel job would exchange.
    let graph = to_weighted_undirected(&directed);

    // 3. Partition into k = 8 partitions with the paper's defaults
    //    (c = 1.05, epsilon = 0.001, w = 5).
    let cfg = SpinnerConfig::new(8).with_seed(42);
    let result = partition(&graph, &cfg);

    // 4. Inspect quality: phi = fraction of local edges, rho = max
    //    normalized load (1.0 is perfect balance).
    println!(
        "spinner: phi = {:.3}, rho = {:.3}, {} iterations, {} supersteps",
        result.quality.phi, result.quality.rho, result.iterations, result.supersteps
    );
    println!("per-partition loads: {:?}", result.quality.loads);

    // 5. The labels vector maps every vertex to its partition; feed it to
    //    `Placement::from_labels_balanced` to co-locate partitions on
    //    workers, or write it out for an external system.
    let sample: Vec<_> = result.labels.iter().take(8).collect();
    println!("first labels: {sample:?}");

    // Compare against hash partitioning to see what locality was gained.
    let hash = spinner_baselines::hash_partition(graph.num_vertices(), 8, 1);
    println!(
        "hash partitioning phi = {:.3} -> spinner improves locality {:.1}x",
        spinner_metrics::phi(&graph, &hash),
        result.quality.phi / spinner_metrics::phi(&graph, &hash)
    );
}
