//! Social-network analytics: partition a hub-heavy follower graph with
//! Spinner and run PageRank / BFS / components on the Pregel engine, with
//! partitions placed one-per-worker — the §V-F integration of the paper.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use spinner::graph::conversion::to_weighted_undirected;
use spinner::graph::generators::{rmat, RmatConfig};
use spinner::pregel::algorithms::{run_pagerank, run_sssp, run_wcc};
use spinner::pregel::sim::CostModel;
use spinner::pregel::EngineConfig;
use spinner::prelude::*;

fn main() {
    // A Twitter-like follower graph: R-MAT with Graph500 skew.
    let directed = rmat(RmatConfig::graph500(15, 16, 3));
    let graph = to_weighted_undirected(&directed);
    let k = 16u32;
    println!(
        "follower graph: {} vertices, {} edges",
        directed.num_vertices(),
        directed.num_edges()
    );

    // Partition with Spinner, then place each partition on its own worker.
    let result = partition(&graph, &SpinnerConfig::new(k).with_seed(11));
    println!(
        "spinner: phi = {:.3}, rho = {:.3} ({} iterations)",
        result.quality.phi, result.quality.rho, result.iterations
    );
    let n = directed.num_vertices();
    let spinner_placement = Placement::from_labels_balanced(&result.labels, k as usize);
    let hash_placement = Placement::hashed(n, k as usize, 5);

    let engine = EngineConfig::default();
    let cost = CostModel::default();

    // PageRank: 10 iterations, compare simulated cluster time.
    let (ranks, pr_hash) = run_pagerank(&directed, &hash_placement, engine.clone(), 10);
    let (_, pr_spin) = run_pagerank(&directed, &spinner_placement, engine.clone(), 10);
    let top = ranks.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
    println!("\nPageRank: top vertex {} with rank {:.2e}", top.0, top.1);
    report("PageRank x10", &cost, &pr_hash.metrics, &pr_spin.metrics);

    // BFS from the top hub.
    let (dist, sp_hash) = run_sssp(&directed, &hash_placement, engine.clone(), top.0 as u32);
    let (_, sp_spin) = run_sssp(&directed, &spinner_placement, engine.clone(), top.0 as u32);
    let reached = dist.iter().filter(|&&d| d != spinner_pregel::algorithms::UNREACHED).count();
    println!("\nBFS from hub: reached {reached} vertices");
    report("BFS", &cost, &sp_hash.metrics, &sp_spin.metrics);

    // Weakly connected components.
    let (comp, cc_hash) = run_wcc(&graph, &hash_placement, engine.clone());
    let (_, cc_spin) = run_wcc(&graph, &spinner_placement, engine);
    let mut ids = comp.clone();
    ids.sort_unstable();
    ids.dedup();
    println!("\nWCC: {} components", ids.len());
    report("WCC", &cost, &cc_hash.metrics, &cc_spin.metrics);
}

fn report(
    name: &str,
    cost: &CostModel,
    hash: &[spinner_pregel::SuperstepMetrics],
    spinner: &[spinner_pregel::SuperstepMetrics],
) {
    let t_hash = cost.total_seconds(hash);
    let t_spin = cost.total_seconds(spinner);
    let remote_hash: u64 = hash.iter().map(|m| m.sent_remote()).sum();
    let remote_spin: u64 = spinner.iter().map(|m| m.sent_remote()).sum();
    println!(
        "{name}: simulated cluster time {t_hash:.2}s (hash) -> {t_spin:.2}s (spinner), \
         {:.0}% less network traffic, {:.0}% faster",
        100.0 * (1.0 - remote_spin as f64 / remote_hash.max(1) as f64),
        100.0 * (1.0 - t_spin / t_hash),
    );
}
