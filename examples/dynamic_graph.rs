//! Dynamic-graph maintenance: a social network keeps gaining friendships;
//! Spinner incrementally adapts the partitioning after every batch instead
//! of recomputing it (§III-D), keeping locality high at a fraction of the
//! cost.
//!
//! ```sh
//! cargo run --release --example dynamic_graph
//! ```

use spinner::graph::conversion::from_undirected_edges;
use spinner::graph::generators::{planted_partition, SbmConfig};
use spinner::graph::mutation::{apply_delta, sample_new_edges};
use spinner::metrics::partitioning_difference;
use spinner::prelude::*;

fn main() {
    // An undirected friendship graph.
    let mut edges = planted_partition(SbmConfig {
        n: 25_000,
        communities: 20,
        internal_degree: 10.0,
        external_degree: 2.0,
        skew: None,
        seed: 9,
    });
    let k = 16u32;
    let cfg = SpinnerConfig::new(k).with_seed(42);

    let mut graph = from_undirected_edges(&edges);
    let mut current = partition(&graph, &cfg);
    println!(
        "initial    : |E|={:>8} phi = {:.3}, rho = {:.3} ({} iterations)",
        graph.num_edges(),
        current.quality.phi,
        current.quality.rho,
        current.iterations
    );

    let mut adapt_msgs: u64 = 0;
    let mut scratch_msgs: u64 = 0;
    for day in 1..=5 {
        // 1% new friendships arrive, mostly closing triangles.
        let count = (edges.num_edges() as f64 * 0.01) as usize;
        let new_edges = sample_new_edges(&edges, count, 0.8, 1000 + day);
        edges = apply_delta(&edges, &GraphDelta::additions(new_edges));
        graph = from_undirected_edges(&edges);

        let previous = current.labels.clone();
        current = adapt(&graph, &previous, &cfg);
        let moved = partitioning_difference(&previous, &current.labels);
        adapt_msgs += current.totals.messages;

        // What a from-scratch repartitioning would have cost.
        let scratch = partition(&graph, &cfg.clone().with_seed(day));
        scratch_msgs += scratch.totals.messages;

        println!(
            "day {day}: +{count} edges -> phi = {:.3}, rho = {:.3}, {} iterations, {:>4.1}% vertices moved (scratch: {} iterations)",
            current.quality.phi,
            current.quality.rho,
            current.iterations,
            100.0 * moved,
            scratch.iterations,
        );
    }
    println!(
        "\nmaintenance traffic over 5 days: {adapt_msgs} messages adaptive vs {scratch_msgs} from scratch ({:.0}% saved)",
        100.0 * (1.0 - adapt_msgs as f64 / scratch_msgs as f64)
    );
}
