//! Minimal binary codec shared by the snapshot and WAL encodings: LEB128
//! varints, fixed-width `f64` bit patterns, and a CRC-32 frame check.
//! Dependency-free by construction (the build environment vendors no serde).

use std::fmt;

/// Decoding failure: the byte stream is truncated or structurally invalid.
///
/// A `Corrupt` *tail* of a write-ahead log is expected after a crash and is
/// handled by truncating to the last whole record; corruption anywhere else
/// is surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptError {
    /// What the decoder was reading when the bytes ran out or mismatched.
    pub context: &'static str,
}

impl fmt::Display for CorruptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt or truncated encoding while reading {}", self.context)
    }
}

impl std::error::Error for CorruptError {}

/// Shorthand for codec results.
pub type Result<T> = std::result::Result<T, CorruptError>;

/// Append-only byte sink with varint primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `value` as an LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an `f64` as its fixed 8-byte little-endian bit pattern
    /// (bit-exact round trip; varints would mangle NaN payloads and cost
    /// more for typical doubles anyway).
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Forward-only reader over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads an LEB128 varint appended by [`ByteWriter::put_varint`].
    pub fn varint(&mut self, context: &'static str) -> Result<u64> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(CorruptError { context })?;
            self.pos += 1;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CorruptError { context })
    }

    /// Reads a fixed 8-byte `f64` appended by [`ByteWriter::put_f64`].
    pub fn f64(&mut self, context: &'static str) -> Result<f64> {
        let end = self.pos.checked_add(8).ok_or(CorruptError { context })?;
        let bytes = self.buf.get(self.pos..end).ok_or(CorruptError { context })?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    /// Reads one raw byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        let byte = *self.buf.get(self.pos).ok_or(CorruptError { context })?;
        self.pos += 1;
        Ok(byte)
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the frame check appended to every snapshot
/// and WAL record so a torn or bit-rotted tail is detected on resume.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let values =
            [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint("test").expect("decodes"), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        let values = [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY, f64::NAN];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.f64("test").expect("decodes").to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_varint(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(r.varint("test").is_err());
        let mut r = ByteReader::new(&[0xFF; 11]);
        assert!(r.varint("test").is_err(), "over-long varint accepted");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
