//! Binary codec used by the snapshot and WAL encodings.
//!
//! The implementation lives in [`spinner_pregel::codec`] since the engine's
//! wire format ([`spinner_pregel::wire`]) shares the same LEB128 varint and
//! CRC-32 primitives; this module re-exports it so every pre-existing
//! `spinner_serving::codec::…` path (and the serving test suite pinning the
//! encoding) keeps working unchanged.

pub use spinner_pregel::codec::{crc32, ByteReader, ByteWriter, CorruptError, Result};
