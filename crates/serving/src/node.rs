//! The serving front-end: one ingest thread owns a [`ServingNode`] and
//! applies stream windows; any number of lookup threads hold cloned
//! [`RoutingReader`]s and answer "which worker hosts vertex v?" without
//! locks.
//!
//! Persistence failures do not stop serving. The node runs a three-state
//! health machine:
//!
//! - **Healthy** — every window's record reaches the WAL (with bounded
//!   retry + exponential backoff on transient faults) before the epoch is
//!   published.
//! - **Degraded** — an append failed past its retries. The WAL now misses
//!   at least one window, so appending later windows would leave a gap a
//!   resume would misread; instead each subsequent ingest attempts a full
//!   re-checkpoint ([`SessionStore::compact`]), which resynchronises the
//!   snapshot past the gap and returns the node to Healthy. Throughout,
//!   epochs keep publishing and lookups keep serving — routing never
//!   depends on the store.
//! - **Poisoned** — the degraded recovery failed
//!   [`RetryPolicy::max_degraded_windows`] windows in a row. The store is
//!   dropped (resuming its directory recovers the last fully persisted
//!   window) and the node serves on, non-persistent, reporting the state so
//!   an operator can re-attach storage deliberately.

use std::io;
use std::path::Path;
use std::time::Duration;

use spinner_core::{StreamEvent, StreamSession, WindowReport};
use spinner_graph::VertexId;
use spinner_pregel::WorkerId;

use crate::fault::Storage;
use crate::persist::{PersistError, ResumeStats, SessionStore};
use crate::routing::{Lookup, RoutingReader, RoutingTable};
use crate::wal::WalRecord;

/// Persistence health of a [`ServingNode`] (see the module docs for the
/// state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Every applied window is durably logged.
    Healthy,
    /// At least one window is not persisted; each ingest retries a full
    /// re-checkpoint while serving continues from memory.
    Degraded,
    /// Persistence was abandoned after repeated degraded-mode failures; the
    /// node serves on without a store.
    Poisoned,
}

/// How a [`ServingNode`] retries failed storage operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per storage operation, including the first (min 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry. Zero
    /// disables sleeping (useful in tests).
    pub base_backoff: Duration,
    /// Consecutive windows the node may spend Degraded (failing to persist)
    /// before it gives up on the store and poisons.
    pub max_degraded_windows: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { attempts: 3, base_backoff: Duration::from_millis(1), max_degraded_windows: 8 }
    }
}

/// Runs `op` under `policy`, counting extra attempts into `retries`.
fn with_retry<T>(
    policy: &RetryPolicy,
    retries: &mut u32,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut delay = policy.base_backoff;
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                attempt += 1;
                if attempt >= policy.attempts.max(1) {
                    return Err(e);
                }
                *retries += 1;
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                delay = delay.saturating_mul(2);
            }
        }
    }
}

/// What one [`ServingNode::ingest`] call did, for callers that meter the
/// write path.
#[derive(Debug, Clone)]
pub struct IngestReport {
    epoch: u64,
    record_bytes: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    health: Health,
    persist_retries: u32,
    report: WindowReport,
}

impl IngestReport {
    /// The routing epoch published for this window (equals the session's
    /// window count).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Framed bytes this window appended to the WAL (0 when the node runs
    /// without persistence, and 0 for a Degraded-mode window recovered by a
    /// re-checkpoint — the window lands in the snapshot, not the log).
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// Total WAL size after the append (0 without persistence).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Current snapshot size (0 without persistence).
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// Persistence health after this window.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Storage retries this ingest performed beyond first attempts.
    pub fn persist_retries(&self) -> u32 {
        self.persist_retries
    }

    /// The partition-quality report the session produced for this window.
    pub fn report(&self) -> &WindowReport {
        &self.report
    }
}

/// A partition-serving node: a [`StreamSession`] that repartitions as the
/// graph changes, an epoch-versioned [`RoutingTable`] that publishes where
/// every vertex lives, and (optionally) a [`SessionStore`] that makes the
/// whole thing restartable.
///
/// Threading model: exactly one thread calls [`ingest`](Self::ingest);
/// lookup threads each clone a [`RoutingReader`] once and call
/// [`RoutingReader::lookup`] freely — reads are wait-free against the
/// writer and never observe a torn table.
pub struct ServingNode {
    session: StreamSession,
    table: RoutingTable,
    store: Option<SessionStore>,
    health: Health,
    retry: RetryPolicy,
    /// Consecutive windows spent Degraded (0 unless Degraded).
    degraded_windows: u32,
    /// Windows applied to the live session but not yet persisted (reset by
    /// a successful re-checkpoint; frozen once Poisoned).
    unpersisted_windows: u64,
    /// Windows in which the session's transport declared a lane dead and
    /// escalated into worker-loss recovery (see
    /// [`Self::transport_recoveries`]).
    transport_recoveries: u64,
}

impl ServingNode {
    /// Wraps `session` for serving without persistence. The session's
    /// current placement is published immediately, so lookups work before
    /// the first ingest.
    pub fn new(session: StreamSession) -> Self {
        let mut table =
            RoutingTable::with_capacity(session.placement().as_slice().len() as u32);
        table.publish_at(session.windows().len() as u64, session.placement().as_slice());
        Self {
            session,
            table,
            store: None,
            health: Health::Healthy,
            retry: RetryPolicy::default(),
            degraded_windows: 0,
            unpersisted_windows: 0,
            transport_recoveries: 0,
        }
    }

    /// Wraps `session` for serving and starts a fresh store at `dir`
    /// (snapshot of the current state, empty WAL).
    pub fn with_persistence(
        session: StreamSession,
        dir: impl AsRef<Path>,
    ) -> Result<Self, PersistError> {
        let store = SessionStore::create(dir, &session.state())?;
        let mut node = Self::new(session);
        node.store = Some(store);
        Ok(node)
    }

    /// Like [`Self::with_persistence`], over an arbitrary [`Storage`]
    /// backend — an in-memory one, or a fault-injecting wrapper.
    pub fn with_storage(
        session: StreamSession,
        storage: Box<dyn Storage>,
    ) -> Result<Self, PersistError> {
        let store = SessionStore::create_on(storage, &session.state())?;
        let mut node = Self::new(session);
        node.store = Some(store);
        Ok(node)
    }

    /// Restarts a node from `dir`: loads the snapshot, replays the WAL
    /// (dropping a torn tail — [`ResumeStats::truncated_bytes`] says how
    /// much was lost), rebuilds the warm session, and publishes the
    /// recovered placement. Labels and placement are bit-identical to the
    /// node that wrote the store.
    pub fn resume_from(dir: impl AsRef<Path>) -> Result<(Self, ResumeStats), PersistError> {
        let (state, store, stats) = SessionStore::load(dir)?;
        Ok((Self::resumed(state, store), stats))
    }

    /// Like [`Self::resume_from`], over an arbitrary [`Storage`] backend.
    pub fn resume_from_storage(
        storage: Box<dyn Storage>,
    ) -> Result<(Self, ResumeStats), PersistError> {
        let (state, store, stats) = SessionStore::load_on(storage)?;
        Ok((Self::resumed(state, store), stats))
    }

    fn resumed(state: spinner_core::SessionState, store: SessionStore) -> Self {
        let session = StreamSession::from_state(state);
        let mut node = Self::new(session);
        node.store = Some(store);
        node
    }

    /// Replaces the retry/degradation policy (builder-style).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Current persistence health.
    pub fn health(&self) -> Health {
        self.health
    }

    /// Windows applied to the live session but not persisted (0 when
    /// Healthy; frozen at its last value once Poisoned).
    pub fn unpersisted_windows(&self) -> u64 {
        self.unpersisted_windows
    }

    /// Applies one stream window: repartitions, persists the window (when a
    /// store is attached), then publishes the new placement as the next
    /// routing epoch. Readers flip to the new epoch atomically; until then
    /// they serve the previous one.
    ///
    /// Persistence faults never block serving: the epoch is published and
    /// the report returned regardless, with [`IngestReport::health`] saying
    /// where the window's bytes stand. A Healthy append is retried under
    /// the [`RetryPolicy`] (safe: a duplicate from an ambiguous failure is
    /// skipped on load by window number); on exhaustion the node turns
    /// Degraded and each subsequent ingest attempts a full re-checkpoint
    /// instead, which heals the WAL gap and restores Healthy.
    ///
    /// # Errors
    ///
    /// Only the transition to [`Health::Poisoned`] — degraded recovery
    /// failing [`RetryPolicy::max_degraded_windows`] windows in a row —
    /// returns the final storage error; the store is dropped (resuming the
    /// directory recovers the last persisted window) and the node keeps
    /// serving without one.
    pub fn ingest(&mut self, event: StreamEvent) -> Result<IngestReport, PersistError> {
        let before = self.store.as_ref().map(|_| self.session.state());
        let report = self.session.apply(event.clone()).clone();
        if report.lanes_dead() > 0 {
            // The session already ran worker-loss recovery for the dead
            // lane(s) inside `apply` — the node just counts it, and the
            // recovered placement is published below like any window.
            self.transport_recoveries += 1;
        }
        let mut record_bytes = 0;
        let mut retries = 0u32;
        let mut failure: Option<io::Error> = None;
        if self.store.is_some() {
            match self.health {
                Health::Healthy => {
                    let after = self.session.state();
                    let record =
                        WalRecord::diff(before.as_ref().expect("captured"), &after, event);
                    let store = self.store.as_mut().expect("store checked above");
                    match with_retry(&self.retry, &mut retries, || store.append(&record)) {
                        Ok(bytes) => record_bytes = bytes,
                        Err(e) => {
                            self.health = Health::Degraded;
                            self.degraded_windows = 1;
                            self.unpersisted_windows += 1;
                            failure = Some(e);
                        }
                    }
                }
                Health::Degraded => {
                    // The WAL already misses >= 1 window; appending would
                    // leave a gap, so recover via a full re-checkpoint.
                    if let Err(e) = self.heal(&mut retries) {
                        self.degraded_windows += 1;
                        self.unpersisted_windows += 1;
                        failure = Some(e);
                    }
                }
                Health::Poisoned => unreachable!("poisoned nodes hold no store"),
            }
        }
        let poisoned =
            failure.is_some() && self.degraded_windows > self.retry.max_degraded_windows;
        if poisoned {
            self.health = Health::Poisoned;
            self.store = None;
            self.degraded_windows = 0;
        }
        let epoch = self.session.windows().len() as u64;
        self.table.publish_at(epoch, self.session.placement().as_slice());
        if poisoned {
            return Err(failure.expect("poisoning requires a failure").into());
        }
        Ok(IngestReport {
            epoch,
            record_bytes,
            wal_bytes: self.store.as_ref().map_or(0, SessionStore::wal_bytes),
            snapshot_bytes: self.store.as_ref().map_or(0, SessionStore::snapshot_bytes),
            health: self.health,
            persist_retries: retries,
            report,
        })
    }

    /// Reports that worker `w`'s hosted partition state was lost, running a
    /// [`StreamEvent::WorkerLoss`] recovery window: the lost vertices are
    /// reseeded and re-converged warm, the whole graph is re-placed by
    /// computed label, and the recovered placement is published as the next
    /// epoch. Lookups keep serving the previous epoch throughout.
    pub fn report_worker_loss(&mut self, w: WorkerId) -> Result<IngestReport, PersistError> {
        self.ingest(StreamEvent::WorkerLoss { worker: w })
    }

    /// The single degraded-heal path, shared by [`Self::ingest`],
    /// [`Self::try_recover`] and [`Self::compact`]: re-checkpoint the
    /// current session state and, **only once the compact has succeeded**,
    /// reset the health machine. The order is load-bearing — zeroing
    /// `unpersisted_windows` (or flipping Healthy) before the compact lands
    /// would erase the evidence of the WAL gap on a failed heal, so a later
    /// poisoning or operator probe would report a clean store that silently
    /// misses windows.
    fn heal(&mut self, retries: &mut u32) -> io::Result<()> {
        let state = self.session.state();
        let store = self.store.as_mut().expect("heal requires a store");
        with_retry(&self.retry, retries, || store.compact(&state))?;
        self.health = Health::Healthy;
        self.degraded_windows = 0;
        self.unpersisted_windows = 0;
        Ok(())
    }

    /// Attempts to heal a Degraded node *now* (instead of at the next
    /// ingest) by re-checkpointing the current state. Returns the health
    /// afterwards; a no-op when Healthy or Poisoned. A failed attempt
    /// leaves the health state and [`Self::unpersisted_windows`] untouched.
    pub fn try_recover(&mut self) -> Health {
        if self.health == Health::Degraded && self.store.is_some() {
            let mut retries = 0;
            let _ = self.heal(&mut retries);
        }
        self.health
    }

    /// Folds the WAL into a fresh snapshot, bounding restart time. No-op
    /// without persistence; on a Degraded node a success doubles as
    /// recovery (it persists exactly the state the WAL is missing). Runs
    /// under the [`RetryPolicy`]; a final failure propagates with the
    /// health counters intact.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        if self.store.is_some() {
            let mut retries = 0;
            self.heal(&mut retries)?;
        }
        Ok(())
    }

    /// A wait-free routing handle to hand to a lookup thread.
    pub fn reader(&self) -> RoutingReader {
        self.table.reader()
    }

    /// Convenience single lookup through a fresh reader.
    pub fn lookup(&self, v: VertexId) -> Option<Lookup> {
        self.table.reader().lookup(v)
    }

    /// The currently published routing epoch.
    pub fn epoch(&self) -> u64 {
        self.table.head()
    }

    /// Windows whose ingest recovered from a transport lane death: the
    /// session's reliable layer exhausted its retry budget on a lane,
    /// declared it dead, and escalated into the worker-loss recovery path
    /// — lookups kept serving the previous epoch throughout. 0 on a
    /// healthy wire.
    pub fn transport_recoveries(&self) -> u64 {
        self.transport_recoveries
    }

    /// Installs a scripted transport fault plan on the live session (chaos
    /// testing; see [`spinner_core::StreamSession::inject_transport_faults`]).
    /// Transient apparatus — never persisted.
    pub fn inject_transport_faults(&mut self, plan: spinner_pregel::TransportFaultPlan) {
        self.session.inject_transport_faults(plan);
    }

    /// The underlying session, for labels / windows / quality inspection.
    pub fn session(&self) -> &StreamSession {
        &self.session
    }

    /// The routing table, for its allocation / retry counters.
    pub fn routing(&self) -> &RoutingTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan, FaultyStorage, MemStorage};
    use spinner_core::SpinnerConfig;
    use spinner_graph::{DirectedGraph, GraphBuilder, GraphDelta};

    fn ring(n: u32) -> DirectedGraph {
        GraphBuilder::new(n).add_edges((0..n).map(|v| (v, (v + 1) % n))).build()
    }

    fn cfg(k: u32) -> SpinnerConfig {
        SpinnerConfig { seed: 7, max_iterations: 12, ..SpinnerConfig::new(k) }
    }

    fn delta(i: u32, n: u32) -> StreamEvent {
        StreamEvent::Delta(GraphDelta {
            new_vertices: 5,
            added_edges: vec![(i % n, n + i * 5)],
            removed_edges: vec![],
        })
    }

    fn fast_retry(attempts: u32, max_degraded_windows: u32) -> RetryPolicy {
        RetryPolicy { attempts, base_backoff: Duration::ZERO, max_degraded_windows }
    }

    #[test]
    fn node_serves_the_session_placement() {
        let session = StreamSession::new(ring(400), cfg(4));
        let node = ServingNode::new(session);
        assert_eq!(node.epoch(), 1, "bootstrap window is epoch 1");
        assert_eq!(node.health(), Health::Healthy);
        let placement = node.session().placement().as_slice().to_vec();
        let reader = node.reader();
        for (v, &w) in placement.iter().enumerate() {
            let hit = reader.lookup(v as u32).expect("published");
            assert_eq!(hit.worker(), w);
            assert_eq!(hit.epoch(), 1);
        }
        assert!(reader.lookup(placement.len() as u32).is_none(), "past-end lookup misses");
    }

    #[test]
    fn ingest_advances_the_epoch_and_routing() {
        let session = StreamSession::new(ring(300), cfg(3));
        let mut node = ServingNode::new(session);
        let delta = GraphDelta {
            new_vertices: 20,
            added_edges: vec![(0, 305), (300, 310)],
            removed_edges: vec![],
        };
        let report = node.ingest(StreamEvent::Delta(delta)).expect("no persistence, no I/O");
        assert_eq!(report.epoch(), 2);
        assert_eq!(node.epoch(), 2);
        assert_eq!(report.record_bytes(), 0, "no store attached");
        assert_eq!(report.health(), Health::Healthy);
        let placement = node.session().placement().as_slice().to_vec();
        assert_eq!(placement.len(), 320);
        let reader = node.reader();
        for (v, &w) in placement.iter().enumerate() {
            assert_eq!(reader.lookup(v as u32).expect("published").worker(), w);
        }
    }

    #[test]
    fn persistent_node_restarts_bit_identical() {
        let dir = std::env::temp_dir().join(format!("spinner-node-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut live = {
            let session = StreamSession::new(ring(500), cfg(4));
            ServingNode::with_persistence(session, &dir).expect("create store")
        };
        for i in 0..3u32 {
            let delta = GraphDelta {
                new_vertices: 10,
                added_edges: vec![(i, 500 + i * 10), (i * 7 % 500, 501 + i * 10)],
                removed_edges: vec![],
            };
            let rep = live.ingest(StreamEvent::Delta(delta)).expect("append");
            assert!(rep.record_bytes() > 0);
            assert!(rep.wal_bytes() > 0);
        }

        let (resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 3);
        assert!(!stats.truncated_tail);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(resumed.epoch(), live.epoch());
        assert_eq!(resumed.session().labels(), live.session().labels());
        assert_eq!(
            resumed.session().placement().as_slice(),
            live.session().placement().as_slice()
        );

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn resume_skips_stale_wal_after_crash_mid_compact() {
        let dir =
            std::env::temp_dir().join(format!("spinner-midcompact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let session = StreamSession::new(ring(300), cfg(3));
        let mut node = ServingNode::with_persistence(session, &dir).expect("create store");
        for i in 0..3u32 {
            node.ingest(delta(i, 300)).expect("ingest");
        }
        let labels = node.session().labels().to_vec();
        let epoch = node.epoch();

        // Simulate compact() dying between the snapshot rename and the WAL
        // truncation: fresh snapshot on disk, full stale WAL left behind.
        let snapshot = crate::snapshot::encode_state(&node.session().state());
        drop(node);
        std::fs::write(dir.join(crate::persist::SNAPSHOT_FILE), snapshot).expect("snapshot");

        let (mut resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "every record predates the snapshot");
        assert_eq!(stats.skipped_windows, 3);
        assert_eq!(resumed.epoch(), epoch);
        assert_eq!(resumed.session().labels(), labels.as_slice());

        // The store stays appendable: a further window and a second resume
        // replay exactly that window on top of the skipped prefix.
        resumed.ingest(delta(7, 315)).expect("ingest after resume");
        let labels = resumed.session().labels().to_vec();
        drop(resumed);
        let (again, stats) = ServingNode::resume_from(&dir).expect("second resume");
        assert_eq!(stats.skipped_windows, 3);
        assert_eq!(stats.replayed_windows, 1);
        assert_eq!(again.session().labels(), labels.as_slice());

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn compact_folds_wal_into_snapshot() {
        let dir = std::env::temp_dir().join(format!("spinner-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let session = StreamSession::new(ring(200), cfg(2));
        let mut node = ServingNode::with_persistence(session, &dir).expect("create store");
        node.ingest(delta(1, 200)).expect("ingest");
        node.ingest(StreamEvent::Resize { k: 3 }).expect("ingest");
        let labels = node.session().labels().to_vec();
        node.compact().expect("compact");

        let (resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "WAL was folded in");
        assert_eq!(resumed.session().labels(), labels.as_slice());

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn transient_append_fault_is_retried_transparently() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(200), cfg(2));
        // Ops 0–1 are the store creation; op 2 is the first append, which
        // fails once — the retry (op 3) goes through clean.
        let storage = FaultyStorage::new(disk.clone(), FaultPlan::new().fail(2, Fault::Full));
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(3, 8));
        let rep = node.ingest(delta(0, 200)).expect("ingest");
        assert_eq!(rep.health(), Health::Healthy);
        assert_eq!(rep.persist_retries(), 1);
        assert!(rep.record_bytes() > 0);

        let labels = node.session().labels().to_vec();
        drop(node);
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        assert_eq!(stats.replayed_windows, 1);
        assert_eq!(resumed.session().labels(), labels.as_slice());
    }

    #[test]
    fn ambiguous_append_retry_is_idempotent_on_resume() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(200), cfg(2));
        // SyncFailed lands the record but reports failure; the retry
        // appends a duplicate. Resume must skip the duplicate by window
        // number and reconstruct the exact same state.
        let storage =
            FaultyStorage::new(disk.clone(), FaultPlan::new().fail(2, Fault::SyncFailed));
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(3, 8));
        let rep = node.ingest(delta(0, 200)).expect("ingest");
        assert_eq!(rep.health(), Health::Healthy);
        assert_eq!(rep.persist_retries(), 1);

        let labels = node.session().labels().to_vec();
        let windows = node.session().windows().len();
        drop(node);
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        assert_eq!(stats.replayed_windows, 1, "first copy applies");
        assert_eq!(stats.skipped_windows, 1, "duplicate copy is skipped");
        assert_eq!(resumed.session().labels(), labels.as_slice());
        assert_eq!(resumed.session().windows().len(), windows);
    }

    #[test]
    fn degraded_node_keeps_serving_then_recovers_by_recheckpoint() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(300), cfg(3));
        // First append fails through all 2 attempts (ops 2–3) → Degraded.
        let plan = FaultPlan::new().fail(2, Fault::Full).fail(3, Fault::Full);
        let storage = FaultyStorage::new(disk.clone(), plan);
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(2, 8));

        let rep = node.ingest(delta(0, 300)).expect("degraded, not fatal");
        assert_eq!(rep.health(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 1);
        assert_eq!(rep.epoch(), 2, "epoch still published");
        assert!(node.lookup(0).is_some(), "serving continues while degraded");

        // Next ingest re-checkpoints (faults exhausted) and heals.
        let rep = node.ingest(delta(1, 305)).expect("recovered");
        assert_eq!(rep.health(), Health::Healthy);
        assert_eq!(node.unpersisted_windows(), 0);
        assert_eq!(rep.record_bytes(), 0, "recovery re-checkpoints instead of appending");
        assert_eq!(rep.epoch(), 3);

        // Both windows — including the one that never hit the WAL — are in
        // the re-checkpointed snapshot.
        let labels = node.session().labels().to_vec();
        drop(node);
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "snapshot carries everything");
        assert_eq!(resumed.session().labels(), labels.as_slice());
        assert_eq!(resumed.session().windows().len(), 3);
    }

    #[test]
    fn failed_heal_compact_keeps_the_degraded_evidence() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(300), cfg(3));
        // Ops 0-1 create the store. Op 2 (first append) fails → Degraded.
        // Op 3 is the heal's snapshot write — fail it too, so the
        // re-checkpoint dies before anything lands.
        let plan = FaultPlan::new().fail(2, Fault::Full).fail(3, Fault::Full);
        let storage = FaultyStorage::new(disk.clone(), plan);
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(1, 8));

        let rep = node.ingest(delta(0, 300)).expect("degraded, not fatal");
        assert_eq!(rep.health(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 1);

        // The heal fails: the node must still know it is Degraded and must
        // still count BOTH unpersisted windows — a heal that zeroed the
        // counter before compacting would report a clean store here.
        let rep = node.ingest(delta(1, 305)).expect("failed heal is not fatal");
        assert_eq!(rep.health(), Health::Degraded);
        assert_eq!(node.health(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 2);
        assert_eq!(rep.record_bytes(), 0, "nothing was appended");
        assert_eq!(rep.epoch(), 3, "serving publishes regardless");
        assert!(node.lookup(0).is_some());

        // Faults exhausted: the next ingest's heal lands and resets the
        // machine, and the re-checkpoint carries every window.
        let rep = node.ingest(delta(2, 310)).expect("healed");
        assert_eq!(rep.health(), Health::Healthy);
        assert_eq!(node.unpersisted_windows(), 0);
        let labels = node.session().labels().to_vec();
        drop(node);
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "snapshot carries everything");
        assert_eq!(resumed.session().labels(), labels.as_slice());
        assert_eq!(resumed.session().windows().len(), 4);
    }

    #[test]
    fn failed_heal_between_snapshot_and_truncate_stays_degraded() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(300), cfg(3));
        // Op 2: append fails → Degraded. Op 3 (heal snapshot write)
        // succeeds, op 4 (heal WAL truncate) fails: the compact as a whole
        // failed, so the node must NOT report Healthy even though the
        // snapshot happens to be current.
        let plan = FaultPlan::new().fail(2, Fault::Full).fail(4, Fault::Full);
        let storage = FaultyStorage::new(disk.clone(), plan);
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(1, 8));

        node.ingest(delta(0, 300)).expect("degraded");
        assert_eq!(node.health(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 1);

        // Direct recovery attempt fails mid-compact: counters survive.
        assert_eq!(node.try_recover(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 1);

        // Second attempt (faults exhausted) heals and zeroes the counter.
        assert_eq!(node.try_recover(), Health::Healthy);
        assert_eq!(node.unpersisted_windows(), 0);
    }

    #[test]
    fn public_compact_failure_propagates_and_keeps_counters() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(200), cfg(2));
        // Op 2: append fails → Degraded; op 3: compact's snapshot write
        // fails → the explicit compact() call must error without touching
        // the health machine.
        let plan = FaultPlan::new().fail(2, Fault::Full).fail(3, Fault::Full);
        let storage = FaultyStorage::new(disk.clone(), plan);
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(1, 8));

        node.ingest(delta(0, 200)).expect("degraded");
        assert_eq!(node.health(), Health::Degraded);
        node.compact().expect_err("compact fault propagates");
        assert_eq!(node.health(), Health::Degraded);
        assert_eq!(node.unpersisted_windows(), 1);
        node.compact().expect("faults exhausted");
        assert_eq!(node.health(), Health::Healthy);
        assert_eq!(node.unpersisted_windows(), 0);
    }

    #[test]
    fn dead_storage_poisons_after_the_grace_window_and_serving_survives() {
        let disk = MemStorage::new();
        let session = StreamSession::new(ring(300), cfg(3));
        // Storage dies at the first append; nothing ever succeeds again.
        let storage = FaultyStorage::new(disk.clone(), FaultPlan::kill_at(2));
        let mut node = ServingNode::with_storage(session, Box::new(storage))
            .expect("create")
            .with_retry_policy(fast_retry(2, 1));

        assert_eq!(
            node.ingest(delta(0, 300)).expect("first failure degrades").health(),
            Health::Degraded
        );
        let err = node.ingest(delta(1, 305)).expect_err("grace exhausted poisons");
        assert!(matches!(err, PersistError::Io(_)));
        assert_eq!(node.health(), Health::Poisoned);
        assert_eq!(node.unpersisted_windows(), 2);

        // Poisoned ≠ dead: epochs advance and lookups serve, store-free.
        let rep = node.ingest(delta(2, 310)).expect("poisoned node serves on");
        assert_eq!(rep.health(), Health::Poisoned);
        assert_eq!(rep.epoch(), 4);
        assert!(node.lookup(10).is_some());

        // The store directory still resumes to the last persisted state —
        // the bootstrap snapshot, since no append ever landed.
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        assert_eq!(stats.replayed_windows, 0);
        assert_eq!(resumed.session().windows().len(), 1);
    }

    #[test]
    fn worker_loss_recovers_and_republishes() {
        let mut cfg = cfg(4);
        cfg.num_workers = 8;
        let session = StreamSession::new(ring(600), cfg);
        let mut node = ServingNode::new(session);
        let lost: WorkerId = 3;
        let hosted =
            node.session().placement().as_slice().iter().filter(|&&w| w == lost).count() as u64;
        assert!(hosted > 0, "worker 3 hosts nothing; test graph too small");

        let rep = node.report_worker_loss(lost).expect("no store");
        assert_eq!(rep.epoch(), 2);
        assert!(rep.report().is_recovery());
        assert_eq!(rep.report().lost_vertices(), hosted);
        // The published routing matches the recovered placement exactly.
        let placement = node.session().placement().as_slice().to_vec();
        let reader = node.reader();
        for (v, &w) in placement.iter().enumerate() {
            let hit = reader.lookup(v as u32).expect("published");
            assert_eq!(hit.worker(), w);
            assert_eq!(hit.epoch(), 2);
        }
    }
}
