//! The serving front-end: one ingest thread owns a [`ServingNode`] and
//! applies stream windows; any number of lookup threads hold cloned
//! [`RoutingReader`]s and answer "which worker hosts vertex v?" without
//! locks.

use std::path::Path;

use spinner_core::{StreamEvent, StreamSession, WindowReport};
use spinner_graph::VertexId;

use crate::persist::{PersistError, ResumeStats, SessionStore};
use crate::routing::{Lookup, RoutingReader, RoutingTable};
use crate::wal::WalRecord;

/// What one [`ServingNode::ingest`] call did, for callers that meter the
/// write path.
#[derive(Debug, Clone)]
pub struct IngestReport {
    epoch: u64,
    record_bytes: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    report: WindowReport,
}

impl IngestReport {
    /// The routing epoch published for this window (equals the session's
    /// window count).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Framed bytes this window appended to the WAL (0 when the node runs
    /// without persistence).
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// Total WAL size after the append (0 without persistence).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Current snapshot size (0 without persistence).
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }

    /// The partition-quality report the session produced for this window.
    pub fn report(&self) -> &WindowReport {
        &self.report
    }
}

/// A partition-serving node: a [`StreamSession`] that repartitions as the
/// graph changes, an epoch-versioned [`RoutingTable`] that publishes where
/// every vertex lives, and (optionally) a [`SessionStore`] that makes the
/// whole thing restartable.
///
/// Threading model: exactly one thread calls [`ingest`](Self::ingest);
/// lookup threads each clone a [`RoutingReader`] once and call
/// [`RoutingReader::lookup`] freely — reads are wait-free against the
/// writer and never observe a torn table.
pub struct ServingNode {
    session: StreamSession,
    table: RoutingTable,
    store: Option<SessionStore>,
}

impl ServingNode {
    /// Wraps `session` for serving without persistence. The session's
    /// current placement is published immediately, so lookups work before
    /// the first ingest.
    pub fn new(session: StreamSession) -> Self {
        let mut table =
            RoutingTable::with_capacity(session.placement().as_slice().len() as u32);
        table.publish_at(session.windows().len() as u64, session.placement().as_slice());
        Self { session, table, store: None }
    }

    /// Wraps `session` for serving and starts a fresh store at `dir`
    /// (snapshot of the current state, empty WAL).
    pub fn with_persistence(
        session: StreamSession,
        dir: impl AsRef<Path>,
    ) -> Result<Self, PersistError> {
        let store = SessionStore::create(dir, &session.state())?;
        let mut node = Self::new(session);
        node.store = Some(store);
        Ok(node)
    }

    /// Restarts a node from `dir`: loads the snapshot, replays the WAL
    /// (dropping a torn tail), rebuilds the warm session, and publishes the
    /// recovered placement. Labels and placement are bit-identical to the
    /// node that wrote the store.
    pub fn resume_from(dir: impl AsRef<Path>) -> Result<(Self, ResumeStats), PersistError> {
        let (state, store, stats) = SessionStore::load(dir)?;
        let session = StreamSession::from_state(state);
        let mut node = Self::new(session);
        node.store = Some(store);
        Ok((node, stats))
    }

    /// Applies one stream window: repartitions, logs the state delta to the
    /// WAL (when persistent), then publishes the new placement as the next
    /// routing epoch. Readers flip to the new epoch atomically; until then
    /// they serve the previous one.
    ///
    /// # Errors
    ///
    /// A failed WAL append ends persistence for the run: the session has
    /// already advanced past what the log holds, so any later append would
    /// leave a gap a resume would misread. The store is dropped (a
    /// [`Self::resume_from`] of the directory recovers the last fully
    /// logged window), the new epoch is still published so serving stays
    /// consistent with the live session, and the error is returned.
    pub fn ingest(&mut self, event: StreamEvent) -> Result<IngestReport, PersistError> {
        let before = self.store.as_ref().map(|_| self.session.state());
        let report = self.session.apply(event.clone()).clone();
        let mut record_bytes = 0;
        if let Some(store) = &mut self.store {
            let record = WalRecord::diff(
                before.as_ref().expect("captured"),
                &self.session.state(),
                event,
            );
            match store.append(&record) {
                Ok(bytes) => record_bytes = bytes,
                Err(e) => {
                    self.store = None;
                    let epoch = self.session.windows().len() as u64;
                    self.table.publish_at(epoch, self.session.placement().as_slice());
                    return Err(e.into());
                }
            }
        }
        let epoch = self.session.windows().len() as u64;
        self.table.publish_at(epoch, self.session.placement().as_slice());
        Ok(IngestReport {
            epoch,
            record_bytes,
            wal_bytes: self.store.as_ref().map_or(0, SessionStore::wal_bytes),
            snapshot_bytes: self.store.as_ref().map_or(0, SessionStore::snapshot_bytes),
            report,
        })
    }

    /// Folds the WAL into a fresh snapshot, bounding restart time. No-op
    /// without persistence.
    pub fn compact(&mut self) -> Result<(), PersistError> {
        if let Some(store) = &mut self.store {
            store.compact(&self.session.state())?;
        }
        Ok(())
    }

    /// A wait-free routing handle to hand to a lookup thread.
    pub fn reader(&self) -> RoutingReader {
        self.table.reader()
    }

    /// Convenience single lookup through a fresh reader.
    pub fn lookup(&self, v: VertexId) -> Option<Lookup> {
        self.table.reader().lookup(v)
    }

    /// The currently published routing epoch.
    pub fn epoch(&self) -> u64 {
        self.table.head()
    }

    /// The underlying session, for labels / windows / quality inspection.
    pub fn session(&self) -> &StreamSession {
        &self.session
    }

    /// The routing table, for its allocation / retry counters.
    pub fn routing(&self) -> &RoutingTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_core::SpinnerConfig;
    use spinner_graph::{DirectedGraph, GraphBuilder, GraphDelta};

    fn ring(n: u32) -> DirectedGraph {
        GraphBuilder::new(n).add_edges((0..n).map(|v| (v, (v + 1) % n))).build()
    }

    fn cfg(k: u32) -> SpinnerConfig {
        SpinnerConfig { seed: 7, max_iterations: 12, ..SpinnerConfig::new(k) }
    }

    #[test]
    fn node_serves_the_session_placement() {
        let session = StreamSession::new(ring(400), cfg(4));
        let node = ServingNode::new(session);
        assert_eq!(node.epoch(), 1, "bootstrap window is epoch 1");
        let placement = node.session().placement().as_slice().to_vec();
        let reader = node.reader();
        for (v, &w) in placement.iter().enumerate() {
            let hit = reader.lookup(v as u32).expect("published");
            assert_eq!(hit.worker(), w);
            assert_eq!(hit.epoch(), 1);
        }
        assert!(reader.lookup(placement.len() as u32).is_none(), "past-end lookup misses");
    }

    #[test]
    fn ingest_advances_the_epoch_and_routing() {
        let session = StreamSession::new(ring(300), cfg(3));
        let mut node = ServingNode::new(session);
        let delta = GraphDelta {
            new_vertices: 20,
            added_edges: vec![(0, 305), (300, 310)],
            removed_edges: vec![],
        };
        let report = node.ingest(StreamEvent::Delta(delta)).expect("no persistence, no I/O");
        assert_eq!(report.epoch(), 2);
        assert_eq!(node.epoch(), 2);
        assert_eq!(report.record_bytes(), 0, "no store attached");
        let placement = node.session().placement().as_slice().to_vec();
        assert_eq!(placement.len(), 320);
        let reader = node.reader();
        for (v, &w) in placement.iter().enumerate() {
            assert_eq!(reader.lookup(v as u32).expect("published").worker(), w);
        }
    }

    #[test]
    fn persistent_node_restarts_bit_identical() {
        let dir = std::env::temp_dir().join(format!("spinner-node-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut live = {
            let session = StreamSession::new(ring(500), cfg(4));
            ServingNode::with_persistence(session, &dir).expect("create store")
        };
        for i in 0..3u32 {
            let delta = GraphDelta {
                new_vertices: 10,
                added_edges: vec![(i, 500 + i * 10), (i * 7 % 500, 501 + i * 10)],
                removed_edges: vec![],
            };
            let rep = live.ingest(StreamEvent::Delta(delta)).expect("append");
            assert!(rep.record_bytes() > 0);
            assert!(rep.wal_bytes() > 0);
        }

        let (resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 3);
        assert!(!stats.truncated_tail);
        assert_eq!(resumed.epoch(), live.epoch());
        assert_eq!(resumed.session().labels(), live.session().labels());
        assert_eq!(
            resumed.session().placement().as_slice(),
            live.session().placement().as_slice()
        );

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn resume_skips_stale_wal_after_crash_mid_compact() {
        let dir =
            std::env::temp_dir().join(format!("spinner-midcompact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let session = StreamSession::new(ring(300), cfg(3));
        let mut node = ServingNode::with_persistence(session, &dir).expect("create store");
        for i in 0..3u32 {
            node.ingest(StreamEvent::Delta(GraphDelta {
                new_vertices: 5,
                added_edges: vec![(i, 300 + i * 5)],
                removed_edges: vec![],
            }))
            .expect("ingest");
        }
        let labels = node.session().labels().to_vec();
        let epoch = node.epoch();

        // Simulate compact() dying between the snapshot rename and the WAL
        // truncation: fresh snapshot on disk, full stale WAL left behind.
        let snapshot = crate::snapshot::encode_state(&node.session().state());
        drop(node);
        std::fs::write(dir.join(crate::persist::SNAPSHOT_FILE), snapshot).expect("snapshot");

        let (mut resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "every record predates the snapshot");
        assert_eq!(stats.skipped_windows, 3);
        assert_eq!(resumed.epoch(), epoch);
        assert_eq!(resumed.session().labels(), labels.as_slice());

        // The store stays appendable: a further window and a second resume
        // replay exactly that window on top of the skipped prefix.
        resumed
            .ingest(StreamEvent::Delta(GraphDelta {
                new_vertices: 2,
                added_edges: vec![(7, 315)],
                removed_edges: vec![],
            }))
            .expect("ingest after resume");
        let labels = resumed.session().labels().to_vec();
        drop(resumed);
        let (again, stats) = ServingNode::resume_from(&dir).expect("second resume");
        assert_eq!(stats.skipped_windows, 3);
        assert_eq!(stats.replayed_windows, 1);
        assert_eq!(again.session().labels(), labels.as_slice());

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn compact_folds_wal_into_snapshot() {
        let dir = std::env::temp_dir().join(format!("spinner-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let session = StreamSession::new(ring(200), cfg(2));
        let mut node = ServingNode::with_persistence(session, &dir).expect("create store");
        node.ingest(StreamEvent::Delta(GraphDelta {
            new_vertices: 5,
            added_edges: vec![(1, 201)],
            removed_edges: vec![],
        }))
        .expect("ingest");
        node.ingest(StreamEvent::Resize { k: 3 }).expect("ingest");
        let labels = node.session().labels().to_vec();
        node.compact().expect("compact");

        let (resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        assert_eq!(stats.replayed_windows, 0, "WAL was folded in");
        assert_eq!(resumed.session().labels(), labels.as_slice());

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
