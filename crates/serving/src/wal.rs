//! Append-only per-window write-ahead log.
//!
//! Each [`StreamSession::apply`](spinner_core::StreamSession::apply) window
//! appends one [`WalRecord`]: the stream event itself plus the *state
//! delta* it produced — label changes, placement changes, a replaced
//! feedback map, and the window report. Replaying a record onto a
//! [`SessionState`] is therefore pure bookkeeping: the restarted process
//! reconstructs the exact post-window state without re-running a single
//! LPA iteration, which is what makes restart-to-serving time a function
//! of log size rather than graph size times convergence.
//!
//! Framing: every record is `[varint payload_len][payload][crc32]`. A
//! process killed mid-append leaves a truncated or checksum-failing tail;
//! [`read_wal`] stops at the last whole record and reports the number of
//! clean bytes so the writer can truncate and continue from there.

use spinner_core::{SessionState, StreamEvent, WindowReport, WindowReportParts};
use spinner_graph::mutation::apply_delta;
use spinner_graph::{GraphDelta, VertexId};
use spinner_pregel::WorkerId;

use crate::codec::{crc32, ByteReader, ByteWriter, CorruptError, Result};
use crate::snapshot::{put_report, read_report};

/// One window's entry in the write-ahead log: the event and the state
/// delta its application produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Index of the window this record finalises.
    pub window: u32,
    /// Partition count in effect *after* the window (tracks resizes).
    pub k: u32,
    /// The stream event the window applied.
    pub event: StreamEvent,
    /// Labels that changed (or were appended), as `(vertex, new_label)`
    /// sorted by vertex.
    pub label_updates: Vec<(VertexId, u32)>,
    /// Placement entries that changed (or were appended), as
    /// `(vertex, new_worker)` sorted by vertex.
    pub placement_updates: Vec<(VertexId, WorkerId)>,
    /// The full label → worker feedback map, present only when this
    /// window's placement feedback replaced it.
    pub label_assignment: Option<Vec<WorkerId>>,
    /// The window's report.
    pub report: WindowReportParts,
}

impl WalRecord {
    /// Builds the record for the window that took `before` to `after`.
    /// `event` must be the event `StreamSession::apply` consumed, `after`
    /// the session state afterwards.
    pub fn diff(before: &SessionState, after: &SessionState, event: StreamEvent) -> Self {
        let report = after.windows.last().expect("applied window must be reported").to_parts();
        let label_updates = diff_values(&before.labels, &after.labels);
        let placement_updates = diff_values(&before.placement, &after.placement);
        let label_assignment = if after.label_assignment != before.label_assignment {
            after.label_assignment.clone()
        } else {
            None
        };
        Self {
            window: report.window,
            k: after.cfg.k,
            event,
            label_updates,
            placement_updates,
            label_assignment,
            report,
        }
    }

    /// Replays this record onto `state` (the state as of the previous
    /// window), advancing it to the post-window state — no LPA involved.
    pub fn apply_to(&self, state: &mut SessionState) -> Result<()> {
        match &self.event {
            StreamEvent::Delta(delta) => {
                state.graph = apply_delta(&state.graph, delta);
            }
            StreamEvent::Resize { .. } => {}
            // A worker loss changes labels/placement, not the graph; the
            // diff below carries the whole recovery.
            StreamEvent::WorkerLoss { .. } => {}
        }
        state.cfg.k = self.k;
        let n = state.graph.num_vertices() as usize;
        if state.labels.len() > n || state.placement.len() > n {
            return Err(CorruptError { context: "wal shrinks the vertex set" });
        }
        state.labels.resize(n, 0);
        state.placement.resize(n, 0);
        for &(v, label) in &self.label_updates {
            *state
                .labels
                .get_mut(v as usize)
                .ok_or(CorruptError { context: "wal label update out of range" })? = label;
        }
        for &(v, worker) in &self.placement_updates {
            *state
                .placement
                .get_mut(v as usize)
                .ok_or(CorruptError { context: "wal placement update out of range" })? = worker;
        }
        if let Some(assignment) = &self.label_assignment {
            state.label_assignment = Some(assignment.clone());
        }
        if self.report.window as usize != state.windows.len() {
            return Err(CorruptError { context: "wal window out of sequence" });
        }
        state.windows.push(WindowReport::from_parts(self.report.clone()));
        Ok(())
    }

    /// Encodes the record payload (without framing).
    fn encode_payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_varint(u64::from(self.window));
        w.put_varint(u64::from(self.k));
        match &self.event {
            StreamEvent::Delta(delta) => {
                w.put_u8(0);
                w.put_varint(u64::from(delta.new_vertices));
                put_edges(&mut w, &delta.added_edges);
                put_edges(&mut w, &delta.removed_edges);
            }
            StreamEvent::Resize { k } => {
                w.put_u8(1);
                w.put_varint(u64::from(*k));
            }
            StreamEvent::WorkerLoss { worker } => {
                w.put_u8(2);
                w.put_varint(u64::from(*worker));
            }
        }
        put_updates(&mut w, &self.label_updates, |&l| u64::from(l));
        put_updates(&mut w, &self.placement_updates, |&p| u64::from(p));
        match &self.label_assignment {
            None => w.put_u8(0),
            Some(assignment) => {
                w.put_u8(1);
                w.put_varint(assignment.len() as u64);
                for &a in assignment {
                    w.put_varint(u64::from(a));
                }
            }
        }
        put_report(&mut w, &self.report);
        w.into_bytes()
    }

    /// Frames the record for appending: `[varint len][payload][crc32]`.
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut framed = ByteWriter::new();
        framed.put_varint(payload.len() as u64);
        let mut out = framed.into_bytes();
        out.reserve(payload.len() + 4);
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode_payload(payload: &[u8]) -> Result<Self> {
        let u32_of = |raw: u64, context: &'static str| {
            u32::try_from(raw).map_err(|_| CorruptError { context })
        };
        let mut r = ByteReader::new(payload);
        let window = u32_of(r.varint("wal window")?, "wal window")?;
        let k = u32_of(r.varint("wal k")?, "wal k")?;
        let event = match r.u8("wal event tag")? {
            0 => {
                let new_vertices = u32_of(r.varint("wal new_vertices")?, "wal new_vertices")?;
                let added_edges = read_edges(&mut r)?;
                let removed_edges = read_edges(&mut r)?;
                StreamEvent::Delta(GraphDelta { added_edges, removed_edges, new_vertices })
            }
            1 => StreamEvent::Resize { k: u32_of(r.varint("wal resize k")?, "wal resize k")? },
            2 => StreamEvent::WorkerLoss {
                worker: u16::try_from(r.varint("wal lost worker")?)
                    .map_err(|_| CorruptError { context: "wal lost worker" })?,
            },
            _ => return Err(CorruptError { context: "wal event tag" }),
        };
        let label_updates = read_updates(&mut r, |raw| Ok(raw as u32))?;
        let placement_updates = read_updates(&mut r, |raw| {
            u16::try_from(raw).map_err(|_| CorruptError { context: "wal worker id" })
        })?;
        let label_assignment = match r.u8("wal assignment tag")? {
            0 => None,
            1 => {
                let len = r.varint("wal assignment len")?;
                let mut assignment = Vec::with_capacity(len.min(1 << 24) as usize);
                for _ in 0..len {
                    assignment.push(
                        u16::try_from(r.varint("wal assignment entry")?)
                            .map_err(|_| CorruptError { context: "wal worker id" })?,
                    );
                }
                Some(assignment)
            }
            _ => return Err(CorruptError { context: "wal assignment tag" }),
        };
        let report = read_report(&mut r)?;
        if !r.is_exhausted() {
            return Err(CorruptError { context: "wal trailing bytes" });
        }
        Ok(Self {
            window,
            k,
            event,
            label_updates,
            placement_updates,
            label_assignment,
            report,
        })
    }
}

/// The outcome of scanning a write-ahead log.
#[derive(Debug)]
pub struct WalScan {
    /// Every whole, checksum-clean record, in order.
    pub records: Vec<WalRecord>,
    /// Bytes covered by those records — the offset a writer should truncate
    /// to before appending (anything past it is a torn tail from a crash).
    pub clean_bytes: u64,
    /// True when trailing bytes had to be discarded.
    pub truncated_tail: bool,
    /// How many trailing bytes were discarded (0 on a clean scan). Lets an
    /// operator distinguish a clean resume from one that lost a tail, and
    /// size what it lost.
    pub truncated_bytes: u64,
}

/// Scans `bytes` as a write-ahead log, tolerating a torn tail: a final
/// record that is incomplete or fails its checksum ends the scan instead of
/// erroring (that is exactly the kill-mid-append case the log exists for).
pub fn read_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut clean: usize = 0;
    loop {
        let rest = &bytes[clean..];
        if rest.is_empty() {
            return WalScan {
                records,
                clean_bytes: clean as u64,
                truncated_tail: false,
                truncated_bytes: 0,
            };
        }
        let mut r = ByteReader::new(rest);
        let whole = (|| -> Result<(WalRecord, usize)> {
            let len = r.varint("wal frame length")? as usize;
            let header = r.position();
            let end = header
                .checked_add(len)
                .and_then(|e| e.checked_add(4))
                .ok_or(CorruptError { context: "wal frame length" })?;
            if end > rest.len() {
                return Err(CorruptError { context: "wal frame body" });
            }
            let payload = &rest[header..header + len];
            let stored =
                u32::from_le_bytes(rest[header + len..end].try_into().expect("4 bytes"));
            if crc32(payload) != stored {
                return Err(CorruptError { context: "wal frame checksum" });
            }
            Ok((WalRecord::decode_payload(payload)?, end))
        })();
        match whole {
            Ok((record, consumed)) => {
                records.push(record);
                clean += consumed;
            }
            Err(_) => {
                return WalScan {
                    records,
                    clean_bytes: clean as u64,
                    truncated_tail: true,
                    truncated_bytes: (bytes.len() - clean) as u64,
                };
            }
        }
    }
}

fn put_edges(w: &mut ByteWriter, edges: &[(VertexId, VertexId)]) {
    w.put_varint(edges.len() as u64);
    for &(src, dst) in edges {
        w.put_varint(u64::from(src));
        w.put_varint(u64::from(dst));
    }
}

fn read_edges(r: &mut ByteReader<'_>) -> Result<Vec<(VertexId, VertexId)>> {
    let len = r.varint("wal edge count")?;
    let mut edges = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        let src = r.varint("wal edge src")? as VertexId;
        let dst = r.varint("wal edge dst")? as VertexId;
        edges.push((src, dst));
    }
    Ok(edges)
}

fn put_updates<T>(w: &mut ByteWriter, updates: &[(VertexId, T)], value: impl Fn(&T) -> u64) {
    w.put_varint(updates.len() as u64);
    let mut prev = 0u64;
    for (v, item) in updates {
        w.put_varint(u64::from(*v) - prev);
        prev = u64::from(*v);
        w.put_varint(value(item));
    }
}

fn read_updates<T>(
    r: &mut ByteReader<'_>,
    value: impl Fn(u64) -> Result<T>,
) -> Result<Vec<(VertexId, T)>> {
    let len = r.varint("wal update count")?;
    let mut updates = Vec::with_capacity(len.min(1 << 24) as usize);
    let mut prev = 0u64;
    for _ in 0..len {
        prev += r.varint("wal update vertex")?;
        let v =
            u32::try_from(prev).map_err(|_| CorruptError { context: "wal update vertex" })?;
        updates.push((v, value(r.varint("wal update value")?)?));
    }
    Ok(updates)
}

/// The sorted `(index, new_value)` pairs where `after` differs from
/// `before` (including every appended index).
fn diff_values<T: Copy + PartialEq>(before: &[T], after: &[T]) -> Vec<(VertexId, T)> {
    let mut updates = Vec::new();
    for (i, &value) in after.iter().enumerate() {
        if before.get(i) != Some(&value) {
            updates.push((i as VertexId, value));
        }
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_core::{SpinnerConfig, StreamSession};
    use spinner_graph::generators::{planted_partition, SbmConfig};

    fn record() -> WalRecord {
        let graph = planted_partition(SbmConfig {
            n: 300,
            communities: 3,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 3,
        });
        let mut cfg = SpinnerConfig::new(3).with_seed(9);
        cfg.num_workers = 3;
        cfg.max_iterations = 30;
        let mut session = StreamSession::new(graph, cfg);
        let before = session.state();
        let event = StreamEvent::Delta(GraphDelta {
            added_edges: vec![(0, 150)],
            ..Default::default()
        });
        session.apply(event.clone());
        WalRecord::diff(&before, &session.state(), event)
    }

    #[test]
    fn record_round_trips_through_framing() {
        let record = record();
        let framed = record.encode_framed();
        let scan = read_wal(&framed);
        assert!(!scan.truncated_tail);
        assert_eq!(scan.clean_bytes, framed.len() as u64);
        assert_eq!(scan.records, vec![record]);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let record = record();
        let mut bytes = record.encode_framed();
        let whole = bytes.len();
        bytes.extend_from_slice(&record.encode_framed()[..10]); // killed mid-append
        let scan = read_wal(&bytes);
        assert!(scan.truncated_tail);
        assert_eq!(scan.clean_bytes, whole as u64);
        assert_eq!(scan.records.len(), 1);
    }

    #[test]
    fn corrupt_record_ends_the_scan() {
        let record = record();
        let mut bytes = record.encode_framed();
        let len = bytes.len();
        bytes.extend_from_slice(&record.encode_framed());
        bytes[len + 8] ^= 0x40; // flip a bit inside the second record
        let scan = read_wal(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.truncated_tail);
    }

    #[test]
    fn diff_and_apply_reconstruct_state() {
        let graph = planted_partition(SbmConfig {
            n: 500,
            communities: 4,
            internal_degree: 6.0,
            external_degree: 1.2,
            skew: None,
            seed: 21,
        });
        let mut cfg = SpinnerConfig::new(4).with_seed(2).with_placement_feedback(0.6);
        cfg.num_workers = 4;
        cfg.max_iterations = 40;
        let mut session = StreamSession::new(graph, cfg);
        let mut replayed = session.state();
        for (i, event) in [
            StreamEvent::Delta(GraphDelta {
                added_edges: vec![(1, 250), (3, 400)],
                new_vertices: 5,
                ..Default::default()
            }),
            StreamEvent::Resize { k: 6 },
            StreamEvent::Delta(GraphDelta {
                removed_edges: vec![(1, 250)],
                ..Default::default()
            }),
        ]
        .into_iter()
        .enumerate()
        {
            let before = session.state();
            session.apply(event.clone());
            let record = WalRecord::diff(&before, &session.state(), event);
            record.apply_to(&mut replayed).expect("replay");
            let live = session.state();
            assert_eq!(replayed.labels, live.labels, "window {i} labels diverge");
            assert_eq!(replayed.placement, live.placement, "window {i} placement diverges");
            assert_eq!(replayed.label_assignment, live.label_assignment);
            assert_eq!(replayed.windows, live.windows);
            assert_eq!(replayed.cfg.k, live.cfg.k);
        }
    }
}
