//! Online partition serving for Spinner sessions.
//!
//! [`spinner-core`](spinner_core)'s `StreamSession` keeps a graph
//! partitioned as it changes; this crate makes that partition *servable*
//! and *durable*:
//!
//! - [`RoutingTable`] / [`RoutingReader`] — an epoch-versioned,
//!   double-buffered vertex→worker map. Readers are wait-free and
//!   allocation-free: a lookup is two atomic loads around an array read,
//!   validated seqlock-style so a concurrent publish can never yield a torn
//!   mix of two epochs.
//! - [`SessionStore`] / [`SessionPersist`] — a binary snapshot plus an
//!   append-only, CRC-framed write-ahead log. A restarted process calls
//!   [`ServingNode::resume_from`] (or `StreamSession::resume_from` via the
//!   [`SessionPersist`] trait) and gets labels bit-identical to the run
//!   that died, without re-running any label propagation.
//! - [`ServingNode`] — the front-end tying both together: one ingest
//!   thread applies stream windows and publishes epochs; any number of
//!   lookup threads answer routing queries from cloned readers.
//!
//! ```
//! use spinner_core::{SpinnerConfig, StreamSession};
//! use spinner_graph::GraphBuilder;
//! use spinner_serving::ServingNode;
//!
//! let graph = GraphBuilder::new(100).add_edges([(0, 1), (1, 2), (2, 0)]).build();
//! let session = StreamSession::new(graph, SpinnerConfig::new(4));
//! let node = ServingNode::new(session);
//! let reader = node.reader(); // clone one per lookup thread
//! let hit = reader.lookup(2).expect("published at bootstrap");
//! assert_eq!(hit.worker(), node.session().placement().as_slice()[2]);
//! assert_eq!(hit.epoch(), 1);
//! ```

#![deny(missing_docs)]

pub mod codec;
pub mod fault;
pub mod node;
pub mod persist;
pub mod routing;
pub mod snapshot;
pub mod wal;

pub use codec::CorruptError;
pub use fault::{DiskStorage, Fault, FaultPlan, FaultyStorage, MemStorage, Storage, StoreFile};
pub use node::{Health, IngestReport, RetryPolicy, ServingNode};
pub use persist::{PersistError, ResumeStats, SessionPersist, SessionStore};
pub use routing::{Lookup, RoutingReader, RoutingTable};
pub use snapshot::{decode_state, encode_state};
pub use wal::{read_wal, WalRecord, WalScan};
