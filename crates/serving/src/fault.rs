//! Storage abstraction + deterministic fault injection.
//!
//! [`SessionStore`](crate::SessionStore) talks to its two files through the
//! [`Storage`] trait instead of `std::fs` directly. Production uses
//! [`DiskStorage`]; tests and the chaos harness swap in [`MemStorage`] (an
//! in-memory "disk" that survives dropping the store, modelling a process
//! death without touching the filesystem) and wrap either in
//! [`FaultyStorage`], which injects a scripted [`FaultPlan`] — torn writes,
//! failed syncs, ENOSPC, single-bit corruption, and kill-points — at exact
//! operation indices. Every durability claim the serving crate makes is
//! exercised against this layer, so the claims are reproducible tests
//! rather than code-review folklore.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Which of the store's two files an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreFile {
    /// The snapshot (`snapshot.bin`), replaced atomically as a whole.
    Snapshot,
    /// The write-ahead log (`wal.bin`), appended one record at a time.
    Wal,
}

/// The I/O surface a [`SessionStore`](crate::SessionStore) needs.
///
/// Each method is one *durable* operation: when it returns `Ok`, the effect
/// has reached the medium (fsynced, for [`DiskStorage`]). The store counts
/// on exactly this granularity — the fault injector's "op N" indices refer
/// to calls of these methods.
pub trait Storage: Send {
    /// Reads the whole file; `Ok(None)` when it does not exist.
    fn read(&mut self, file: StoreFile) -> io::Result<Option<Vec<u8>>>;

    /// Replaces the file with `bytes` all-or-nothing: a reader (or a crash)
    /// observes either the old contents or the new, never a mix.
    fn write_atomic(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` at the end of the file (created empty when absent)
    /// and makes them durable before returning. Not atomic: a crash mid-way
    /// may leave a torn tail, which the WAL's CRC framing detects.
    fn append(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()>;

    /// Truncates the file to `len` bytes (created when absent), durably.
    fn truncate(&mut self, file: StoreFile, len: u64) -> io::Result<()>;

    /// Short human-readable location for error messages and logs.
    fn describe(&self) -> String;
}

/// Filesystem-backed [`Storage`]: one directory holding `snapshot.bin` and
/// `wal.bin`, with the same durability discipline the store used before the
/// trait existed — tmp + fsync + rename + directory fsync for the snapshot,
/// `sync_data` after WAL appends.
pub struct DiskStorage {
    dir: PathBuf,
    /// Cached append handle + logical end for the WAL so repeated appends
    /// don't reopen the file. Positions are tracked explicitly rather than
    /// relying on `O_APPEND` so a truncate through another handle can't
    /// race the cached offset.
    wal: Option<(File, u64)>,
}

impl DiskStorage {
    /// Opens (creating if needed) the directory backing this storage.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, wal: None })
    }

    fn path(&self, file: StoreFile) -> PathBuf {
        match file {
            StoreFile::Snapshot => self.dir.join(crate::persist::SNAPSHOT_FILE),
            StoreFile::Wal => self.dir.join(crate::persist::WAL_FILE),
        }
    }

    fn wal_handle(&mut self) -> io::Result<&mut (File, u64)> {
        if self.wal.is_none() {
            let path = self.path(StoreFile::Wal);
            let f = OpenOptions::new().create(true).write(true).truncate(false).open(&path)?;
            let len = f.metadata()?.len();
            sync_dir(&path)?;
            self.wal = Some((f, len));
        }
        Ok(self.wal.as_mut().expect("wal handle just opened"))
    }
}

impl Storage for DiskStorage {
    fn read(&mut self, file: StoreFile) -> io::Result<Option<Vec<u8>>> {
        match File::open(self.path(file)) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        let path = self.path(file);
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        sync_dir(&path)?;
        if file == StoreFile::Wal {
            self.wal = None; // cached offset is stale
        }
        Ok(())
    }

    fn append(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        assert_eq!(file, StoreFile::Wal, "only the WAL is append-mode");
        use std::io::Seek;
        let (f, end) = self.wal_handle()?;
        f.seek(io::SeekFrom::Start(*end))?;
        f.write_all(bytes)?;
        f.sync_data()?;
        *end += bytes.len() as u64;
        Ok(())
    }

    fn truncate(&mut self, file: StoreFile, len: u64) -> io::Result<()> {
        match file {
            StoreFile::Wal => {
                let (f, end) = self.wal_handle()?;
                f.set_len(len)?;
                f.sync_all()?;
                *end = len;
                Ok(())
            }
            StoreFile::Snapshot => {
                let f = OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(false)
                    .open(self.path(file))?;
                f.set_len(len)?;
                f.sync_all()
            }
        }
    }

    fn describe(&self) -> String {
        self.dir.display().to_string()
    }
}

/// Fsyncs the directory containing `path`, making a rename or file creation
/// in it durable.
fn sync_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => File::open(parent)?.sync_all(),
        _ => Ok(()),
    }
}

/// In-memory [`Storage`]: the file map lives behind an `Arc`, so clones
/// share one "disk". Dropping a [`SessionStore`](crate::SessionStore) built
/// on one handle models a process death — a clone taken beforehand still
/// sees every durable byte, and resuming from it exercises exactly the
/// recovery path a real restart would, at memory speed.
#[derive(Clone, Default)]
pub struct MemStorage {
    files: Arc<Mutex<HashMap<StoreFile, Vec<u8>>>>,
}

impl MemStorage {
    /// A fresh, empty in-memory disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Byte-for-byte copy of the current disk contents, e.g. to diff two
    /// crash points.
    pub fn dump(&self, file: StoreFile) -> Option<Vec<u8>> {
        self.files.lock().expect("mem disk lock").get(&file).cloned()
    }

    /// Overwrites a file wholesale — the corruption tests' way of planting
    /// flipped bits without going through the fault injector.
    pub fn plant(&self, file: StoreFile, bytes: Vec<u8>) {
        self.files.lock().expect("mem disk lock").insert(file, bytes);
    }
}

impl Storage for MemStorage {
    fn read(&mut self, file: StoreFile) -> io::Result<Option<Vec<u8>>> {
        Ok(self.dump(file))
    }

    fn write_atomic(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        self.plant(file, bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem disk lock")
            .entry(file)
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, file: StoreFile, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem disk lock");
        let buf = files.entry(file).or_default();
        if (buf.len() as u64) > len {
            buf.truncate(len as usize);
        }
        Ok(())
    }

    fn describe(&self) -> String {
        "<mem>".to_string()
    }
}

/// One injected failure, scheduled by a [`FaultPlan`] at an op index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The op fails without touching the medium — e.g. ENOSPC up front.
    Full,
    /// Torn write: only the first `keep` bytes of the payload reach the
    /// medium, then the op fails. On [`Storage::write_atomic`] this behaves
    /// like [`Fault::Full`] (the torn temp file never gets renamed in).
    Torn {
        /// Payload bytes that make it to the medium before the failure.
        keep: usize,
    },
    /// The data reaches the medium but the final sync fails, so the caller
    /// must treat the write as not-durable even though it may have landed.
    SyncFailed,
    /// Silent single-bit corruption: the op *succeeds* but bit
    /// `bit % (len * 8)` of the payload is flipped on the way down. Reads
    /// flip a bit of the data on the way up.
    BitFlip {
        /// Which bit to flip, reduced modulo the payload size.
        bit: u64,
    },
    /// Process death at this op: the first `keep` payload bytes land (like
    /// a torn write), the op fails, and *every* subsequent op on this
    /// storage fails too — the process is gone until a new storage is built
    /// over the same medium.
    Kill {
        /// Payload bytes that make it to the medium before death.
        keep: usize,
    },
}

/// A deterministic schedule mapping operation indices to [`Fault`]s.
///
/// Op indices count calls into the wrapped [`Storage`] (reads included),
/// starting at 0. Build one explicitly with [`FaultPlan::fail`] /
/// [`FaultPlan::kill_at`], or derive a pseudo-random schedule from a seed
/// with [`FaultPlan::seeded`] — same seed, same faults, every run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan: every op passes through (but is still counted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `fault` at op index `op` (builder-style).
    pub fn fail(mut self, op: u64, fault: Fault) -> Self {
        self.faults.insert(op, fault);
        self
    }

    /// A plan whose only fault is a clean kill (no torn bytes) at `op`.
    pub fn kill_at(op: u64) -> Self {
        Self::new().fail(op, Fault::Kill { keep: 0 })
    }

    /// A pseudo-random plan: each of the first `ops` op indices draws a
    /// fault with probability ~`density` (0.0–1.0), with the fault kind and
    /// torn/flip offsets derived from `seed`. Kills are excluded — a seeded
    /// plan models a flaky medium, not a dying process; schedule kills
    /// explicitly.
    pub fn seeded(seed: u64, ops: u64, density: f64) -> Self {
        let mut plan = Self::new();
        let threshold = (density.clamp(0.0, 1.0) * u32::MAX as f64) as u64;
        for op in 0..ops {
            let h = splitmix64(seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if (h & u64::from(u32::MAX)) >= threshold {
                continue;
            }
            let fault = match (h >> 32) % 4 {
                0 => Fault::Full,
                1 => Fault::Torn { keep: (h >> 34) as usize % 64 },
                2 => Fault::SyncFailed,
                _ => Fault::BitFlip { bit: h >> 34 },
            };
            plan.faults.insert(op, fault);
        }
        plan
    }

    /// Number of scheduled faults remaining in the plan.
    pub fn remaining(&self) -> usize {
        self.faults.len()
    }

    fn take(&mut self, op: u64) -> Option<Fault> {
        self.faults.remove(&op)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Wraps any [`Storage`] and injects the faults a [`FaultPlan`] schedules,
/// by op index. Deterministic: the same plan over the same op sequence
/// produces the same failures, so every chaos scenario is replayable.
pub struct FaultyStorage<S> {
    inner: S,
    plan: FaultPlan,
    op: u64,
    dead: bool,
    injected: u64,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner`, injecting `plan`'s faults.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self { inner, plan, op: 0, dead: false, injected: 0 }
    }

    /// Ops observed so far (useful for sizing kill sweeps).
    pub fn ops(&self) -> u64 {
        self.op
    }

    /// Faults actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// True once a [`Fault::Kill`] has fired; all further ops fail.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The wrapped storage.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Draws this op's fault (advancing the op counter) or fails
    /// immediately when the storage is already dead.
    fn next_fault(&mut self) -> io::Result<Option<Fault>> {
        if self.dead {
            return Err(killed());
        }
        let fault = self.plan.take(self.op);
        self.op += 1;
        if fault.is_some() {
            self.injected += 1;
        }
        Ok(fault)
    }
}

fn killed() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "injected fault: storage killed")
}

fn enospc() -> io::Error {
    // `ErrorKind::StorageFull` needs rustc 1.83; `WriteZero` keeps the MSRV
    // and callers match on the message anyway.
    io::Error::new(io::ErrorKind::WriteZero, "injected fault: no space left on device")
}

fn sync_failed() -> io::Error {
    io::Error::other("injected fault: sync failed")
}

fn flip(bytes: &[u8], bit: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if !out.is_empty() {
        let bit = (bit % (out.len() as u64 * 8)) as usize;
        out[bit / 8] ^= 1 << (bit % 8);
    }
    out
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&mut self, file: StoreFile) -> io::Result<Option<Vec<u8>>> {
        match self.next_fault()? {
            None | Some(Fault::SyncFailed) => self.inner.read(file),
            Some(Fault::Full) | Some(Fault::Torn { .. }) => Err(enospc()),
            Some(Fault::BitFlip { bit }) => {
                Ok(self.inner.read(file)?.map(|bytes| flip(&bytes, bit)))
            }
            Some(Fault::Kill { .. }) => {
                self.dead = true;
                Err(killed())
            }
        }
    }

    fn write_atomic(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault()? {
            None => self.inner.write_atomic(file, bytes),
            // An atomic replace that fails part-way leaves the *old* file:
            // the torn temp copy never gets renamed in. So Torn == Full here.
            Some(Fault::Full) | Some(Fault::Torn { .. }) => Err(enospc()),
            Some(Fault::SyncFailed) => {
                self.inner.write_atomic(file, bytes)?;
                Err(sync_failed())
            }
            Some(Fault::BitFlip { bit }) => self.inner.write_atomic(file, &flip(bytes, bit)),
            Some(Fault::Kill { .. }) => {
                self.dead = true;
                Err(killed())
            }
        }
    }

    fn append(&mut self, file: StoreFile, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault()? {
            None => self.inner.append(file, bytes),
            Some(Fault::Full) => Err(enospc()),
            Some(Fault::Torn { keep }) => {
                let keep = keep.min(bytes.len());
                self.inner.append(file, &bytes[..keep])?;
                Err(enospc())
            }
            Some(Fault::SyncFailed) => {
                self.inner.append(file, bytes)?;
                Err(sync_failed())
            }
            Some(Fault::BitFlip { bit }) => self.inner.append(file, &flip(bytes, bit)),
            Some(Fault::Kill { keep }) => {
                self.dead = true;
                let keep = keep.min(bytes.len());
                // Best-effort torn tail on the way down; the death error
                // wins regardless of whether the partial append landed.
                let _ = self.inner.append(file, &bytes[..keep]);
                Err(killed())
            }
        }
    }

    fn truncate(&mut self, file: StoreFile, len: u64) -> io::Result<()> {
        match self.next_fault()? {
            None | Some(Fault::BitFlip { .. }) => self.inner.truncate(file, len),
            Some(Fault::Full) | Some(Fault::Torn { .. }) => Err(enospc()),
            Some(Fault::SyncFailed) => {
                self.inner.truncate(file, len)?;
                Err(sync_failed())
            }
            Some(Fault::Kill { .. }) => {
                self.dead = true;
                Err(killed())
            }
        }
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_shares_one_disk_across_clones() {
        let disk = MemStorage::new();
        let mut a = disk.clone();
        a.append(StoreFile::Wal, b"abc").unwrap();
        drop(a); // "process death"
        let mut b = disk.clone();
        assert_eq!(b.read(StoreFile::Wal).unwrap().as_deref(), Some(&b"abc"[..]));
        b.truncate(StoreFile::Wal, 1).unwrap();
        assert_eq!(disk.dump(StoreFile::Wal).as_deref(), Some(&b"a"[..]));
        assert_eq!(disk.dump(StoreFile::Snapshot), None);
    }

    #[test]
    fn torn_append_keeps_prefix_and_fails() {
        let disk = MemStorage::new();
        let plan = FaultPlan::new().fail(1, Fault::Torn { keep: 2 });
        let mut s = FaultyStorage::new(disk.clone(), plan);
        s.append(StoreFile::Wal, b"one").unwrap(); // op 0 clean
        let err = s.append(StoreFile::Wal, b"twotwo").unwrap_err(); // op 1 torn
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(disk.dump(StoreFile::Wal).as_deref(), Some(&b"onetw"[..]));
        assert_eq!(s.injected(), 1);
        assert!(!s.is_dead());
    }

    #[test]
    fn kill_is_terminal_for_all_later_ops() {
        let mut s = FaultyStorage::new(MemStorage::new(), FaultPlan::kill_at(0));
        assert!(s.append(StoreFile::Wal, b"x").is_err());
        assert!(s.is_dead());
        assert!(s.read(StoreFile::Wal).is_err());
        assert!(s.write_atomic(StoreFile::Snapshot, b"y").is_err());
        assert!(s.truncate(StoreFile::Wal, 0).is_err());
    }

    #[test]
    fn atomic_write_fault_leaves_old_contents() {
        let disk = MemStorage::new();
        disk.plant(StoreFile::Snapshot, b"old".to_vec());
        let plan = FaultPlan::new().fail(0, Fault::Torn { keep: 1 });
        let mut s = FaultyStorage::new(disk.clone(), plan);
        assert!(s.write_atomic(StoreFile::Snapshot, b"new").is_err());
        assert_eq!(disk.dump(StoreFile::Snapshot).as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let disk = MemStorage::new();
        let plan = FaultPlan::new().fail(0, Fault::BitFlip { bit: 9 });
        let mut s = FaultyStorage::new(disk.clone(), plan);
        s.write_atomic(StoreFile::Snapshot, &[0u8, 0u8]).unwrap();
        assert_eq!(disk.dump(StoreFile::Snapshot).unwrap(), vec![0u8, 2u8]);
    }

    #[test]
    fn sync_failed_lands_data_but_reports_error() {
        let disk = MemStorage::new();
        let plan = FaultPlan::new().fail(0, Fault::SyncFailed);
        let mut s = FaultyStorage::new(disk.clone(), plan);
        assert!(s.append(StoreFile::Wal, b"ack").is_err());
        assert_eq!(disk.dump(StoreFile::Wal).as_deref(), Some(&b"ack"[..]));
    }

    #[test]
    fn seeded_plan_is_deterministic() {
        let a = FaultPlan::seeded(7, 100, 0.3);
        let b = FaultPlan::seeded(7, 100, 0.3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(a.remaining() > 0);
        assert!(a.remaining() < 100);
        assert!(!format!("{a:?}").contains("Kill"));
    }

    #[test]
    fn disk_storage_round_trips() {
        let dir = std::env::temp_dir().join(format!("spinner-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = DiskStorage::open(&dir).unwrap();
        assert_eq!(s.read(StoreFile::Snapshot).unwrap(), None);
        s.write_atomic(StoreFile::Snapshot, b"snap").unwrap();
        s.append(StoreFile::Wal, b"aa").unwrap();
        s.append(StoreFile::Wal, b"bb").unwrap();
        s.truncate(StoreFile::Wal, 3).unwrap();
        assert_eq!(s.read(StoreFile::Snapshot).unwrap().as_deref(), Some(&b"snap"[..]));
        assert_eq!(s.read(StoreFile::Wal).unwrap().as_deref(), Some(&b"aab"[..]));
        s.append(StoreFile::Wal, b"c").unwrap();
        assert_eq!(s.read(StoreFile::Wal).unwrap().as_deref(), Some(&b"aabc"[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
