//! Session store: a snapshot plus an append-only WAL behind a [`Storage`]
//! backend, and the [`SessionPersist`] extension that gives
//! [`StreamSession`] a `resume_from` warm start.

use std::path::Path;
use std::{fmt, io};

use spinner_core::{SessionState, StreamSession};

use crate::codec::CorruptError;
use crate::fault::{DiskStorage, Storage, StoreFile};
use crate::snapshot::{decode_state, encode_state};
use crate::wal::{read_wal, WalRecord};

/// Snapshot file name inside a disk-backed store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Write-ahead-log file name inside a disk-backed store directory.
pub const WAL_FILE: &str = "wal.bin";

/// Failure while persisting or restoring a session.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying storage operation failed.
    Io(io::Error),
    /// The stored bytes are corrupt beyond the recoverable WAL tail.
    Corrupt(CorruptError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "session store I/O error: {e}"),
            Self::Corrupt(e) => write!(f, "session store corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CorruptError> for PersistError {
    fn from(e: CorruptError) -> Self {
        Self::Corrupt(e)
    }
}

/// What a [`SessionStore::load`] recovered, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    /// WAL records replayed on top of the snapshot.
    pub replayed_windows: usize,
    /// Stale WAL records skipped because a [`SessionStore::compact`] had
    /// already folded their windows into the snapshot (non-zero only after
    /// a crash between the snapshot rename and the WAL truncation).
    pub skipped_windows: usize,
    /// True when a torn tail (crash mid-append) was discarded.
    pub truncated_tail: bool,
    /// How many torn-tail bytes were discarded (0 on a clean resume) — the
    /// operator-facing difference between "resumed clean" and "resumed,
    /// lost a partial record".
    pub truncated_bytes: u64,
    /// Size of the snapshot in bytes.
    pub snapshot_bytes: u64,
    /// Clean WAL bytes retained after recovery.
    pub wal_bytes: u64,
}

/// A snapshot + WAL pair for one session, on any [`Storage`] backend.
///
/// The write path is: [`SessionStore::create`] once with the bootstrap (or
/// checkpoint) state, then [`SessionStore::append`] one [`WalRecord`] per
/// window. The read path is [`SessionStore::load`], which replays the WAL
/// onto the snapshot — truncating a torn tail — and reopens the store for
/// append, so a restarted process continues logging where the dead one
/// stopped.
///
/// `create`/`load` take a directory and run on [`DiskStorage`]; the `_on`
/// variants take any boxed backend — an in-memory one for tests, or a
/// [`FaultyStorage`](crate::FaultyStorage) wrapper for chaos runs.
pub struct SessionStore {
    storage: Box<dyn Storage>,
    wal_bytes: u64,
    snapshot_bytes: u64,
}

impl SessionStore {
    /// Creates (or resets) a disk-backed store at `dir`: writes `state` as
    /// the snapshot and starts an empty WAL.
    pub fn create(dir: impl AsRef<Path>, state: &SessionState) -> io::Result<Self> {
        Self::create_on(Box::new(DiskStorage::open(dir)?), state)
    }

    /// [`SessionStore::create`] over an arbitrary backend.
    pub fn create_on(mut storage: Box<dyn Storage>, state: &SessionState) -> io::Result<Self> {
        let bytes = encode_state(state);
        storage.write_atomic(StoreFile::Snapshot, &bytes)?;
        storage.truncate(StoreFile::Wal, 0)?;
        Ok(Self { storage, wal_bytes: 0, snapshot_bytes: bytes.len() as u64 })
    }

    /// Opens the disk-backed store at `dir`, replays the WAL onto the
    /// snapshot, and returns the recovered state together with the reopened
    /// store. A torn WAL tail is truncated away; corruption anywhere else
    /// errors.
    pub fn load(
        dir: impl AsRef<Path>,
    ) -> Result<(SessionState, Self, ResumeStats), PersistError> {
        Self::load_on(Box::new(DiskStorage::open(dir)?))
    }

    /// [`SessionStore::load`] over an arbitrary backend.
    pub fn load_on(
        mut storage: Box<dyn Storage>,
    ) -> Result<(SessionState, Self, ResumeStats), PersistError> {
        let snapshot_bytes = storage.read(StoreFile::Snapshot)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("no snapshot in session store at {}", storage.describe()),
            )
        })?;
        let mut state = decode_state(&snapshot_bytes)?;

        let wal_bytes = storage.read(StoreFile::Wal)?.unwrap_or_default();
        let scan = read_wal(&wal_bytes);
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for record in &scan.records {
            // A compact() that died between the snapshot swap and the WAL
            // truncation leaves the whole old log behind the new snapshot.
            // Records for windows the snapshot already contains are skipped
            // (which also makes a re-appended duplicate harmless); a record
            // that skips *ahead* still fails apply_to.
            if (record.window as usize) < state.windows.len() {
                skipped += 1;
                continue;
            }
            record.apply_to(&mut state)?;
            replayed += 1;
        }

        storage.truncate(StoreFile::Wal, scan.clean_bytes)?;
        let stats = ResumeStats {
            replayed_windows: replayed,
            skipped_windows: skipped,
            truncated_tail: scan.truncated_tail,
            truncated_bytes: scan.truncated_bytes,
            snapshot_bytes: snapshot_bytes.len() as u64,
            wal_bytes: scan.clean_bytes,
        };
        let store = Self {
            storage,
            wal_bytes: scan.clean_bytes,
            snapshot_bytes: snapshot_bytes.len() as u64,
        };
        Ok((state, store, stats))
    }

    /// Appends one window record durably (for [`DiskStorage`], `sync_data`
    /// before returning — an acknowledged window survives OS crash or power
    /// loss, not just a process kill). Returns the framed size in bytes.
    ///
    /// Safe to retry: if an ambiguous failure (e.g. a failed sync) actually
    /// landed the record, the duplicate a retry appends is skipped on load
    /// by the same window-number check that guards crashed compactions.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let framed = record.encode_framed();
        self.storage.append(StoreFile::Wal, &framed)?;
        self.wal_bytes += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Rewrites the snapshot as `state` and empties the WAL — bounding
    /// restart time for long streams. Crash-safe: the new snapshot lands
    /// atomically before the WAL is truncated, and a crash between the two
    /// leaves a stale log prefix that [`Self::load`] recognises by window
    /// number and skips.
    pub fn compact(&mut self, state: &SessionState) -> io::Result<()> {
        let bytes = encode_state(state);
        self.storage.write_atomic(StoreFile::Snapshot, &bytes)?;
        self.snapshot_bytes = bytes.len() as u64;
        self.storage.truncate(StoreFile::Wal, 0)?;
        self.wal_bytes = 0;
        Ok(())
    }

    /// Where the store lives (a directory path, or `<mem>` for the
    /// in-memory backend).
    pub fn location(&self) -> String {
        self.storage.describe()
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Current snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }
}

/// Persistence extension for [`StreamSession`]: warm-start a restarted
/// process from a [`SessionStore`] directory instead of re-partitioning
/// from scratch.
///
/// Bring the trait into scope (`use spinner_serving::SessionPersist;` or
/// via `spinner::prelude::*`) and call
/// `StreamSession::resume_from("state-dir")`.
pub trait SessionPersist: Sized {
    /// Rebuilds the session from `dir`'s snapshot + WAL. The result is
    /// bit-identical — labels, placement, feedback map, report history — to
    /// the session that wrote the store, including when its process died
    /// mid-append (the torn record's window is simply not yet applied).
    fn resume_from(dir: impl AsRef<Path>) -> Result<Self, PersistError>;

    /// Writes the session's current state as a fresh store at `dir`
    /// (snapshot only, empty WAL) — a one-shot checkpoint for sessions not
    /// fronted by a [`crate::ServingNode`].
    fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<(), PersistError>;
}

impl SessionPersist for StreamSession {
    fn resume_from(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let (state, _store, _stats) = SessionStore::load(dir)?;
        Ok(StreamSession::from_state(state))
    }

    fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        SessionStore::create(dir, &self.state())?;
        Ok(())
    }
}
