//! On-disk session store: a snapshot file plus an append-only WAL in one
//! directory, and the [`SessionPersist`] extension that gives
//! [`StreamSession`] a `resume_from` warm start.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::{fmt, io};

use spinner_core::{SessionState, StreamSession};

use crate::codec::CorruptError;
use crate::snapshot::{decode_state, encode_state};
use crate::wal::{read_wal, WalRecord};

/// Snapshot file name inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Write-ahead-log file name inside a store directory.
pub const WAL_FILE: &str = "wal.bin";

/// Failure while persisting or restoring a session.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The stored bytes are corrupt beyond the recoverable WAL tail.
    Corrupt(CorruptError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "session store I/O error: {e}"),
            Self::Corrupt(e) => write!(f, "session store corrupt: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CorruptError> for PersistError {
    fn from(e: CorruptError) -> Self {
        Self::Corrupt(e)
    }
}

/// What a [`SessionStore::load`] recovered, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    /// WAL records replayed on top of the snapshot.
    pub replayed_windows: usize,
    /// Stale WAL records skipped because a [`SessionStore::compact`] had
    /// already folded their windows into the snapshot (non-zero only after
    /// a crash between the snapshot rename and the WAL truncation).
    pub skipped_windows: usize,
    /// True when a torn tail (crash mid-append) was discarded.
    pub truncated_tail: bool,
    /// Size of the snapshot file in bytes.
    pub snapshot_bytes: u64,
    /// Clean WAL bytes retained after recovery.
    pub wal_bytes: u64,
}

/// A directory holding one session's snapshot + WAL.
///
/// The write path is: [`SessionStore::create`] once with the bootstrap (or
/// checkpoint) state, then [`SessionStore::append`] one [`WalRecord`] per
/// window. The read path is [`SessionStore::load`], which replays the WAL
/// onto the snapshot — truncating a torn tail — and reopens it for append,
/// so a restarted process continues logging where the dead one stopped.
pub struct SessionStore {
    dir: PathBuf,
    wal: File,
    wal_bytes: u64,
    snapshot_bytes: u64,
}

impl SessionStore {
    /// Creates (or resets) the store at `dir`: writes `state` as the
    /// snapshot and starts an empty WAL.
    pub fn create(dir: impl AsRef<Path>, state: &SessionState) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let bytes = encode_state(state);
        write_atomically(&dir.join(SNAPSHOT_FILE), &bytes)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = OpenOptions::new().create(true).write(true).truncate(true).open(&wal_path)?;
        sync_dir(&wal_path)?;
        Ok(Self { dir, wal, wal_bytes: 0, snapshot_bytes: bytes.len() as u64 })
    }

    /// Opens the store at `dir`, replays the WAL onto the snapshot, and
    /// returns the recovered state together with the reopened store. A torn
    /// WAL tail is truncated away; corruption anywhere else errors.
    pub fn load(
        dir: impl AsRef<Path>,
    ) -> Result<(SessionState, Self, ResumeStats), PersistError> {
        let dir = dir.as_ref().to_path_buf();
        let mut snapshot_bytes = Vec::new();
        File::open(dir.join(SNAPSHOT_FILE))?.read_to_end(&mut snapshot_bytes)?;
        let mut state = decode_state(&snapshot_bytes)?;

        let mut wal_bytes = Vec::new();
        match File::open(dir.join(WAL_FILE)) {
            Ok(mut f) => {
                f.read_to_end(&mut wal_bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let scan = read_wal(&wal_bytes);
        let mut replayed = 0usize;
        let mut skipped = 0usize;
        for record in &scan.records {
            // A compact() that died between the snapshot rename and the WAL
            // truncation leaves the whole old log behind the new snapshot.
            // Records for windows the snapshot already contains are skipped;
            // a record that skips *ahead* still fails apply_to.
            if (record.window as usize) < state.windows.len() {
                skipped += 1;
                continue;
            }
            record.apply_to(&mut state)?;
            replayed += 1;
        }

        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(dir.join(WAL_FILE))?;
        wal.set_len(scan.clean_bytes)?;
        wal.sync_all()?;
        let stats = ResumeStats {
            replayed_windows: replayed,
            skipped_windows: skipped,
            truncated_tail: scan.truncated_tail,
            snapshot_bytes: snapshot_bytes.len() as u64,
            wal_bytes: scan.clean_bytes,
        };
        let store = Self {
            dir,
            wal,
            wal_bytes: scan.clean_bytes,
            snapshot_bytes: snapshot_bytes.len() as u64,
        };
        Ok((state, store, stats))
    }

    /// Appends one window record and fsyncs it (`sync_data`), so an
    /// acknowledged window survives OS crash or power loss, not just a
    /// process kill. Returns the framed size in bytes.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        use std::io::Seek;
        let framed = record.encode_framed();
        self.wal.seek(io::SeekFrom::Start(self.wal_bytes))?;
        self.wal.write_all(&framed)?;
        self.wal.sync_data()?;
        self.wal_bytes += framed.len() as u64;
        Ok(framed.len() as u64)
    }

    /// Rewrites the snapshot as `state` and empties the WAL — bounding
    /// restart time for long streams. Crash-safe: the new snapshot lands
    /// via fsynced rename before the WAL is truncated, and a crash between
    /// the two leaves a stale log prefix that [`Self::load`] recognises by
    /// window number and skips.
    pub fn compact(&mut self, state: &SessionState) -> io::Result<()> {
        let bytes = encode_state(state);
        write_atomically(&self.dir.join(SNAPSHOT_FILE), &bytes)?;
        self.snapshot_bytes = bytes.len() as u64;
        self.wal.set_len(0)?;
        self.wal.sync_all()?;
        self.wal_bytes = 0;
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL size in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes
    }

    /// Current snapshot size in bytes.
    pub fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes
    }
}

/// Writes `bytes` to `path` through a temporary file + rename, so readers
/// never observe a half-written snapshot. The file is fsynced before the
/// rename and the directory after it, so the swap also survives power loss.
fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path)
}

/// Fsyncs the directory containing `path`, making a rename or file creation
/// in it durable.
fn sync_dir(path: &Path) -> io::Result<()> {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => File::open(parent)?.sync_all(),
        _ => Ok(()),
    }
}

/// Persistence extension for [`StreamSession`]: warm-start a restarted
/// process from a [`SessionStore`] directory instead of re-partitioning
/// from scratch.
///
/// Bring the trait into scope (`use spinner_serving::SessionPersist;` or
/// via `spinner::prelude::*`) and call
/// `StreamSession::resume_from("state-dir")`.
pub trait SessionPersist: Sized {
    /// Rebuilds the session from `dir`'s snapshot + WAL. The result is
    /// bit-identical — labels, placement, feedback map, report history — to
    /// the session that wrote the store, including when its process died
    /// mid-append (the torn record's window is simply not yet applied).
    fn resume_from(dir: impl AsRef<Path>) -> Result<Self, PersistError>;

    /// Writes the session's current state as a fresh store at `dir`
    /// (snapshot only, empty WAL) — a one-shot checkpoint for sessions not
    /// fronted by a [`crate::ServingNode`].
    fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<(), PersistError>;
}

impl SessionPersist for StreamSession {
    fn resume_from(dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let (state, _store, _stats) = SessionStore::load(dir)?;
        Ok(StreamSession::from_state(state))
    }

    fn checkpoint_to(&self, dir: impl AsRef<Path>) -> Result<(), PersistError> {
        SessionStore::create(dir, &self.state())?;
        Ok(())
    }
}
