//! Epoch-versioned vertex → worker routing table.
//!
//! The table is the serving-side mirror of the partitioner's placement: a
//! compact flat array of [`WorkerId`]s keyed by vertex id, double-buffered
//! like the engine's `OutboxGrid` so an ingest thread can publish a new
//! placement epoch while lookup threads read without locks. Readers get
//! O(1), torn-read-free lookups through a versioned two-buffer scheme (a
//! per-buffer seqlock): the writer fills the *inactive* buffer, stamps it
//! with the new epoch's version, and only then advances the head epoch, so
//! a validated read is guaranteed to be internally consistent with some
//! published epoch — never a mix of two.
//!
//! Entries live in power-of-two *segments* that are allocated once and
//! never moved, so the read path performs zero allocations and publishing
//! allocates only when the vertex set outgrows the already-initialised
//! capacity (counted by [`RoutingTable::reallocs`], pinned in tests the
//! same way the engine's `fabric_reallocs` is).
//!
//! # Recovery epochs
//!
//! A worker-loss recovery (`ServingNode::report_worker_loss`) publishes its
//! repaired placement as an ordinary next epoch — there is no special
//! "recovery" state on the table, and readers never observe a partial
//! repair. While the recovery epoch is being written, lookups keep serving
//! the *pre-loss* epoch in full; those answers may still name the lost
//! worker, exactly as they would have an instant before the loss was
//! reported. The moment the head advances, every lookup resolves against
//! the repaired table and the lost worker no longer appears. Staleness is
//! therefore bounded the same as any publish: an answer is at most one
//! epoch behind the head observed after the call, so a caller that gets a
//! connection failure from a dead worker re-resolves at most one epoch
//! later and lands on the replacement.

use std::sync::atomic::{fence, AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use spinner_graph::VertexId;
use spinner_pregel::WorkerId;

/// log2 of the first segment's size.
const LOG_BASE: u32 = 12;
/// Size of the first segment; segment `s` holds `BASE << s` entries.
const BASE: usize = 1 << LOG_BASE;
/// Segments 0..21 cover the full `VertexId` (u32) range.
const MAX_SEGMENTS: usize = 21;

/// Splits a flat index into its (segment, offset) coordinates.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let slot = index + BASE;
    let level = usize::BITS - 1 - slot.leading_zeros();
    ((level - LOG_BASE) as usize, slot - (1usize << level))
}

/// One of the two publication buffers.
struct Buffer {
    /// Seqlock version: `2 * epoch` when the buffer holds that epoch's
    /// complete table, `2 * epoch - 1` (odd) while the writer is filling it
    /// toward `epoch`. Strictly increasing, so a reader that observes the
    /// same even version before and after its entry load has read a value
    /// belonging to exactly that epoch.
    version: AtomicU64,
    /// Number of routable vertices in the buffer's current epoch.
    len: AtomicUsize,
    /// Entry storage: segment `s` holds indices `[BASE·(2^s − 1), BASE·(2^(s+1) − 1))`.
    /// Segments are initialised once and never freed or moved, keeping
    /// readers pointer-stable without locks.
    segments: [OnceLock<Box<[AtomicU16]>>; MAX_SEGMENTS],
}

impl Buffer {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            segments: [const { OnceLock::new() }; MAX_SEGMENTS],
        }
    }
}

/// State shared between the single writer and all reader handles.
struct Shared {
    /// The latest published epoch; 0 means nothing is published yet.
    head: AtomicU64,
    bufs: [Buffer; 2],
    /// Segment allocations performed since creation (the routing-table
    /// analogue of the engine's `fabric_reallocs`): 0 in steady state once
    /// both buffers cover the working vertex range.
    grows: AtomicU64,
    /// Lookups that had to restart because a publication overlapped them.
    retries: AtomicU64,
}

/// The result of a successful routing lookup: the worker hosting the
/// vertex, tagged with the epoch the answer is consistent with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    worker: WorkerId,
    epoch: u64,
}

impl Lookup {
    /// The worker hosting the vertex at [`Self::epoch`].
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The published epoch this answer belongs to. Staleness of the answer
    /// is `head − epoch`, and is at most 1 for a read that completes after
    /// a concurrent publish (the publish after that would have invalidated
    /// and retried the read).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Writer handle of the routing table (see the [module docs](self)).
///
/// There is exactly one writer: publishing takes `&mut self`, while any
/// number of [`RoutingReader`] handles (from [`Self::reader`]) look up
/// concurrently. Dropping the table does not invalidate readers — storage
/// is shared and readers keep serving the last published epoch.
pub struct RoutingTable {
    shared: Arc<Shared>,
}

impl RoutingTable {
    /// An empty table: lookups return `None` until the first publish.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                head: AtomicU64::new(0),
                bufs: [Buffer::new(), Buffer::new()],
                grows: AtomicU64::new(0),
                retries: AtomicU64::new(0),
            }),
        }
    }

    /// An empty table with both buffers pre-sized for `capacity` vertices,
    /// so publishing never allocates until the vertex set outgrows it
    /// (keeps [`Self::reallocs`] at its creation value through a stream of
    /// same-sized windows).
    pub fn with_capacity(capacity: VertexId) -> Self {
        let table = Self::new();
        for buf in &table.shared.bufs {
            table.ensure_capacity(buf, capacity as usize);
        }
        table
    }

    /// A reader handle sharing this table's storage. Cheap to clone and
    /// `Send`, so lookup threads each take their own.
    pub fn reader(&self) -> RoutingReader {
        RoutingReader { shared: Arc::clone(&self.shared) }
    }

    /// Publishes `workers` as the next epoch (`head + 1`) and returns that
    /// epoch. Readers switch over atomically: a lookup observes either the
    /// previous epoch's table in full or this one's, never a mix.
    pub fn publish(&mut self, workers: &[WorkerId]) -> u64 {
        let next = self.shared.head.load(Ordering::Relaxed) + 1;
        self.publish_at(next, workers);
        next
    }

    /// Publishes `workers` as epoch `epoch`, which must exceed the current
    /// head. Used on restart to re-enter the epoch sequence where the
    /// persisted session left off (epoch = number of applied windows)
    /// rather than restarting from 1.
    ///
    /// # Panics
    ///
    /// Buffers alternate by epoch parity, so once anything is published,
    /// `epoch` must differ from the head in parity — otherwise the write
    /// would land on the buffer readers are actively serving and lookups
    /// would spin for the whole rewrite instead of staying wait-free.
    /// Consecutive epochs (all [`Self::publish`] calls) always satisfy
    /// this; a same-parity jump past the head (e.g. head 2 → epoch 4)
    /// panics. From head 0 any starting epoch is fine.
    pub fn publish_at(&mut self, epoch: u64, workers: &[WorkerId]) {
        let head = self.shared.head.load(Ordering::Relaxed);
        assert!(epoch > head, "epoch {epoch} must exceed head {head}");
        assert!(
            head == 0 || (epoch ^ head) & 1 == 1,
            "epoch {epoch} shares parity with head {head}: it would rewrite the buffer \
             readers are serving; publish an adjacent-parity (e.g. consecutive) epoch"
        );
        let buf = &self.shared.bufs[(epoch & 1) as usize];
        // Mark the buffer as being rewritten *before* touching entries; the
        // release fence orders the marker ahead of the entry stores, so a
        // reader that sees any new entry also sees the odd version and
        // retries instead of attributing the value to the old epoch.
        buf.version.store(2 * epoch - 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.ensure_capacity(buf, workers.len());
        for (v, &w) in workers.iter().enumerate() {
            let (seg, off) = locate(v);
            let segment = buf.segments[seg].get().expect("capacity ensured");
            segment[off].store(w, Ordering::Relaxed);
        }
        buf.len.store(workers.len(), Ordering::Relaxed);
        // Stamp the buffer complete, then advance the head. Release on both
        // stores: a reader that observes the new head (or the new version)
        // observes every entry written above.
        buf.version.store(2 * epoch, Ordering::Release);
        self.shared.head.store(epoch, Ordering::Release);
    }

    /// The latest published epoch (0 before the first publish).
    pub fn head(&self) -> u64 {
        self.shared.head.load(Ordering::Acquire)
    }

    /// Total segment allocations since creation — the zero-steady-state
    /// allocation pin: after warm-up (or [`Self::with_capacity`]) this must
    /// not change while the stream's vertex range stays within capacity.
    pub fn reallocs(&self) -> u64 {
        self.shared.grows.load(Ordering::Relaxed)
    }

    /// Total lookup restarts caused by concurrent publications, across all
    /// readers. Lookups never block — this counts the (rare) spins.
    pub fn retries(&self) -> u64 {
        self.shared.retries.load(Ordering::Relaxed)
    }

    fn ensure_capacity(&self, buf: &Buffer, len: usize) {
        if len == 0 {
            return;
        }
        let (last_seg, _) = locate(len - 1);
        for seg in 0..=last_seg {
            buf.segments[seg].get_or_init(|| {
                self.shared.grows.fetch_add(1, Ordering::Relaxed);
                (0..BASE << seg).map(|_| AtomicU16::new(0)).collect()
            });
        }
    }
}

impl Default for RoutingTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Lock-free reader handle of a [`RoutingTable`].
#[derive(Clone)]
pub struct RoutingReader {
    shared: Arc<Shared>,
}

impl RoutingReader {
    /// Resolves vertex `v` to its hosting worker at some published epoch
    /// (at most one behind the head by completion time). Returns `None`
    /// before the first publish or for a vertex the answering epoch does
    /// not know (beyond its vertex count).
    ///
    /// O(1), lock-free, and allocation-free: the read validates a seqlock
    /// version around a single array load and retries only when a publish
    /// overlapped it.
    pub fn lookup(&self, v: VertexId) -> Option<Lookup> {
        loop {
            let epoch = self.shared.head.load(Ordering::Acquire);
            if epoch == 0 {
                return None;
            }
            let buf = &self.shared.bufs[(epoch & 1) as usize];
            if buf.version.load(Ordering::Acquire) != 2 * epoch {
                // The writer is already two epochs ahead and mid-rewrite of
                // this buffer; re-read the head (it has since advanced).
                self.shared.retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
                continue;
            }
            let len = buf.len.load(Ordering::Relaxed);
            let worker = if (v as usize) < len {
                let (seg, off) = locate(v as usize);
                match buf.segments[seg].get() {
                    Some(segment) => Some(segment[off].load(Ordering::Relaxed)),
                    // Unreachable when the version validates below; treat
                    // as a torn read and retry.
                    None => {
                        self.shared.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            } else {
                None
            };
            // Order the entry load before the validation load, then accept
            // the answer only if no publication touched the buffer
            // in between (versions only grow — no ABA).
            fence(Ordering::Acquire);
            if buf.version.load(Ordering::Relaxed) == 2 * epoch {
                return worker.map(|worker| Lookup { worker, epoch });
            }
            self.shared.retries.fetch_add(1, Ordering::Relaxed);
            std::hint::spin_loop();
        }
    }

    /// The latest published epoch (0 before the first publish). A lookup
    /// completed after this call returns an epoch `>=` this value minus 1.
    pub fn head(&self) -> u64 {
        self.shared.head.load(Ordering::Acquire)
    }

    /// The vertex count of the head epoch's table.
    pub fn len(&self) -> usize {
        loop {
            let epoch = self.shared.head.load(Ordering::Acquire);
            if epoch == 0 {
                return 0;
            }
            let buf = &self.shared.bufs[(epoch & 1) as usize];
            if buf.version.load(Ordering::Acquire) != 2 * epoch {
                std::hint::spin_loop();
                continue;
            }
            let len = buf.len.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if buf.version.load(Ordering::Relaxed) == 2 * epoch {
                return len;
            }
        }
    }

    /// True before the first publish (no epoch to serve).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_serves_nothing() {
        let table = RoutingTable::new();
        let reader = table.reader();
        assert_eq!(reader.lookup(0), None);
        assert_eq!(reader.head(), 0);
        assert!(reader.is_empty());
    }

    #[test]
    fn publish_and_lookup_round_trip() {
        let mut table = RoutingTable::new();
        let reader = table.reader();
        let epoch = table.publish(&[3, 1, 4, 1, 5]);
        assert_eq!(epoch, 1);
        for (v, &w) in [3u16, 1, 4, 1, 5].iter().enumerate() {
            let hit = reader.lookup(v as VertexId).expect("published vertex");
            assert_eq!(hit.worker(), w);
            assert_eq!(hit.epoch(), 1);
        }
        assert_eq!(reader.lookup(5), None, "beyond the table");
        assert_eq!(reader.len(), 5);
    }

    #[test]
    fn epochs_supersede_and_grow() {
        let mut table = RoutingTable::new();
        let reader = table.reader();
        table.publish(&[0, 0]);
        table.publish(&[1, 1, 1]);
        assert_eq!(reader.head(), 2);
        assert_eq!(reader.lookup(0).expect("v0").worker(), 1);
        assert_eq!(reader.lookup(2).expect("grown v2").worker(), 1);
        let third = table.publish(&[2, 2, 2, 2]);
        assert_eq!(third, 3);
        assert_eq!(reader.lookup(3).expect("v3").epoch(), 3);
    }

    #[test]
    fn publish_at_reenters_epoch_sequence() {
        let mut table = RoutingTable::new();
        table.publish_at(7, &[9, 9]);
        let reader = table.reader();
        assert_eq!(reader.head(), 7);
        assert_eq!(reader.lookup(1).expect("v1").epoch(), 7);
        assert_eq!(table.publish(&[8, 8]), 8);
    }

    #[test]
    #[should_panic(expected = "shares parity with head")]
    fn same_parity_jump_past_head_is_rejected() {
        let mut table = RoutingTable::new();
        table.publish(&[1, 1]); // head 1
        table.publish(&[2, 2]); // head 2
        table.publish_at(4, &[4, 4]); // would rewrite the buffer serving head 2
    }

    #[test]
    fn odd_parity_jump_past_head_is_fine() {
        let mut table = RoutingTable::new();
        table.publish(&[1, 1]);
        table.publish(&[2, 2]);
        table.publish_at(5, &[5, 5]);
        let reader = table.reader();
        assert_eq!(reader.head(), 5);
        assert_eq!(reader.lookup(0).expect("v0").worker(), 5);
    }

    #[test]
    fn with_capacity_pins_reallocs() {
        let mut table = RoutingTable::with_capacity(10_000);
        let grows = table.reallocs();
        assert!(grows > 0);
        let workers: Vec<WorkerId> = (0..10_000).map(|v| (v % 7) as WorkerId).collect();
        for _ in 0..20 {
            table.publish(&workers);
        }
        assert_eq!(table.reallocs(), grows, "steady-state publish allocated");
    }

    #[test]
    fn segment_coordinates_are_dense_and_in_bounds() {
        let mut expect: usize = 0;
        let mut prev = (0usize, 0usize);
        for index in 0..(BASE * 8) {
            let (seg, off) = locate(index);
            assert!(off < BASE << seg, "offset out of segment {seg}");
            if index == 0 {
                assert_eq!((seg, off), (0, 0));
            } else if seg == prev.0 {
                assert_eq!(off, prev.1 + 1, "gap within segment at {index}");
            } else {
                assert_eq!(seg, prev.0 + 1, "segment skip at {index}");
                assert_eq!(off, 0);
            }
            prev = (seg, off);
            expect += 1;
        }
        assert_eq!(expect, BASE * 8);
        // The last segment covers the top of the u32 vertex range.
        let (seg, _) = locate(u32::MAX as usize);
        assert!(seg < MAX_SEGMENTS);
    }
}
