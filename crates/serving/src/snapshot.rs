//! Binary snapshot of a [`SessionState`]: everything a restarted process
//! needs to rebuild a [`spinner_core::StreamSession`] via
//! [`spinner_core::StreamSession::from_state`] — config, directed graph,
//! labels, live placement, feedback map, and the window-report history.
//!
//! Layout: an 8-byte magic, a varint-encoded payload, and a trailing
//! CRC-32 of the payload. The graph is stored as per-vertex degree plus
//! delta-encoded sorted neighbour gaps (CSR order is already sorted), which
//! keeps the file a small multiple of the in-memory CSR.

use spinner_core::config::{BalanceObjective, RestartScope};
use spinner_core::{SessionState, SpinnerConfig, WindowReport, WindowReportParts};
use spinner_graph::GraphBuilder;
use spinner_pregel::{RetryConfig, TransportKind, WireFormat};
use std::time::Duration;

use crate::codec::{crc32, ByteReader, ByteWriter, CorruptError, Result};

/// Magic prefix of a snapshot file (versioned; bump on layout change —
/// `SPNRSNP2` added `lost_vertices` to the window-report record;
/// `SPNRSNP3` added `computed` to the window-report record and the
/// scheduler knobs — `frontier_windows`, `work_stealing`, `steal_chunk`,
/// `dense_scan` — to the config record; `SPNRSNP4` added the message-fabric
/// knobs — `transport`, `wire_format`, `sender_fold` — to the config record
/// and the wire counters — `wire_bytes`, `wire_frames`, `wire_folded` — to
/// the window-report record; `SPNRSNP5` added the transport-reliability
/// knobs — `transport_retry` — to the config record and the resilience
/// counters — `retransmits`, `lanes_degraded`, `lanes_dead` — to the
/// window-report record).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SPNRSNP5";

/// Encodes `state` into a self-verifying snapshot byte vector.
pub fn encode_state(state: &SessionState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_config(&mut w, &state.cfg);
    // Graph: vertex count, then degree + neighbour gaps per vertex.
    let graph = &state.graph;
    w.put_varint(u64::from(graph.num_vertices()));
    for v in graph.vertices() {
        let neighbors = graph.out_neighbors(v);
        w.put_varint(neighbors.len() as u64);
        let mut prev = 0u64;
        for &d in neighbors {
            w.put_varint(u64::from(d) - prev);
            prev = u64::from(d);
        }
    }
    w.put_varint(state.labels.len() as u64);
    for &l in &state.labels {
        w.put_varint(u64::from(l));
    }
    w.put_varint(state.placement.len() as u64);
    for &p in &state.placement {
        w.put_varint(u64::from(p));
    }
    match &state.label_assignment {
        None => w.put_u8(0),
        Some(assignment) => {
            w.put_u8(1);
            w.put_varint(assignment.len() as u64);
            for &a in assignment {
                w.put_varint(u64::from(a));
            }
        }
    }
    w.put_varint(state.windows.len() as u64);
    for report in &state.windows {
        put_report(&mut w, &report.to_parts());
    }

    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

/// Decodes a snapshot produced by [`encode_state`], verifying magic and
/// checksum.
pub fn decode_state(bytes: &[u8]) -> Result<SessionState> {
    let payload =
        bytes.strip_prefix(SNAPSHOT_MAGIC).ok_or(CorruptError { context: "snapshot magic" })?;
    if payload.len() < 4 {
        return Err(CorruptError { context: "snapshot checksum" });
    }
    let (payload, crc_bytes) = payload.split_at(payload.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(payload) != stored {
        return Err(CorruptError { context: "snapshot checksum" });
    }

    let mut r = ByteReader::new(payload);
    let cfg = read_config(&mut r)?;
    let n = r.varint("graph vertex count")? as u32;
    let mut builder = GraphBuilder::new(n);
    for v in 0..n {
        let degree = r.varint("vertex degree")?;
        let mut prev = 0u64;
        for _ in 0..degree {
            prev += r.varint("neighbour gap")?;
            let d =
                u32::try_from(prev).map_err(|_| CorruptError { context: "neighbour id" })?;
            builder.add_edge(v, d);
        }
    }
    let graph = builder.build();

    let labels = read_u32_list(&mut r, "labels")?;
    let placement_raw = read_u32_list(&mut r, "placement")?;
    let mut placement = Vec::with_capacity(placement_raw.len());
    for p in placement_raw {
        placement.push(u16::try_from(p).map_err(|_| CorruptError { context: "worker id" })?);
    }
    let label_assignment = match r.u8("assignment tag")? {
        0 => None,
        1 => {
            let raw = read_u32_list(&mut r, "label assignment")?;
            let mut assignment = Vec::with_capacity(raw.len());
            for a in raw {
                assignment
                    .push(u16::try_from(a).map_err(|_| CorruptError { context: "worker id" })?);
            }
            Some(assignment)
        }
        _ => return Err(CorruptError { context: "assignment tag" }),
    };
    let window_count = r.varint("window count")?;
    let mut windows = Vec::new();
    for _ in 0..window_count {
        windows.push(WindowReport::from_parts(read_report(&mut r)?));
    }
    if !r.is_exhausted() {
        return Err(CorruptError { context: "snapshot trailing bytes" });
    }
    Ok(SessionState { cfg, graph, labels, placement, label_assignment, windows })
}

fn read_u32_list(r: &mut ByteReader<'_>, context: &'static str) -> Result<Vec<u32>> {
    let len = r.varint(context)?;
    let mut out = Vec::with_capacity(len.min(1 << 24) as usize);
    for _ in 0..len {
        out.push(u32::try_from(r.varint(context)?).map_err(|_| CorruptError { context })?);
    }
    Ok(out)
}

fn put_config(w: &mut ByteWriter, cfg: &SpinnerConfig) {
    w.put_varint(u64::from(cfg.k));
    w.put_f64(cfg.c);
    w.put_f64(cfg.epsilon);
    w.put_varint(u64::from(cfg.window));
    w.put_varint(u64::from(cfg.max_iterations));
    w.put_u8(u8::from(cfg.ignore_halting));
    w.put_varint(cfg.seed);
    w.put_varint(cfg.num_workers as u64);
    w.put_varint(cfg.num_threads as u64);
    w.put_u8(u8::from(cfg.async_worker_loads));
    w.put_u8(u8::from(cfg.balance_penalty));
    w.put_u8(u8::from(cfg.probabilistic_migration));
    w.put_u8(u8::from(cfg.in_engine_conversion));
    w.put_u8(match cfg.objective {
        BalanceObjective::Edges => 0,
        BalanceObjective::Vertices => 1,
    });
    match &cfg.capacity_weights {
        None => w.put_u8(0),
        Some(weights) => {
            w.put_u8(1);
            w.put_varint(weights.len() as u64);
            for &weight in weights {
                w.put_f64(weight);
            }
        }
    }
    w.put_u8(match cfg.restart_scope {
        RestartScope::All => 0,
        RestartScope::AffectedOnly => 1,
    });
    match cfg.placement_feedback {
        None => w.put_u8(0),
        Some(threshold) => {
            w.put_u8(1);
            w.put_f64(threshold);
        }
    }
    w.put_u8(u8::from(cfg.broadcast_fabric));
    w.put_u8(u8::from(cfg.exhaustive_candidate_scan));
    w.put_u8(u8::from(cfg.frontier_windows));
    w.put_u8(u8::from(cfg.work_stealing));
    w.put_varint(cfg.steal_chunk as u64);
    w.put_u8(u8::from(cfg.dense_scan));
    w.put_u8(match cfg.transport {
        TransportKind::Direct => 0,
        TransportKind::Ring => 1,
    });
    w.put_u8(match cfg.wire_format {
        WireFormat::Raw => 0,
        WireFormat::Compact => 1,
    });
    w.put_u8(u8::from(cfg.sender_fold));
    w.put_u8(u8::from(cfg.transport_retry.reliable));
    w.put_varint(u64::from(cfg.transport_retry.max_retransmits));
    w.put_varint(cfg.transport_retry.backoff_base.as_micros() as u64);
    w.put_varint(cfg.transport_retry.take_deadline.as_millis() as u64);
}

fn read_config(r: &mut ByteReader<'_>) -> Result<SpinnerConfig> {
    let k = u32::try_from(r.varint("config k")?)
        .ok()
        .filter(|&k| k >= 1)
        .ok_or(CorruptError { context: "config k" })?;
    let mut cfg = SpinnerConfig::new(k);
    cfg.c = r.f64("config c")?;
    cfg.epsilon = r.f64("config epsilon")?;
    cfg.window = read_u32(r, "config window")?;
    cfg.max_iterations = read_u32(r, "config max_iterations")?;
    cfg.ignore_halting = read_bool(r, "config ignore_halting")?;
    cfg.seed = r.varint("config seed")?;
    cfg.num_workers = read_count(r, "config num_workers")?;
    cfg.num_threads = read_count(r, "config num_threads")?;
    cfg.async_worker_loads = read_bool(r, "config async_worker_loads")?;
    cfg.balance_penalty = read_bool(r, "config balance_penalty")?;
    cfg.probabilistic_migration = read_bool(r, "config probabilistic_migration")?;
    cfg.in_engine_conversion = read_bool(r, "config in_engine_conversion")?;
    cfg.objective = match r.u8("config objective")? {
        0 => BalanceObjective::Edges,
        1 => BalanceObjective::Vertices,
        _ => return Err(CorruptError { context: "config objective" }),
    };
    cfg.capacity_weights = match r.u8("config capacity tag")? {
        0 => None,
        1 => {
            let len = r.varint("config capacity len")?;
            let mut weights = Vec::with_capacity(len.min(1 << 16) as usize);
            for _ in 0..len {
                weights.push(r.f64("config capacity weight")?);
            }
            Some(weights)
        }
        _ => return Err(CorruptError { context: "config capacity tag" }),
    };
    cfg.restart_scope = match r.u8("config restart_scope")? {
        0 => RestartScope::All,
        1 => RestartScope::AffectedOnly,
        _ => return Err(CorruptError { context: "config restart_scope" }),
    };
    cfg.placement_feedback = match r.u8("config feedback tag")? {
        0 => None,
        1 => Some(r.f64("config feedback threshold")?),
        _ => return Err(CorruptError { context: "config feedback tag" }),
    };
    cfg.broadcast_fabric = read_bool(r, "config broadcast_fabric")?;
    cfg.exhaustive_candidate_scan = read_bool(r, "config exhaustive_candidate_scan")?;
    cfg.frontier_windows = read_bool(r, "config frontier_windows")?;
    cfg.work_stealing = read_bool(r, "config work_stealing")?;
    cfg.steal_chunk = usize::try_from(r.varint("config steal_chunk")?)
        .map_err(|_| CorruptError { context: "config steal_chunk" })?;
    cfg.dense_scan = read_bool(r, "config dense_scan")?;
    cfg.transport = match r.u8("config transport")? {
        0 => TransportKind::Direct,
        1 => TransportKind::Ring,
        _ => return Err(CorruptError { context: "config transport" }),
    };
    cfg.wire_format = match r.u8("config wire_format")? {
        0 => WireFormat::Raw,
        1 => WireFormat::Compact,
        _ => return Err(CorruptError { context: "config wire_format" }),
    };
    cfg.sender_fold = read_bool(r, "config sender_fold")?;
    cfg.transport_retry = RetryConfig {
        reliable: read_bool(r, "config retry reliable")?,
        max_retransmits: read_u32(r, "config retry max_retransmits")?,
        backoff_base: Duration::from_micros(r.varint("config retry backoff_base")?),
        take_deadline: Duration::from_millis(r.varint("config retry take_deadline")?),
    };
    Ok(cfg)
}

fn read_u32(r: &mut ByteReader<'_>, context: &'static str) -> Result<u32> {
    u32::try_from(r.varint(context)?).map_err(|_| CorruptError { context })
}

/// Reads a worker/thread count: 1..=2^16 (worker ids are `u16`). Keeps a
/// corrupt-but-CRC-valid snapshot from panicking downstream (e.g. in
/// `Placement::explicit`'s asserts) or allocating per a huge bogus count.
fn read_count(r: &mut ByteReader<'_>, context: &'static str) -> Result<usize> {
    let raw = r.varint(context)?;
    if !(1..=1 << 16).contains(&raw) {
        return Err(CorruptError { context });
    }
    Ok(raw as usize)
}

fn read_bool(r: &mut ByteReader<'_>, context: &'static str) -> Result<bool> {
    match r.u8(context)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(CorruptError { context }),
    }
}

/// Appends one [`WindowReportParts`] (shared by snapshot and WAL records).
pub(crate) fn put_report(w: &mut ByteWriter, parts: &WindowReportParts) {
    w.put_varint(u64::from(parts.window));
    w.put_varint(u64::from(parts.k));
    w.put_varint(u64::from(parts.num_vertices));
    w.put_varint(parts.num_edges);
    w.put_f64(parts.phi);
    w.put_f64(parts.rho);
    w.put_f64(parts.migration_fraction);
    w.put_varint(u64::from(parts.iterations));
    w.put_varint(parts.supersteps);
    w.put_varint(parts.messages);
    w.put_varint(parts.sent_local);
    w.put_varint(parts.sent_remote);
    w.put_varint(parts.sent_local_records);
    w.put_varint(parts.sent_remote_records);
    w.put_varint(parts.placement_moved);
    w.put_varint(parts.computed);
    w.put_varint(parts.wall_ns);
    w.put_varint(parts.fabric_reallocs);
    w.put_varint(parts.lost_vertices);
    w.put_varint(parts.wire_bytes);
    w.put_varint(parts.wire_frames);
    w.put_varint(parts.wire_folded);
    w.put_varint(parts.retransmits);
    w.put_varint(parts.lanes_degraded);
    w.put_varint(parts.lanes_dead);
}

/// Reads one [`WindowReportParts`] appended by [`put_report`].
pub(crate) fn read_report(r: &mut ByteReader<'_>) -> Result<WindowReportParts> {
    Ok(WindowReportParts {
        window: r.varint("report window")? as u32,
        k: r.varint("report k")? as u32,
        num_vertices: r.varint("report num_vertices")? as u32,
        num_edges: r.varint("report num_edges")?,
        phi: r.f64("report phi")?,
        rho: r.f64("report rho")?,
        migration_fraction: r.f64("report migration_fraction")?,
        iterations: r.varint("report iterations")? as u32,
        supersteps: r.varint("report supersteps")?,
        messages: r.varint("report messages")?,
        sent_local: r.varint("report sent_local")?,
        sent_remote: r.varint("report sent_remote")?,
        sent_local_records: r.varint("report sent_local_records")?,
        sent_remote_records: r.varint("report sent_remote_records")?,
        placement_moved: r.varint("report placement_moved")?,
        computed: r.varint("report computed")?,
        wall_ns: r.varint("report wall_ns")?,
        fabric_reallocs: r.varint("report fabric_reallocs")?,
        lost_vertices: r.varint("report lost_vertices")?,
        wire_bytes: r.varint("report wire_bytes")?,
        wire_frames: r.varint("report wire_frames")?,
        wire_folded: r.varint("report wire_folded")?,
        retransmits: r.varint("report retransmits")?,
        lanes_degraded: r.varint("report lanes_degraded")?,
        lanes_dead: r.varint("report lanes_dead")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_core::{StreamEvent, StreamSession};
    use spinner_graph::generators::{planted_partition, SbmConfig};
    use spinner_graph::GraphDelta;

    fn sample_state() -> SessionState {
        let graph = planted_partition(SbmConfig {
            n: 400,
            communities: 4,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 11,
        });
        let mut cfg = SpinnerConfig::new(4).with_seed(5).with_placement_feedback(0.5);
        cfg.num_workers = 4;
        cfg.max_iterations = 40;
        let mut session = StreamSession::new(graph, cfg);
        session.apply(StreamEvent::Delta(GraphDelta::additions(vec![(0, 200), (1, 399)])));
        session.state()
    }

    #[test]
    fn snapshot_round_trips_bit_identical() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).expect("decodes");
        assert_eq!(decoded.labels, state.labels);
        assert_eq!(decoded.placement, state.placement);
        assert_eq!(decoded.label_assignment, state.label_assignment);
        assert_eq!(decoded.windows, state.windows);
        assert_eq!(decoded.graph.num_vertices(), state.graph.num_vertices());
        assert_eq!(decoded.graph.num_edges(), state.graph.num_edges());
        let edges_a: Vec<_> = state.graph.edges().collect();
        let edges_b: Vec<_> = decoded.graph.edges().collect();
        assert_eq!(edges_a, edges_b);
        assert_eq!(decoded.cfg.k, state.cfg.k);
        assert_eq!(decoded.cfg.seed, state.cfg.seed);
        assert_eq!(decoded.cfg.placement_feedback, state.cfg.placement_feedback);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut bytes = encode_state(&sample_state());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(decode_state(&bytes).is_err(), "checksum missed a flipped bit");
    }

    #[test]
    fn out_of_range_config_counts_are_corrupt_not_panics() {
        for workers in [0usize, (1 << 16) + 1] {
            let mut state = sample_state();
            state.cfg.num_workers = workers;
            let bytes = encode_state(&state);
            let err = decode_state(&bytes).expect_err("bogus num_workers must not decode");
            assert!(format!("{err}").contains("num_workers"), "unexpected error: {err}");
        }
        let mut state = sample_state();
        state.cfg.num_threads = 0;
        assert!(decode_state(&encode_state(&state)).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_state(&sample_state());
        assert!(decode_state(&bytes[..bytes.len() - 9]).is_err());
        assert!(decode_state(&bytes[..4]).is_err());
    }
}
