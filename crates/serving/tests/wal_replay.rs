//! Crash-recovery property: run a persistent [`ServingNode`] over a random
//! event stream, kill it after a random window prefix — optionally tearing
//! the last WAL record, as a crash mid-append would — resume, and finish
//! the stream. The resumed run must end bit-identical to an uninterrupted
//! session that saw the same events.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{DirectedGraph, GraphBuilder, GraphDelta};
use spinner_serving::{ServingNode, SessionPersist};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("spinner-wal-replay-{}-{n}", std::process::id()))
}

fn base_graph(n: u32, seed: u64) -> DirectedGraph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let mut rng = seed | 1;
    for _ in 0..n * 2 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (rng >> 33) as u32 % n;
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let b = (rng >> 33) as u32 % n;
        if a != b {
            edges.push((a, b));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn cfg(k: u32, seed: u64) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(seed);
    cfg.num_workers = 8;
    cfg.num_threads = 2;
    cfg.max_iterations = 10;
    cfg.placement_feedback = Some(0.05);
    cfg
}

/// Turns a proptest-drawn spec into a concrete event: growth deltas keyed
/// off the current vertex count, or an elastic resize.
fn materialize(spec: (u8, u64), current_n: u32) -> StreamEvent {
    let (kind, seed) = spec;
    if kind % 4 == 3 {
        StreamEvent::Resize { k: 2 + u32::from(kind % 3) }
    } else {
        let mut rng = seed | 1;
        let new_vertices = 4 + (kind % 8) as u32;
        let mut added = Vec::new();
        for i in 0..6 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (rng >> 33) as u32 % current_n;
            added.push((a, current_n + (i % new_vertices)));
        }
        StreamEvent::Delta(GraphDelta {
            new_vertices,
            added_edges: added,
            removed_edges: vec![],
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill-and-resume at any window, with or without a torn tail, ends in
    /// the exact state of the uninterrupted run.
    #[test]
    fn resumed_run_is_bit_identical(
        seed in 0u64..1000,
        specs in prop::collection::vec((any::<u8>(), any::<u64>()), 2..5),
        prefix_hint in any::<u8>(),
        tear_bytes in 0u64..12,
    ) {
        let n0 = 250;
        let prefix = 1 + usize::from(prefix_hint) % specs.len();

        // Reference: one uninterrupted session over the whole stream.
        let mut reference = StreamSession::new(base_graph(n0, seed), cfg(3, seed));
        let mut events = Vec::new();
        for &spec in &specs {
            let event = materialize(spec, reference.graph().num_vertices());
            reference.apply(event.clone());
            events.push(event);
        }

        // Persistent run, killed after `prefix` windows.
        let dir = scratch_dir();
        let mut node = ServingNode::with_persistence(
            StreamSession::new(base_graph(n0, seed), cfg(3, seed)),
            &dir,
        ).expect("create store");
        for event in &events[..prefix] {
            node.ingest(event.clone()).expect("ingest");
        }
        drop(node); // the "crash"

        // Optionally tear the tail of the WAL, as an interrupted append would.
        let wal_path = dir.join("wal.bin");
        let wal_len = std::fs::metadata(&wal_path).expect("wal exists").len();
        let torn = tear_bytes > 0 && tear_bytes < wal_len;
        if torn {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .expect("open wal")
                .set_len(wal_len - tear_bytes)
                .expect("truncate");
        }

        let (mut resumed, stats) = ServingNode::resume_from(&dir).expect("resume");
        let replay_from = stats.replayed_windows;
        prop_assert!(replay_from <= prefix);
        if torn {
            // A torn tail loses exactly the interrupted record, never more.
            prop_assert_eq!(replay_from, prefix - 1);
            prop_assert!(stats.truncated_tail);
        } else {
            prop_assert_eq!(replay_from, prefix);
        }

        // Finish the stream: re-ingest the window whose record was torn,
        // then everything the dead process never saw.
        for event in &events[replay_from..] {
            resumed.ingest(event.clone()).expect("ingest after resume");
        }

        prop_assert_eq!(resumed.session().labels(), reference.labels());
        prop_assert_eq!(
            resumed.session().placement().as_slice(),
            reference.placement().as_slice()
        );
        prop_assert_eq!(resumed.session().windows().len(), reference.windows().len());
        for (a, b) in resumed.session().windows().iter().zip(reference.windows()) {
            prop_assert_eq!(a.phi().to_bits(), b.phi().to_bits());
            prop_assert_eq!(a.rho().to_bits(), b.rho().to_bits());
            prop_assert_eq!(a.messages(), b.messages());
        }
        prop_assert_eq!(resumed.epoch(), reference.windows().len() as u64);

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The `SessionPersist` trait surface alone (no node) round-trips too.
    #[test]
    fn session_checkpoint_resume_round_trip(seed in 0u64..200) {
        let mut session = StreamSession::new(base_graph(200, seed), cfg(2, seed));
        session.apply(materialize((1, seed), session.graph().num_vertices()));
        let dir = scratch_dir();
        session.checkpoint_to(&dir).expect("checkpoint");
        let restored = StreamSession::resume_from(&dir).expect("resume");
        prop_assert_eq!(restored.labels(), session.labels());
        prop_assert_eq!(restored.placement().as_slice(), session.placement().as_slice());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
