//! Single-bit corruption property: flip *any one bit* of a valid session
//! store — snapshot or WAL — and resume. The store must never panic and
//! never serve silently wrong data: a corrupt snapshot is a typed
//! [`PersistError::Corrupt`], and a corrupt WAL record cleanly truncates
//! the log at the last record that still checks out, resuming to exactly
//! the state those records rebuild.

use std::sync::OnceLock;

use proptest::prelude::*;
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{GraphBuilder, GraphDelta};
use spinner_pregel::WorkerId;
use spinner_serving::{
    decode_state, read_wal, MemStorage, PersistError, ServingNode, StoreFile,
};

/// A valid store's bytes plus, for every possible replay depth, the exact
/// state a resume stopping there must reconstruct.
struct Fixture {
    snapshot: Vec<u8>,
    wal: Vec<u8>,
    wal_records: usize,
    /// `expected[r]` = (labels, placement, window count) after the snapshot
    /// plus the first `r` WAL records.
    expected: Vec<(Vec<u32>, Vec<WorkerId>, usize)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let n = 220;
        let graph = GraphBuilder::new(n)
            .add_edges((0..n).map(|v| (v, (v + 1) % n)))
            .add_edges((0..n / 2).map(|v| (v, (v * 7 + 3) % n)))
            .build();
        let mut cfg = SpinnerConfig::new(3).with_seed(17).with_placement_feedback(0.05);
        cfg.num_workers = 4;
        cfg.num_threads = 2;
        cfg.max_iterations = 10;

        let disk = MemStorage::new();
        let session = StreamSession::new(graph, cfg);
        let mut node =
            ServingNode::with_storage(session, Box::new(disk.clone())).expect("create store");
        let state_of = |node: &ServingNode| {
            (
                node.session().labels().to_vec(),
                node.session().placement().as_slice().to_vec(),
                node.session().windows().len(),
            )
        };
        let mut expected = vec![state_of(&node)];
        for i in 0..3u32 {
            node.ingest(StreamEvent::Delta(GraphDelta {
                new_vertices: 6,
                added_edges: vec![(i * 11 % n, n + i * 6), (i * 29 % n, n + 1 + i * 6)],
                removed_edges: vec![],
            }))
            .expect("ingest");
            expected.push(state_of(&node));
        }
        drop(node);
        Fixture {
            snapshot: disk.dump(StoreFile::Snapshot).expect("snapshot written"),
            wal: disk.dump(StoreFile::Wal).expect("wal written"),
            wal_records: 3,
            expected,
        }
    })
}

fn flipped(bytes: &[u8], bit: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let bit = (bit % (out.len() as u64 * 8)) as usize;
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any snapshot bit — magic, payload, or checksum — flips to a typed
    /// corruption error, both at the decoder and through a full resume.
    #[test]
    fn snapshot_bit_flip_is_a_typed_error_never_a_panic(bit in any::<u64>()) {
        let fx = fixture();
        let bad = flipped(&fx.snapshot, bit);
        prop_assert!(decode_state(&bad).is_err(), "checksum missed the flip");

        let disk = MemStorage::new();
        disk.plant(StoreFile::Snapshot, bad);
        disk.plant(StoreFile::Wal, fx.wal.clone());
        match ServingNode::resume_from_storage(Box::new(disk)) {
            Err(PersistError::Corrupt(_)) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            Ok(_) => prop_assert!(false, "resumed from a corrupt snapshot"),
        }
    }

    /// Any WAL bit-flip lands inside some record's CRC frame, so the scan
    /// truncates at that record — never a panic, and the resumed state is
    /// exactly what the surviving clean prefix rebuilds.
    #[test]
    fn wal_bit_flip_truncates_cleanly_never_serves_wrong_data(bit in any::<u64>()) {
        let fx = fixture();
        let bad = flipped(&fx.wal, bit);

        let scan = read_wal(&bad);
        prop_assert!(scan.truncated_tail, "flipped record passed its checksum");
        prop_assert!(scan.records.len() < fx.wal_records);
        prop_assert!(scan.truncated_bytes > 0);

        let disk = MemStorage::new();
        disk.plant(StoreFile::Snapshot, fx.snapshot.clone());
        disk.plant(StoreFile::Wal, bad);
        let (node, stats) =
            ServingNode::resume_from_storage(Box::new(disk.clone())).expect("prefix resumes");
        prop_assert!(stats.truncated_tail);
        prop_assert_eq!(stats.replayed_windows, scan.records.len());
        let (labels, placement, windows) = &fx.expected[stats.replayed_windows];
        prop_assert_eq!(node.session().labels(), labels.as_slice());
        prop_assert_eq!(node.session().placement().as_slice(), placement.as_slice());
        prop_assert_eq!(&node.session().windows().len(), windows);

        // The resume truncated the corrupt tail off the medium: a second
        // resume is clean and identical.
        drop(node);
        let (again, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("clean second resume");
        prop_assert!(!stats.truncated_tail);
        prop_assert_eq!(again.session().labels(), labels.as_slice());
    }
}
