//! Crash-resume chaos sweep: kill the storage at *every* op index in turn
//! (snapshot write, WAL reset, each append), let the node die, resume a new
//! node over the same medium, finish the stream, and assert the result is
//! bit-identical to an uninterrupted run. No surviving kill point may lose
//! an acknowledged window or invent one.

use std::time::Duration;

use proptest::prelude::*;
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{DirectedGraph, GraphBuilder, GraphDelta};
use spinner_serving::{
    Fault, FaultPlan, FaultyStorage, Health, MemStorage, RetryPolicy, ServingNode,
};

fn base_graph(n: u32, seed: u64) -> DirectedGraph {
    let mut edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let mut rng = seed | 1;
    for _ in 0..n * 2 {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (rng >> 33) as u32 % n;
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let b = (rng >> 33) as u32 % n;
        if a != b {
            edges.push((a, b));
        }
    }
    GraphBuilder::new(n).add_edges(edges).build()
}

fn cfg(k: u32, seed: u64) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(seed);
    cfg.num_workers = 8;
    cfg.num_threads = 2;
    cfg.max_iterations = 10;
    cfg.placement_feedback = Some(0.05);
    cfg
}

/// Turns a proptest-drawn spec into a concrete event: growth deltas keyed
/// off the current vertex count, or an elastic resize.
fn materialize(spec: (u8, u64), current_n: u32) -> StreamEvent {
    let (kind, seed) = spec;
    if kind % 4 == 3 {
        StreamEvent::Resize { k: 2 + u32::from(kind % 3) }
    } else {
        let mut rng = seed | 1;
        let new_vertices = 4 + (kind % 8) as u32;
        let mut added = Vec::new();
        for i in 0..6 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = (rng >> 33) as u32 % current_n;
            added.push((a, current_n + (i % new_vertices)));
        }
        StreamEvent::Delta(GraphDelta {
            new_vertices,
            added_edges: added,
            removed_edges: vec![],
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For a random stream, schedule a process death at every storage op
    /// index the uninterrupted run would perform — op 0 is the bootstrap
    /// snapshot, op 1 the WAL reset, op `2 + i` window `i`'s append — and
    /// verify each death point resumes to the uninterrupted run's exact
    /// state. `keep` tears that many bytes of a killed append onto the
    /// medium first, exercising the torn-tail truncation path.
    #[test]
    fn kill_at_every_op_index_resumes_bit_identical(
        seed in 0u64..1000,
        specs in prop::collection::vec((any::<u8>(), any::<u64>()), 2..5),
        keep in 0usize..12,
    ) {
        let n0 = 200;

        // Reference: one uninterrupted session over the whole stream.
        let mut reference = StreamSession::new(base_graph(n0, seed), cfg(3, seed));
        let mut events = Vec::new();
        for &spec in &specs {
            let event = materialize(spec, reference.graph().num_vertices());
            reference.apply(event.clone());
            events.push(event);
        }
        let total_ops = 2 + events.len() as u64;

        for kill_op in 0..total_ops {
            let disk = MemStorage::new();
            let plan = FaultPlan::new().fail(kill_op, Fault::Kill { keep });
            let storage = FaultyStorage::new(disk.clone(), plan);
            // No retries, no grace: the first failure after the kill is the
            // moment the "process" stops ingesting.
            let policy = RetryPolicy {
                attempts: 1,
                base_backoff: Duration::ZERO,
                max_degraded_windows: 0,
            };

            // Run until the kill fires; count windows acknowledged durable.
            let mut durable = 0usize;
            if let Ok(node) = ServingNode::with_storage(
                StreamSession::new(base_graph(n0, seed), cfg(3, seed)),
                Box::new(storage),
            ) {
                let mut node = node.with_retry_policy(policy);
                for event in &events {
                    match node.ingest(event.clone()) {
                        Ok(rep) if rep.health() == Health::Healthy => durable += 1,
                        _ => break, // storage dead — the process dies here
                    }
                }
                drop(node); // the crash
            }
            if kill_op >= 2 {
                prop_assert_eq!(durable as u64, kill_op - 2, "kill at op {}", kill_op);
            } else {
                prop_assert_eq!(durable, 0, "store creation died at op {}", kill_op);
            }

            // Restart over the same medium and finish the stream.
            let (mut node, start) =
                match ServingNode::resume_from_storage(Box::new(disk.clone())) {
                    Ok((node, stats)) => {
                        prop_assert_eq!(
                            stats.replayed_windows, durable,
                            "kill at op {} lost or invented a window", kill_op
                        );
                        // A killed append with torn bytes leaves a tail the
                        // resume must discard; a clean kill leaves none.
                        let torn = keep > 0 && kill_op >= 2;
                        prop_assert_eq!(stats.truncated_tail, torn);
                        prop_assert_eq!(stats.truncated_bytes > 0, torn);
                        (node, durable)
                    }
                    Err(_) => {
                        // Only a death before the bootstrap snapshot landed
                        // loses the store entirely; recreate from scratch.
                        prop_assert_eq!(kill_op, 0, "post-snapshot death must resume");
                        let node = ServingNode::with_storage(
                            StreamSession::new(base_graph(n0, seed), cfg(3, seed)),
                            Box::new(disk.clone()),
                        )
                        .expect("clean medium");
                        (node, 0)
                    }
                };
            for event in &events[start..] {
                node.ingest(event.clone()).expect("ingest after resume");
            }

            prop_assert_eq!(node.session().labels(), reference.labels());
            prop_assert_eq!(
                node.session().placement().as_slice(),
                reference.placement().as_slice()
            );
            prop_assert_eq!(node.session().windows().len(), reference.windows().len());
            for (a, b) in node.session().windows().iter().zip(reference.windows()) {
                prop_assert_eq!(a.phi().to_bits(), b.phi().to_bits());
                prop_assert_eq!(a.rho().to_bits(), b.rho().to_bits());
                prop_assert_eq!(a.messages(), b.messages());
            }
            prop_assert_eq!(node.epoch(), reference.windows().len() as u64);

            // And the finished store itself resumes clean — the recovery
            // left no torn or stale bytes behind.
            let (again, stats) =
                ServingNode::resume_from_storage(Box::new(disk)).expect("final resume");
            prop_assert!(!stats.truncated_tail);
            prop_assert_eq!(again.session().labels(), reference.labels());
        }
    }
}
