//! Lookup-during-migration safety: reader threads hammer a [`RoutingTable`]
//! while one writer publishes a long sequence of growing placements. Every
//! lookup must be internally consistent with *some* published epoch — never
//! a torn mix of two — and no staler than the head the reader itself
//! observed around the call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use spinner_pregel::WorkerId;
use spinner_serving::RoutingTable;

/// Deterministic worker for `(epoch, v)` — lets readers verify a lookup
/// against the publishing epoch without sharing the placement vectors.
fn expected(epoch: u64, v: u32) -> WorkerId {
    let x = epoch
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(v).wrapping_mul(0xD1B5_4A32_D192_ED03));
    ((x >> 33) % 64) as WorkerId
}

fn placement(epoch: u64, len: usize) -> Vec<WorkerId> {
    (0..len as u32).map(|v| expected(epoch, v)).collect()
}

/// Table size at `epoch` — crosses the 4096-entry segment boundary and
/// keeps growing, so readers race both epoch flips and segment allocation.
fn len_at(epoch: u64) -> usize {
    3_000 + (epoch as usize) * 700
}

#[test]
fn concurrent_lookups_always_match_a_published_epoch() {
    const EPOCHS: u64 = 48;
    const READERS: usize = 4;

    let mut table = RoutingTable::with_capacity(len_at(EPOCHS) as u32);
    table.publish_at(1, &placement(1, len_at(1)));

    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..READERS {
        let reader = table.reader();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut verified = 0u64;
            let mut last_epoch = 0u64;
            let mut rng = 0x1234_5678_u64 ^ (t as u64) << 40;
            while !done.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let head_before = reader.head();
                let v = (rng >> 33) as u32 % len_at(head_before) as u32;
                let Some(hit) = reader.lookup(v) else {
                    // Only possible when v raced past a *shrinking* table;
                    // our tables only grow, so a published v must resolve.
                    panic!("lookup({v}) missed at head {head_before}");
                };
                let head_after = reader.head();
                // Torn-read check: worker and epoch must agree.
                assert_eq!(
                    hit.worker(),
                    expected(hit.epoch(), v),
                    "worker/epoch mismatch at v={v} epoch={}",
                    hit.epoch()
                );
                // Staleness: the hit comes from an epoch that was head at
                // some instant during the call.
                assert!(
                    hit.epoch() >= head_before && hit.epoch() <= head_after,
                    "epoch {} outside [{head_before}, {head_after}]",
                    hit.epoch()
                );
                // Head never runs backwards for a single reader.
                assert!(hit.epoch() >= last_epoch, "epoch regressed");
                last_epoch = hit.epoch();
                verified += 1;
            }
            verified
        }));
    }

    for epoch in 2..=EPOCHS {
        table.publish_at(epoch, &placement(epoch, len_at(epoch)));
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    done.store(true, Ordering::Relaxed);

    let verified: u64 = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(verified > 1_000, "readers barely ran ({verified} lookups)");

    // Quiesced: every read now serves the final epoch exactly — staleness 0.
    let reader = table.reader();
    assert_eq!(reader.head(), EPOCHS);
    for v in (0..len_at(EPOCHS) as u32).step_by(97) {
        let hit = reader.lookup(v).expect("published");
        assert_eq!(hit.epoch(), EPOCHS);
        assert_eq!(hit.worker(), expected(EPOCHS, v));
    }
}

/// Worker-loss recovery publish: a recovery epoch is an ordinary publish,
/// so readers racing it must (a) never see a torn mix of the pre-loss and
/// repaired tables, (b) stop naming the lost worker the instant their
/// answer carries the recovery epoch, and (c) keep getting answers the
/// whole time — availability never drops while the repair is written.
#[test]
fn worker_loss_publish_never_tears_and_retires_the_lost_worker() {
    const LOST: WorkerId = 13;
    const VERTICES: usize = 20_000;
    const READERS: usize = 4;
    const ROUNDS: u64 = 24;

    // Pre-loss placement at odd epochs, repaired placement at even epochs:
    // the repair moves exactly the lost worker's vertices (round-robin over
    // survivors) and leaves everything else in place, like
    // `StreamSession`'s by-label re-placement after a `WorkerLoss` event.
    fn pre_loss(round: u64, v: u32) -> WorkerId {
        expected(round, v)
    }
    fn repaired(round: u64, v: u32) -> WorkerId {
        let w = pre_loss(round, v);
        if w == LOST {
            (usize::from(LOST) + 1 + v as usize % 7) as WorkerId
        } else {
            w
        }
    }

    let mut table = RoutingTable::with_capacity(VERTICES as u32);
    table.publish_at(1, &(0..VERTICES as u32).map(|v| pre_loss(0, v)).collect::<Vec<_>>());

    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..READERS {
        let reader = table.reader();
        let done = Arc::clone(&done);
        handles.push(std::thread::spawn(move || {
            let mut verified = 0u64;
            let mut rng = 0xBEEF_CAFE_u64 ^ (t as u64) << 40;
            while !done.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = (rng >> 33) as u32 % VERTICES as u32;
                let hit = reader.lookup(v).expect("availability dropped during recovery");
                // Epoch 2r+1 serves pre-loss round r, epoch 2r+2 its repair.
                let round = (hit.epoch() - 1) / 2;
                if hit.epoch() & 1 == 1 {
                    assert_eq!(hit.worker(), pre_loss(round, v), "torn pre-loss read at v={v}");
                } else {
                    assert_eq!(hit.worker(), repaired(round, v), "torn recovery read at v={v}");
                    assert_ne!(
                        hit.worker(),
                        LOST,
                        "recovery epoch still routed to the lost worker"
                    );
                }
                verified += 1;
            }
            verified
        }));
    }

    for round in 0..ROUNDS {
        // Loss reported: publish the repair, then the next window's table.
        table.publish_at(
            2 * round + 2,
            &(0..VERTICES as u32).map(|v| repaired(round, v)).collect::<Vec<_>>(),
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
        if round + 1 < ROUNDS {
            table.publish_at(
                2 * round + 3,
                &(0..VERTICES as u32).map(|v| pre_loss(round + 1, v)).collect::<Vec<_>>(),
            );
        }
    }
    done.store(true, Ordering::Relaxed);

    let verified: u64 = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
    assert!(verified > 1_000, "readers barely ran ({verified} lookups)");

    // Quiesced on the final repair: the lost worker is gone from the table.
    let reader = table.reader();
    assert_eq!(reader.head(), 2 * ROUNDS);
    for v in (0..VERTICES as u32).step_by(61) {
        let hit = reader.lookup(v).expect("published");
        assert_ne!(hit.worker(), LOST);
        assert_eq!(hit.worker(), repaired(ROUNDS - 1, v));
    }
}

#[test]
fn preallocated_table_publishes_without_growing() {
    let mut table = RoutingTable::with_capacity(len_at(8) as u32);
    let baseline = table.reallocs();
    for epoch in 1..=8 {
        table.publish_at(epoch, &placement(epoch, len_at(epoch)));
    }
    assert_eq!(table.reallocs(), baseline, "publishes within capacity must not allocate");
}
