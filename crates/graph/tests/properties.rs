//! Property-based tests for the graph substrate: CSR invariants, the Eq. 3
//! conversion, deltas, and I/O round-trips.

use proptest::prelude::*;
use spinner_graph::conversion::{to_naive_undirected, to_weighted_undirected};
use spinner_graph::mutation::{apply_delta, sample_new_edges, sample_removed_edges};
use spinner_graph::{DeltaStream, DeltaStreamConfig, GraphBuilder, GraphDelta, VertexId};

/// Arbitrary edge list over up to `n` vertices.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The builder produces sorted, deduplicated, loop-free CSR whatever the
    /// input order.
    #[test]
    fn builder_invariants(edges in edge_list(40, 300)) {
        let g = GraphBuilder::new(40).add_edges(edges.iter().copied()).build();
        let mut expected: Vec<(u32, u32)> =
            edges.into_iter().filter(|(a, b)| a != b).collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(g.num_edges() as usize, expected.len());
        let got: Vec<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(got, expected);
        for v in g.vertices() {
            let ns = g.out_neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// Eq. 3 conversion: symmetric adjacency; weight 2 exactly on reciprocal
    /// pairs; total weight = 2 |directed edges|.
    #[test]
    fn conversion_matches_reference(edges in edge_list(30, 200)) {
        let g = GraphBuilder::new(30).add_edges(edges.iter().copied()).build();
        let u = to_weighted_undirected(&g);
        prop_assert_eq!(u.total_weight(), 2 * g.num_edges());
        for (a, b, w) in u.edges_once() {
            let fwd = g.has_edge(a, b);
            let rev = g.has_edge(b, a);
            prop_assert!(fwd || rev);
            let expect = if fwd && rev { 2 } else { 1 };
            prop_assert_eq!(w, expect, "edge {}-{}", a, b);
            // Symmetry.
            prop_assert_eq!(u.edge_weight(b, a), Some(w));
        }
        // Every directed edge appears as an undirected one.
        for (a, b) in g.edges() {
            prop_assert!(u.edge_weight(a, b).is_some());
        }
        // Naive conversion has the same structure with unit weights.
        let naive = to_naive_undirected(&g);
        prop_assert_eq!(naive.num_edges(), u.num_edges());
        prop_assert!(naive.edges_once().all(|(_, _, w)| w == 1));
    }

    /// Weighted degrees sum to the total weight, and neighbor lookups agree
    /// with edges_once.
    #[test]
    fn weighted_degree_consistency(edges in edge_list(25, 150)) {
        let g = GraphBuilder::new(25).add_edges(edges.iter().copied()).build();
        let u = to_weighted_undirected(&g);
        let sum: u64 = u.vertices().map(|v| u.weighted_degree(v)).sum();
        prop_assert_eq!(sum, u.total_weight());
        let via_edges: u64 = u.edges_once().map(|(_, _, w)| 2 * w as u64).sum();
        prop_assert_eq!(via_edges, u.total_weight());
    }

    /// apply_delta: added edges present, removed edges absent, untouched
    /// edges preserved.
    #[test]
    fn delta_application(
        base in edge_list(20, 100),
        added in edge_list(20, 30),
        removed_idx in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
    ) {
        let g = GraphBuilder::new(20).add_edges(base.iter().copied()).build();
        let existing: Vec<(u32, u32)> = g.edges().collect();
        let removed: Vec<(u32, u32)> = if existing.is_empty() {
            vec![]
        } else {
            removed_idx.iter().map(|i| *i.get(&existing)).collect()
        };
        let delta = GraphDelta {
            added_edges: added.clone(),
            removed_edges: removed.clone(),
            new_vertices: 2,
        };
        let g2 = apply_delta(&g, &delta);
        prop_assert_eq!(g2.num_vertices(), g.num_vertices() + 2);
        for &(a, b) in &removed {
            // Removed unless re-added.
            if !added.contains(&(a, b)) {
                prop_assert!(!g2.has_edge(a, b));
            }
        }
        for &(a, b) in &added {
            if a != b && !removed.contains(&(a, b)) {
                prop_assert!(g2.has_edge(a, b));
            }
        }
        for (a, b) in g.edges() {
            if !removed.contains(&(a, b)) {
                prop_assert!(g2.has_edge(a, b), "lost edge {}->{}", a, b);
            }
        }
    }

    /// Edge-list I/O round-trips.
    #[test]
    fn io_roundtrip(edges in edge_list(30, 200)) {
        let g = GraphBuilder::new(0).add_edges(edges.iter().copied()).build();
        let mut buf = Vec::new();
        spinner_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = spinner_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// apply_delta ∘ inverse is the identity on edge-only deltas, whatever
    /// junk the delta carries (absent removals, duplicate/self additions,
    /// removed-then-re-added edges).
    #[test]
    fn delta_inverse_round_trips(
        base in edge_list(25, 150),
        added in edge_list(25, 40),
        removed_idx in prop::collection::vec(any::<prop::sample::Index>(), 0..15),
        bogus_removed in edge_list(25, 10),
    ) {
        let g = GraphBuilder::new(25).add_edges(base.iter().copied()).build();
        let existing: Vec<(u32, u32)> = g.edges().collect();
        let mut removed: Vec<(u32, u32)> = if existing.is_empty() {
            vec![]
        } else {
            removed_idx.iter().map(|i| *i.get(&existing)).collect()
        };
        // Removals of absent edges must not break the round-trip either.
        removed.extend(bogus_removed);
        let delta = GraphDelta { added_edges: added, removed_edges: removed, new_vertices: 0 };
        let g2 = apply_delta(&g, &delta);
        let back = apply_delta(&g2, &delta.inverse(&g));
        prop_assert_eq!(back, g);
    }

    /// Streamed deltas are clean — no self edges, no duplicate additions,
    /// additions absent from and removals present in the pre-window graph —
    /// and the evolving graph keeps its degree sums consistent under mixed
    /// add/delete/arrival windows.
    #[test]
    fn stream_deltas_are_clean_and_degree_consistent(
        seed in 0u64..500,
        windows in 1u32..5,
        hub_pct in 0u32..=100,
    ) {
        let hub_bias = hub_pct as f64 / 100.0;
        let base = GraphBuilder::new(60)
            .add_edges((0..59u32).map(|i| (i, i + 1)).chain((0..58u32).map(|i| (i, i + 2))))
            .build();
        let cfg = DeltaStreamConfig {
            windows,
            add_fraction: 0.06,
            remove_fraction: 0.04,
            vertex_fraction: 0.03,
            attach_degree: 2,
            triadic_fraction: 0.5,
            hub_bias,
            seed,
        };
        let mut replayed = base.clone();
        let mut stream = DeltaStream::new(base, cfg);
        for delta in &mut stream {
            let n = replayed.num_vertices();
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &delta.added_edges {
                prop_assert!(u != v, "self edge {}->{}", u, v);
                prop_assert!(seen.insert((u, v)), "duplicate addition {}->{}", u, v);
                if u < n {
                    prop_assert!(!replayed.has_edge(u, v), "re-added live edge {}->{}", u, v);
                } else {
                    // Arrival edges come from freshly minted vertices.
                    prop_assert!(u < n + delta.new_vertices);
                }
            }
            for &(u, v) in &delta.removed_edges {
                prop_assert!(replayed.has_edge(u, v), "removed absent edge {}->{}", u, v);
            }
            replayed = apply_delta(&replayed, &delta);

            // Degree sums stay consistent after every window.
            let degree_sum: u64 =
                replayed.vertices().map(|v| replayed.out_degree(v) as u64).sum();
            prop_assert_eq!(degree_sum, replayed.num_edges());
            let u = to_weighted_undirected(&replayed);
            let weighted_sum: u64 = u.vertices().map(|v| u.weighted_degree(v)).sum();
            prop_assert_eq!(weighted_sum, u.total_weight());
            prop_assert_eq!(u.total_weight(), 2 * replayed.num_edges());
        }
        prop_assert_eq!(&replayed, stream.graph());
    }

    /// sample_removed_edges yields distinct live edges only.
    #[test]
    fn removed_edge_sampler(seed in 0u64..1000, count in 0usize..40) {
        let g = GraphBuilder::new(50)
            .add_edges((0..49u32).flat_map(|i| [(i, i + 1), (i + 1, i)]))
            .build();
        let removed = sample_removed_edges(&g, count, seed);
        prop_assert_eq!(removed.len(), count.min(g.num_edges() as usize));
        let mut seen = std::collections::HashSet::new();
        for (u, v) in removed {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(seen.insert((u, v)));
        }
    }

    /// sample_new_edges yields distinct absent edges.
    #[test]
    fn new_edge_sampler(seed in 0u64..1000) {
        let g = GraphBuilder::new(50)
            .add_edges((0..49u32).map(|i| (i, i + 1)))
            .build();
        let edges = sample_new_edges(&g, 30, 0.5, seed);
        let mut seen = std::collections::HashSet::new();
        for (a, b) in edges {
            prop_assert!(a != b);
            prop_assert!(!g.has_edge(a, b));
            prop_assert!(seen.insert((a, b)));
        }
    }
}
