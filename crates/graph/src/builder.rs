//! Incremental construction of [`DirectedGraph`]s from edge lists.

use crate::directed::DirectedGraph;
use crate::ids::{edge_key, unpack_edge_key, VertexId};

/// Accumulates directed edges and produces a deduplicated, sorted CSR graph.
///
/// Self-loops are dropped and duplicate edges are merged, matching the data
/// model assumed by the paper (simple directed graphs). The builder accepts
/// edges in any order and at any rate; construction cost is `O(E log E)`.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: VertexId,
    /// Edges packed as `src << 32 | dst` for cache-friendly sorting.
    edges: Vec<u64>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        Self { num_vertices, edges: Vec::new() }
    }

    /// Pre-allocates capacity for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// The number of vertices this builder was configured with.
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Grows the vertex count (never shrinks).
    pub fn grow_vertices(&mut self, num_vertices: VertexId) {
        self.num_vertices = self.num_vertices.max(num_vertices);
    }

    /// Adds one directed edge. Out-of-range endpoints grow the vertex count;
    /// self-loops are silently dropped.
    #[inline]
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        if src != dst {
            self.num_vertices = self.num_vertices.max(src.max(dst) + 1);
            self.edges.push(edge_key(src, dst));
        }
        self
    }

    /// Adds many edges (builder-style).
    pub fn add_edges(mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        for (s, d) in edges {
            self.add_edge(s, d);
        }
        self
    }

    /// Adds many edges through a mutable reference.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (s, d) in edges {
            self.add_edge(s, d);
        }
    }

    /// Number of edges currently buffered (before deduplication).
    pub fn buffered_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a [`DirectedGraph`].
    pub fn build(mut self) -> DirectedGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.num_vertices as usize;
        let mut offsets = vec![0u64; n + 1];
        for &key in &self.edges {
            let (src, _) = unpack_edge_key(key);
            offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<VertexId> =
            self.edges.iter().map(|&key| unpack_edge_key(key).1).collect();
        DirectedGraph::from_csr(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g =
            GraphBuilder::new(3).add_edges([(0, 1), (0, 1), (1, 1), (2, 0), (0, 2)]).build();
        assert_eq!(g.num_edges(), 3); // (0,1) deduped, (1,1) dropped
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn vertex_count_grows_to_fit_edges() {
        let g = GraphBuilder::new(1).add_edges([(0, 7)]).build();
        assert_eq!(g.num_vertices(), 8);
    }

    #[test]
    fn unsorted_input_produces_sorted_adjacency() {
        let g = GraphBuilder::new(4).add_edges([(1, 3), (1, 0), (1, 2)]).build();
        assert_eq!(g.out_neighbors(1), &[0, 2, 3]);
    }

    #[test]
    fn extend_and_mutable_add() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.extend_edges([(1, 0)]);
        assert_eq!(b.buffered_edges(), 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn grow_vertices_never_shrinks() {
        let mut b = GraphBuilder::new(10);
        b.grow_vertices(5);
        assert_eq!(b.num_vertices(), 10);
        b.grow_vertices(20);
        assert_eq!(b.num_vertices(), 20);
    }
}
