//! Synthetic analogues of the paper's evaluation datasets (Table II).
//!
//! The original datasets are proprietary (Tuenti), enormous (Yahoo!: 1.4B
//! vertices), or both. Each analogue reproduces the *structural properties*
//! that drive Spinner's behaviour on that dataset — community locality,
//! degree skew, host-level web locality, directedness — at a scale that runs
//! on one machine. See DESIGN.md §2 for the substitution rationale.

use crate::conversion::{from_undirected_edges, to_weighted_undirected};
use crate::directed::DirectedGraph;
use crate::generators::{
    barabasi_albert, planted_partition, rmat, weblike, PowerLawConfig, RmatConfig, SbmConfig,
    WeblikeConfig,
};
use crate::ids::VertexId;
use crate::undirected::UndirectedGraph;

/// The datasets of Table II, by their paper abbreviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// LiveJournal: directed social graph, strong communities (4.8M/69M).
    LiveJournal,
    /// Tuenti: undirected social graph, dense (12M/685M).
    Tuenti,
    /// Google+: directed social graph (29M/462M).
    GooglePlus,
    /// Twitter: directed follower graph with extreme hubs (40M/1.5B).
    Twitter,
    /// Friendster: undirected social graph, weak communities (66M/1.8B).
    Friendster,
    /// Yahoo!: directed web graph with host locality (1.4B/6.6B).
    Yahoo,
}

/// How large an analogue to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few thousand vertices; for unit/integration tests.
    Tiny,
    /// Tens of thousands of vertices; for quick experiment previews.
    Small,
    /// The experiment scale used to regenerate the paper's numbers.
    Full,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.02,
            Scale::Small => 0.2,
            Scale::Full => 1.0,
        }
    }
}

impl Dataset {
    /// All datasets in Table II order.
    pub const ALL: [Dataset; 6] = [
        Dataset::LiveJournal,
        Dataset::Tuenti,
        Dataset::GooglePlus,
        Dataset::Twitter,
        Dataset::Friendster,
        Dataset::Yahoo,
    ];

    /// The five graphs of Fig. 3 (Yahoo! is shown separately in Fig. 4b).
    pub const FIG3: [Dataset; 5] = [
        Dataset::LiveJournal,
        Dataset::GooglePlus,
        Dataset::Tuenti,
        Dataset::Twitter,
        Dataset::Friendster,
    ];

    /// Paper abbreviation (Table II).
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LJ",
            Dataset::Tuenti => "TU",
            Dataset::GooglePlus => "G+",
            Dataset::Twitter => "TW",
            Dataset::Friendster => "FR",
            Dataset::Yahoo => "Y!",
        }
    }

    /// Whether the source dataset is directed (Table II).
    pub fn directed(self) -> bool {
        !matches!(self, Dataset::Tuenti | Dataset::Friendster)
    }

    /// Builds the directed synthetic analogue at the requested scale.
    ///
    /// For the undirected datasets (TU, FR) the emitted edges should be
    /// interpreted as undirected; [`Dataset::build_undirected`] does so.
    pub fn build_directed(self, scale: Scale) -> DirectedGraph {
        let f = scale.factor();
        let n = |base: u32| -> VertexId { ((base as f64 * f) as VertexId).max(256) };
        match self {
            Dataset::LiveJournal => planted_partition(SbmConfig {
                n: n(100_000),
                communities: (200.0 * f).max(8.0) as u32,
                internal_degree: 10.0,
                external_degree: 4.0,
                skew: Some(PowerLawConfig { alpha: 2.4, min_degree: 1, max_degree: 2_000 }),
                seed: 0xA11CE,
            }),
            Dataset::Tuenti => planted_partition(SbmConfig {
                n: n(60_000),
                communities: (120.0 * f).max(6.0) as u32,
                internal_degree: 40.0,
                external_degree: 16.0,
                skew: None,
                seed: 0x7E17,
            }),
            Dataset::GooglePlus => planted_partition(SbmConfig {
                n: n(120_000),
                communities: (150.0 * f).max(8.0) as u32,
                internal_degree: 10.0,
                external_degree: 6.0,
                skew: Some(PowerLawConfig { alpha: 2.2, min_degree: 1, max_degree: 5_000 }),
                seed: 0x600613,
            }),
            Dataset::Twitter => {
                // R-MAT scale chosen to approximate n; power-of-two sizes.
                let scale_bits = (n(150_000) as f64).log2().ceil() as u32;
                rmat(RmatConfig::graph500(scale_bits, 24, 0x7117))
            }
            Dataset::Friendster => {
                let nn = n(160_000);
                barabasi_albert(nn, 14, 0xF12E)
            }
            Dataset::Yahoo => weblike(WeblikeConfig {
                n: n(500_000),
                hosts: (5_000.0 * f).max(64.0) as u32,
                avg_degree: 5.0,
                intra_host_fraction: 0.85,
                seed: 0x1A400,
            }),
        }
    }

    /// Builds the weighted undirected analogue that Spinner partitions:
    /// Eq. 3 conversion for directed datasets, unit weights for undirected
    /// ones.
    pub fn build_undirected(self, scale: Scale) -> UndirectedGraph {
        let d = self.build_directed(scale);
        if self.directed() {
            to_weighted_undirected(&d)
        } else {
            from_undirected_edges(&d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_tiny_scale() {
        for d in Dataset::ALL {
            let g = d.build_undirected(Scale::Tiny);
            assert!(g.num_vertices() >= 256, "{:?}", d);
            assert!(g.num_edges() > 0, "{:?}", d);
        }
    }

    #[test]
    fn twitter_analogue_is_skewed() {
        let g = Dataset::Twitter.build_directed(Scale::Tiny);
        let s = crate::stats::degree_stats(&g);
        assert!(s.skew > 10.0, "skew {}", s.skew);
    }

    #[test]
    fn tuenti_analogue_is_denser_than_livejournal() {
        let tu = Dataset::Tuenti.build_directed(Scale::Tiny);
        let lj = Dataset::LiveJournal.build_directed(Scale::Tiny);
        let d_tu = tu.num_edges() as f64 / tu.num_vertices() as f64;
        let d_lj = lj.num_edges() as f64 / lj.num_vertices() as f64;
        assert!(d_tu > 2.0 * d_lj, "tu {d_tu} lj {d_lj}");
    }

    #[test]
    fn directedness_matches_table_ii() {
        assert!(Dataset::LiveJournal.directed());
        assert!(!Dataset::Tuenti.directed());
        assert!(Dataset::GooglePlus.directed());
        assert!(Dataset::Twitter.directed());
        assert!(!Dataset::Friendster.directed());
        assert!(Dataset::Yahoo.directed());
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = Dataset::LiveJournal.build_directed(Scale::Tiny);
        let small = Dataset::LiveJournal.build_directed(Scale::Small);
        assert!(small.num_vertices() > tiny.num_vertices());
    }
}
