//! Directed graph in compressed sparse row (CSR) form.

use crate::ids::VertexId;

/// An immutable directed graph stored in CSR form.
///
/// Vertices are densely numbered `0..num_vertices()`. Out-neighbour lists are
/// sorted and deduplicated; self-loops are removed at construction. This is
/// the input representation for the Spinner pipeline: the paper's data model
/// (Pregel/Giraph) is a distributed directed graph where every vertex knows
/// its outgoing edges only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectedGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated out-neighbour lists, sorted within each vertex.
    targets: Vec<VertexId>,
}

impl DirectedGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// Callers must guarantee: `offsets.len() == n + 1`, `offsets[0] == 0`,
    /// offsets are non-decreasing, `offsets[n] == targets.len()`, each
    /// adjacency run is sorted/deduplicated, and all targets are `< n`.
    /// [`crate::builder::GraphBuilder`] produces such arrays; this
    /// constructor checks the invariants in debug builds.
    pub(crate) fn from_csr(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let g = Self { offsets, targets };
        debug_assert!((0..g.num_vertices()).all(|v| {
            g.out_neighbors(v).windows(2).all(|w| w[0] < w[1])
                && g.out_neighbors(v).iter().all(|&t| (t as usize) < g.num_vertices() as usize)
        }));
        g
    }

    /// The number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// The number of directed edges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// The sorted out-neighbour list of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Whether the directed edge `(u, v)` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges `(src, dst)`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |v| self.out_neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Borrow of the raw CSR arrays `(offsets, targets)`.
    pub fn as_csr(&self) -> (&[u64], &[VertexId]) {
        (&self.offsets, &self.targets)
    }

    /// Heap memory used by the CSR arrays, in bytes (for reporting).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn basic_accessors() {
        let g = GraphBuilder::new(4).add_edges([(0, 1), (0, 2), (1, 2), (3, 0)]).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2), (2, 0)]).build();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_empty_neighborhoods() {
        let g = GraphBuilder::new(5).add_edges([(0, 4)]).build();
        for v in 1..4 {
            assert_eq!(g.out_degree(v), 0);
            assert!(g.out_neighbors(v).is_empty());
        }
    }
}
