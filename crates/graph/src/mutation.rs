//! Dynamic-graph support: deltas and realistic new-edge sampling.
//!
//! §V-C of the paper takes a Tuenti snapshot, adds "a varying number of edges
//! that correspond to actual new friendships", and measures how cheaply
//! Spinner adapts the previous partitioning. We cannot replay Tuenti's
//! friendship log, so [`sample_new_edges`] generates new friendships with the
//! canonical social-network mechanism: most new edges close open triangles
//! (friend-of-friend), the rest connect random pairs.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// A batch of changes to apply to a directed graph.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    /// Directed edges to add.
    pub added_edges: Vec<(VertexId, VertexId)>,
    /// Directed edges to remove (ignored if absent).
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Number of brand-new vertices appended after the current id range.
    pub new_vertices: VertexId,
}

impl GraphDelta {
    /// A delta that only adds edges.
    pub fn additions(edges: Vec<(VertexId, VertexId)>) -> Self {
        Self { added_edges: edges, ..Self::default() }
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added_edges.is_empty() && self.removed_edges.is_empty() && self.new_vertices == 0
    }
}

/// Applies a delta, producing the updated graph.
///
/// Cost is a full rebuild (`O(E log E)`); the paper's incremental story is
/// about the *partitioning*, not the graph storage, so a rebuild is fine.
pub fn apply_delta(g: &DirectedGraph, delta: &GraphDelta) -> DirectedGraph {
    let n = g.num_vertices() + delta.new_vertices;
    let mut removed: Vec<u64> =
        delta.removed_edges.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
    removed.sort_unstable();
    let mut b = GraphBuilder::new(n)
        .with_edge_capacity(g.num_edges() as usize + delta.added_edges.len());
    for (u, v) in g.edges() {
        if removed.binary_search(&crate::ids::edge_key(u, v)).is_err() {
            b.add_edge(u, v);
        }
    }
    for &(u, v) in &delta.added_edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Samples `count` plausible new friendship edges not present in `g`.
///
/// With probability `triadic_fraction` an edge closes an open triangle
/// (a random two-hop path from a random endpoint); otherwise it joins a
/// uniformly random pair. All sampled edges are distinct and absent from `g`.
pub fn sample_new_edges(
    g: &DirectedGraph,
    count: usize,
    triadic_fraction: f64,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices() as u64;
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut out: Vec<(VertexId, VertexId)> = Vec::with_capacity(count);
    let mut seen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(count * 2);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(100).max(10_000);
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let candidate = if rng.next_bool(triadic_fraction) {
            triadic_candidate(g, &mut rng)
        } else {
            let u = rng.next_bounded(n) as VertexId;
            let v = rng.next_bounded(n) as VertexId;
            Some((u, v))
        };
        let Some((u, v)) = candidate else {
            continue;
        };
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = crate::ids::edge_key(u, v);
        if seen.insert(key) {
            out.push((u, v));
        }
    }
    out
}

/// One friend-of-friend candidate: follow two random out-hops from a random
/// start vertex.
fn triadic_candidate(g: &DirectedGraph, rng: &mut SplitMix64) -> Option<(VertexId, VertexId)> {
    let n = g.num_vertices() as u64;
    let u = rng.next_bounded(n) as VertexId;
    let nu = g.out_neighbors(u);
    if nu.is_empty() {
        return None;
    }
    let w = nu[rng.next_bounded(nu.len() as u64) as usize];
    let nw = g.out_neighbors(w);
    if nw.is_empty() {
        return None;
    }
    let v = nw[rng.next_bounded(nw.len() as u64) as usize];
    Some((u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_partition, SbmConfig};

    fn graph() -> DirectedGraph {
        planted_partition(SbmConfig {
            n: 2000,
            communities: 8,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 3,
        })
    }

    #[test]
    fn apply_delta_adds_and_removes() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
        let d = GraphDelta {
            added_edges: vec![(2, 0)],
            removed_edges: vec![(0, 1)],
            new_vertices: 1,
        };
        let g2 = apply_delta(&g, &d);
        assert_eq!(g2.num_vertices(), 4);
        assert!(g2.has_edge(2, 0));
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 2));
    }

    #[test]
    fn sampled_edges_are_new_and_distinct() {
        let g = graph();
        let edges = sample_new_edges(&g, 500, 0.8, 9);
        assert_eq!(edges.len(), 500);
        let mut keys: Vec<_> = edges.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 500);
        for (u, v) in edges {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }

    #[test]
    fn triadic_edges_tend_to_stay_in_communities() {
        let g = graph();
        let n = g.num_vertices() as u64;
        let triadic = sample_new_edges(&g, 400, 1.0, 5);
        let random = sample_new_edges(&g, 400, 0.0, 5);
        let in_comm = |edges: &[(VertexId, VertexId)]| {
            edges.iter().filter(|&&(u, v)| u as u64 * 8 / n == v as u64 * 8 / n).count() as f64
                / edges.len() as f64
        };
        assert!(
            in_comm(&triadic) > in_comm(&random) + 0.2,
            "triadic {} vs random {}",
            in_comm(&triadic),
            in_comm(&random)
        );
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = graph();
        let g2 = apply_delta(&g, &GraphDelta::default());
        assert_eq!(g, g2);
    }
}
