//! Dynamic-graph support: deltas and realistic new-edge sampling.
//!
//! §V-C of the paper takes a Tuenti snapshot, adds "a varying number of edges
//! that correspond to actual new friendships", and measures how cheaply
//! Spinner adapts the previous partitioning. We cannot replay Tuenti's
//! friendship log, so [`sample_new_edges`] generates new friendships with the
//! canonical social-network mechanism: most new edges close open triangles
//! (friend-of-friend), the rest connect random pairs.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// A batch of changes to apply to a directed graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Directed edges to add.
    pub added_edges: Vec<(VertexId, VertexId)>,
    /// Directed edges to remove (ignored if absent).
    pub removed_edges: Vec<(VertexId, VertexId)>,
    /// Number of brand-new vertices appended after the current id range.
    pub new_vertices: VertexId,
}

impl GraphDelta {
    /// A delta that only adds edges.
    pub fn additions(edges: Vec<(VertexId, VertexId)>) -> Self {
        Self { added_edges: edges, ..Self::default() }
    }

    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added_edges.is_empty() && self.removed_edges.is_empty() && self.new_vertices == 0
    }

    /// The delta that undoes this one relative to `base`: applying `self` to
    /// `base` and then the inverse to the result yields `base` again.
    ///
    /// Normalisation happens against `base` because [`apply_delta`] is not
    /// injective on deltas — removing an absent edge or re-adding a removed
    /// one is a no-op, so a naive swap of the add/remove lists would not
    /// round-trip. The inverse removes exactly the additions that were
    /// genuinely new (`added \ E(base)`) and restores exactly the removals
    /// that genuinely existed and were not re-added (`removed ∩ E(base) \
    /// added`).
    ///
    /// Vertex additions are not invertible (ids are dense and stable, so a
    /// graph never loses vertices); inverting a delta with `new_vertices > 0`
    /// — or with added edges whose endpoints lie outside `base`'s id range,
    /// which mint vertices implicitly through [`apply_delta`] — panics.
    pub fn inverse(&self, base: &DirectedGraph) -> GraphDelta {
        assert_eq!(self.new_vertices, 0, "vertex additions cannot be inverted");
        let n = base.num_vertices();
        assert!(
            self.added_edges.iter().all(|&(u, v)| u < n && v < n),
            "added edges outside the base id range mint vertices and cannot be inverted"
        );
        let mut undo_add: Vec<(VertexId, VertexId)> = self
            .added_edges
            .iter()
            .copied()
            .filter(|&(u, v)| u != v && !base.has_edge(u, v))
            .collect();
        undo_add.sort_unstable();
        undo_add.dedup();
        // Removals of out-of-range (hence absent) edges are no-ops under
        // apply_delta, so they contribute nothing to the inverse. The added
        // set is indexed once so large churn deltas invert in linear time.
        let added: std::collections::HashSet<u64> =
            self.added_edges.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
        let mut undo_remove: Vec<(VertexId, VertexId)> = self
            .removed_edges
            .iter()
            .copied()
            .filter(|&(u, v)| {
                u < n && base.has_edge(u, v) && !added.contains(&crate::ids::edge_key(u, v))
            })
            .collect();
        undo_remove.sort_unstable();
        undo_remove.dedup();
        GraphDelta { added_edges: undo_remove, removed_edges: undo_add, new_vertices: 0 }
    }
}

/// Applies a delta, producing the updated graph.
///
/// Cost is a full rebuild (`O(E log E)`); the paper's incremental story is
/// about the *partitioning*, not the graph storage, so a rebuild is fine.
pub fn apply_delta(g: &DirectedGraph, delta: &GraphDelta) -> DirectedGraph {
    let n = g.num_vertices() + delta.new_vertices;
    let mut removed: Vec<u64> =
        delta.removed_edges.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
    removed.sort_unstable();
    let mut b = GraphBuilder::new(n)
        .with_edge_capacity(g.num_edges() as usize + delta.added_edges.len());
    for (u, v) in g.edges() {
        if removed.binary_search(&crate::ids::edge_key(u, v)).is_err() {
            b.add_edge(u, v);
        }
    }
    for &(u, v) in &delta.added_edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Samples `count` plausible new friendship edges not present in `g`.
///
/// With probability `triadic_fraction` an edge closes an open triangle
/// (a random two-hop path from a random endpoint); otherwise it joins a
/// uniformly random pair. All sampled edges are distinct and absent from `g`.
pub fn sample_new_edges(
    g: &DirectedGraph,
    count: usize,
    triadic_fraction: f64,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices() as u64;
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut out: Vec<(VertexId, VertexId)> = Vec::with_capacity(count);
    let mut seen: std::collections::HashSet<u64> =
        std::collections::HashSet::with_capacity(count * 2);
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(100).max(10_000);
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let candidate = if rng.next_bool(triadic_fraction) {
            triadic_candidate(g, &mut rng)
        } else {
            let u = rng.next_bounded(n) as VertexId;
            let v = rng.next_bounded(n) as VertexId;
            Some((u, v))
        };
        let Some((u, v)) = candidate else {
            continue;
        };
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let key = crate::ids::edge_key(u, v);
        if seen.insert(key) {
            out.push((u, v));
        }
    }
    out
}

/// Samples up to `count` distinct existing edges to delete (friendships that
/// end). Uniform over the edge set: an edge index is drawn and located in the
/// CSR offsets by binary search, so each draw is O(log n) regardless of the
/// degree distribution.
pub fn sample_removed_edges(
    g: &DirectedGraph,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let m = g.num_edges();
    if m == 0 {
        return Vec::new();
    }
    let (offsets, targets) = g.as_csr();
    let mut rng = SplitMix64::new(seed ^ 0xDE1E7E);
    let mut picked: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut out = Vec::new();
    let want = count.min(m as usize);
    let mut attempts = 0usize;
    let max_attempts = want.saturating_mul(64).max(4_096);
    while out.len() < want && attempts < max_attempts {
        attempts += 1;
        let e = rng.next_bounded(m);
        if !picked.insert(e) {
            continue;
        }
        // `partition_point` finds the first offset beyond e; its predecessor
        // is the source vertex owning CSR slot e.
        let src = offsets.partition_point(|&o| o <= e) - 1;
        out.push((src as VertexId, targets[e as usize]));
    }
    out
}

/// One friend-of-friend candidate: follow two random out-hops from a random
/// start vertex.
fn triadic_candidate(g: &DirectedGraph, rng: &mut SplitMix64) -> Option<(VertexId, VertexId)> {
    let n = g.num_vertices() as u64;
    let u = rng.next_bounded(n) as VertexId;
    let nu = g.out_neighbors(u);
    if nu.is_empty() {
        return None;
    }
    let w = nu[rng.next_bounded(nu.len() as u64) as usize];
    let nw = g.out_neighbors(w);
    if nw.is_empty() {
        return None;
    }
    let v = nw[rng.next_bounded(nw.len() as u64) as usize];
    Some((u, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_partition, SbmConfig};

    fn graph() -> DirectedGraph {
        planted_partition(SbmConfig {
            n: 2000,
            communities: 8,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 3,
        })
    }

    #[test]
    fn apply_delta_adds_and_removes() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
        let d = GraphDelta {
            added_edges: vec![(2, 0)],
            removed_edges: vec![(0, 1)],
            new_vertices: 1,
        };
        let g2 = apply_delta(&g, &d);
        assert_eq!(g2.num_vertices(), 4);
        assert!(g2.has_edge(2, 0));
        assert!(!g2.has_edge(0, 1));
        assert!(g2.has_edge(1, 2));
    }

    #[test]
    fn sampled_edges_are_new_and_distinct() {
        let g = graph();
        let edges = sample_new_edges(&g, 500, 0.8, 9);
        assert_eq!(edges.len(), 500);
        let mut keys: Vec<_> = edges.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 500);
        for (u, v) in edges {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }

    #[test]
    fn triadic_edges_tend_to_stay_in_communities() {
        let g = graph();
        let n = g.num_vertices() as u64;
        let triadic = sample_new_edges(&g, 400, 1.0, 5);
        let random = sample_new_edges(&g, 400, 0.0, 5);
        let in_comm = |edges: &[(VertexId, VertexId)]| {
            edges.iter().filter(|&&(u, v)| u as u64 * 8 / n == v as u64 * 8 / n).count() as f64
                / edges.len() as f64
        };
        assert!(
            in_comm(&triadic) > in_comm(&random) + 0.2,
            "triadic {} vs random {}",
            in_comm(&triadic),
            in_comm(&random)
        );
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = graph();
        let g2 = apply_delta(&g, &GraphDelta::default());
        assert_eq!(g, g2);
    }

    #[test]
    fn inverse_round_trips_edge_deltas() {
        let g = graph();
        let delta = GraphDelta {
            added_edges: sample_new_edges(&g, 120, 0.7, 11),
            removed_edges: sample_removed_edges(&g, 80, 13),
            new_vertices: 0,
        };
        let g2 = apply_delta(&g, &delta);
        let back = apply_delta(&g2, &delta.inverse(&g));
        assert_eq!(g, back);
    }

    #[test]
    fn inverse_handles_noop_removals_and_readds() {
        let g = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3)]).build();
        // (3, 0) is absent => its removal is a no-op; (1, 2) is removed and
        // re-added => survives; (0, 1) is a genuine removal.
        let delta = GraphDelta {
            added_edges: vec![(1, 2), (0, 2)],
            removed_edges: vec![(3, 0), (1, 2), (0, 1)],
            new_vertices: 0,
        };
        let g2 = apply_delta(&g, &delta);
        assert!(g2.has_edge(1, 2) && g2.has_edge(0, 2) && !g2.has_edge(0, 1));
        let inv = delta.inverse(&g);
        assert_eq!(inv.removed_edges, vec![(0, 2)]);
        assert_eq!(inv.added_edges, vec![(0, 1)]);
        assert_eq!(apply_delta(&g2, &inv), g);
    }

    #[test]
    #[should_panic(expected = "cannot be inverted")]
    fn inverse_rejects_vertex_additions() {
        let g = graph();
        let _ = GraphDelta { new_vertices: 1, ..GraphDelta::default() }.inverse(&g);
    }

    #[test]
    #[should_panic(expected = "mint vertices")]
    fn inverse_rejects_out_of_range_additions() {
        let g = GraphBuilder::new(3).add_edges([(0, 1)]).build();
        // apply_delta would silently grow the graph to 6 vertices here.
        let _ = GraphDelta::additions(vec![(5, 0)]).inverse(&g);
    }

    #[test]
    fn inverse_ignores_out_of_range_removals() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
        let delta = GraphDelta {
            added_edges: vec![],
            removed_edges: vec![(7, 0), (0, 9), (0, 1)],
            new_vertices: 0,
        };
        let g2 = apply_delta(&g, &delta);
        let inv = delta.inverse(&g);
        assert_eq!(inv.added_edges, vec![(0, 1)]);
        assert_eq!(apply_delta(&g2, &inv), g);
    }

    #[test]
    fn removed_edge_sampler_yields_distinct_existing_edges() {
        let g = graph();
        let removed = sample_removed_edges(&g, 300, 7);
        assert_eq!(removed.len(), 300);
        let mut keys: Vec<_> =
            removed.iter().map(|&(u, v)| crate::ids::edge_key(u, v)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 300, "duplicate removals sampled");
        for (u, v) in removed {
            assert!(g.has_edge(u, v), "sampled a non-edge {u}->{v}");
        }
    }

    #[test]
    fn removed_edge_sampler_caps_at_edge_count() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
        let removed = sample_removed_edges(&g, 100, 1);
        assert_eq!(removed.len(), 2);
        let empty = GraphBuilder::new(2).build();
        assert!(sample_removed_edges(&empty, 5, 1).is_empty());
    }
}
