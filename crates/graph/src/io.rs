//! Plain-text edge-list I/O.
//!
//! Format: one `src dst` pair per line (whitespace separated); lines starting
//! with `#` or `%` are comments. This matches the SNAP/webgraph text formats
//! that the paper's datasets ship in.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::error::GraphError;
use crate::ids::VertexId;

/// Reads a directed graph from an edge-list reader.
pub fn read_edge_list<R: Read>(reader: R) -> Result<DirectedGraph, GraphError> {
    let mut b = GraphBuilder::new(0);
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src = parse_vertex(it.next(), lineno)?;
        let dst = parse_vertex(it.next(), lineno)?;
        b.add_edge(src, dst);
    }
    Ok(b.build())
}

fn parse_vertex(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok
        .ok_or_else(|| GraphError::Parse { line, message: "expected two vertex ids".into() })?;
    tok.parse::<VertexId>()
        .map_err(|e| GraphError::Parse { line, message: format!("bad vertex id {tok:?}: {e}") })
}

/// Writes a directed graph as an edge list.
pub fn write_edge_list<W: Write>(g: &DirectedGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# directed edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a directed graph from an edge-list file.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<DirectedGraph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a directed graph to an edge-list file.
pub fn write_edge_list_file(
    g: &DirectedGraph,
    path: impl AsRef<Path>,
) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Writes a partitioning assignment as `vertex partition` lines — the output
/// format the paper describes feeding into Giraph ("a list of pairs
/// (v_i, l_j)", §V-F).
pub fn write_assignment<W: Write>(labels: &[u32], writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for (v, &l) in labels.iter().enumerate() {
        writeln!(w, "{v} {l}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (3, 0)]).build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# comment\n\n% comment\n0 1\n 1  2 \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn missing_second_vertex_is_an_error() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn assignment_format() {
        let mut buf = Vec::new();
        write_assignment(&[2, 0, 1], &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "0 2\n1 0\n2 1\n");
    }
}
