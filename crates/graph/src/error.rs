//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, mutation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an index at or beyond the vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// An input file line could not be parsed as an edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A structurally invalid request (e.g. zero partitions).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(
                    f,
                    "vertex id {vertex} out of range for graph with {num_vertices} vertices"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, num_vertices: 5 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));

        let e = GraphError::Parse { line: 3, message: "bad token".into() };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::InvalidArgument("k must be > 0".into());
        assert!(e.to_string().contains("k must be > 0"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
