//! Directed-to-weighted-undirected conversion (paper §III-A, Eq. 3).
//!
//! The naive symmetrisation used by vanilla LPA is agnostic to edge
//! direction, but Pregel applications send messages along *directed* edges.
//! Spinner therefore weights each undirected edge by the number of directed
//! edges between its endpoints:
//!
//! ```text
//! w(u,v) = 1  if (u,v) ∈ D xor (v,u) ∈ D
//! w(u,v) = 2  if (u,v) ∈ D and (v,u) ∈ D
//! ```
//!
//! so that a partitioning score expressed in these weights counts the number
//! of messages exchanged locally.
//!
//! The paper implements this as two Giraph supersteps (NeighborPropagation /
//! NeighborDiscovery); the Pregel crate mirrors those supersteps for
//! fidelity, while this module provides the equivalent offline conversion
//! used by default because it avoids materialising O(E) messages. Both paths
//! are asserted equal in integration tests.

use crate::directed::DirectedGraph;
use crate::ids::{sym_edge_key, unpack_edge_key, EdgeWeight, VertexId};
use crate::undirected::UndirectedGraph;

/// Converts a directed graph into the weighted undirected graph of Eq. 3.
pub fn to_weighted_undirected(g: &DirectedGraph) -> UndirectedGraph {
    let n = g.num_vertices() as usize;

    // 1. Canonical key per directed edge; sort + dedup yields each undirected
    //    pair exactly once.
    let mut pairs: Vec<u64> = Vec::with_capacity(g.num_edges() as usize);
    for (u, v) in g.edges() {
        pairs.push(sym_edge_key(u, v));
    }
    pairs.sort_unstable();
    pairs.dedup();

    // 2. Degree counting pass for the symmetric CSR.
    let mut offsets = vec![0u64; n + 1];
    for &key in &pairs {
        let (a, b) = unpack_edge_key(key);
        offsets[a as usize + 1] += 1;
        offsets[b as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    // 3. Fill pass. `cursor` tracks the next free slot per vertex.
    let mut cursor: Vec<u64> = offsets[..n].to_vec();
    let total = *offsets.last().unwrap() as usize;
    let mut targets = vec![0 as VertexId; total];
    let mut weights = vec![0 as EdgeWeight; total];
    for &key in &pairs {
        let (a, b) = unpack_edge_key(key);
        // Reciprocity test on the original CSR: both directions present?
        let w: EdgeWeight = if g.has_edge(a, b) && g.has_edge(b, a) { 2 } else { 1 };
        let ca = cursor[a as usize] as usize;
        targets[ca] = b;
        weights[ca] = w;
        cursor[a as usize] += 1;
        let cb = cursor[b as usize] as usize;
        targets[cb] = a;
        weights[cb] = w;
        cursor[b as usize] += 1;
    }
    // Pairs were processed in ascending (a, b) order, and for a fixed vertex
    // the counterpart ids arrive ascending too, so each adjacency run is
    // already sorted.
    UndirectedGraph::from_csr(offsets, targets, weights)
}

/// Symmetrises a graph *without* weights (every edge weight 1), i.e. the
/// "naive approach" the paper contrasts against in §III-A/Fig. 1. Used by the
/// conversion ablation experiment.
pub fn to_naive_undirected(g: &DirectedGraph) -> UndirectedGraph {
    let weighted = to_weighted_undirected(g);
    let (offsets, targets, weights) = weighted.as_csr();
    UndirectedGraph::from_csr(offsets.to_vec(), targets.to_vec(), vec![1; weights.len()])
}

/// Interprets an already-undirected edge list (each edge listed once in an
/// arbitrary direction) as an [`UndirectedGraph`] with unit weights. Used for
/// datasets that are undirected at the source (Tuenti, Friendster).
pub fn from_undirected_edges(g: &DirectedGraph) -> UndirectedGraph {
    to_naive_undirected(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The example of Fig. 1: a directed graph whose reciprocal edges get
    /// weight 2 in the converted graph.
    #[test]
    fn figure_1_conversion() {
        // Vertices 0,1,2 in partitions; edges: 0->1, 1->0, 1->2, 2->1, 0->2.
        let d =
            GraphBuilder::new(3).add_edges([(0, 1), (1, 0), (1, 2), (2, 1), (0, 2)]).build();
        let u = to_weighted_undirected(&d);
        assert_eq!(u.edge_weight(0, 1), Some(2));
        assert_eq!(u.edge_weight(1, 2), Some(2));
        assert_eq!(u.edge_weight(0, 2), Some(1));
        assert_eq!(u.total_weight(), 2 * d.num_edges());
    }

    #[test]
    fn single_direction_edges_get_weight_one() {
        let d = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3)]).build();
        let u = to_weighted_undirected(&d);
        for (_, _, w) in u.edges_once() {
            assert_eq!(w, 1);
        }
        assert_eq!(u.num_edges(), 3);
    }

    #[test]
    fn total_weight_equals_twice_directed_edges() {
        let d = GraphBuilder::new(6)
            .add_edges([(0, 1), (1, 0), (2, 3), (3, 4), (4, 3), (5, 0), (0, 5), (1, 5)])
            .build();
        let u = to_weighted_undirected(&d);
        assert_eq!(u.total_weight(), 2 * d.num_edges());
    }

    #[test]
    fn naive_conversion_loses_weights() {
        let d = GraphBuilder::new(2).add_edges([(0, 1), (1, 0)]).build();
        let naive = to_naive_undirected(&d);
        assert_eq!(naive.edge_weight(0, 1), Some(1));
        let weighted = to_weighted_undirected(&d);
        assert_eq!(weighted.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn conversion_of_empty_and_singleton() {
        let e = GraphBuilder::new(0).build();
        assert_eq!(to_weighted_undirected(&e).num_vertices(), 0);
        let s = GraphBuilder::new(1).build();
        let u = to_weighted_undirected(&s);
        assert_eq!(u.num_vertices(), 1);
        assert_eq!(u.num_edges(), 0);
    }
}
