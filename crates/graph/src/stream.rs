//! Continuous delta streams for dynamic-graph workloads.
//!
//! §V-C of the paper evaluates one-shot adaptation: add a batch of edges,
//! re-converge once. Streaming systems (SDP, Hanai et al.) instead face an
//! ordered sequence of change windows — edges appear *and* disappear,
//! vertices join, and the partitioner must re-converge after every window.
//! [`DeltaStream`] generates such a sequence from any base graph with
//! explicit churn and skew knobs, applying each emitted [`GraphDelta`] to
//! its internal copy so consecutive deltas are consistent (removals always
//! name live edges, additions are always genuinely new).

use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::mutation::{apply_delta, sample_new_edges, sample_removed_edges, GraphDelta};
use crate::rng::SplitMix64;

/// Knobs of a [`DeltaStream`]. Fractions are per window, relative to the
/// *current* (evolved) graph, so a long stream compounds.
#[derive(Debug, Clone)]
pub struct DeltaStreamConfig {
    /// Number of delta windows to emit.
    pub windows: u32,
    /// New edges per window as a fraction of the current edge count.
    pub add_fraction: f64,
    /// Removed edges per window as a fraction of the current edge count
    /// (churn knob; 0 disables deletions).
    pub remove_fraction: f64,
    /// New vertices per window as a fraction of the current vertex count.
    pub vertex_fraction: f64,
    /// Edges attaching each new vertex to the existing graph.
    pub attach_degree: u32,
    /// Fraction of added edges that close open triangles (friend-of-friend)
    /// rather than joining uniform random pairs — the locality-skew knob of
    /// [`sample_new_edges`].
    pub triadic_fraction: f64,
    /// Probability that a new vertex attaches to a degree-proportional
    /// endpoint (preferential attachment) instead of a uniform one — the
    /// degree-skew knob. 0 keeps arrivals uniform; 1 piles them onto hubs.
    pub hub_bias: f64,
    /// Stream seed (each window derives its own sub-seeds).
    pub seed: u64,
}

impl Default for DeltaStreamConfig {
    fn default() -> Self {
        Self {
            windows: 8,
            add_fraction: 0.01,
            remove_fraction: 0.005,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 1,
        }
    }
}

/// An iterator of consistent [`GraphDelta`] windows over an evolving graph.
///
/// The stream owns a copy of the graph and applies every delta it emits, so
/// `stream.graph()` is always the state *after* the last emitted window —
/// exactly what a consumer replaying the deltas independently should hold.
#[derive(Debug)]
pub struct DeltaStream {
    graph: DirectedGraph,
    cfg: DeltaStreamConfig,
    rng: SplitMix64,
    window: u32,
}

impl DeltaStream {
    /// A stream evolving from `base` under `cfg`.
    pub fn new(base: DirectedGraph, cfg: DeltaStreamConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&cfg.triadic_fraction) && (0.0..=1.0).contains(&cfg.hub_bias),
            "triadic_fraction and hub_bias are probabilities"
        );
        assert!(
            cfg.add_fraction >= 0.0 && cfg.remove_fraction >= 0.0 && cfg.vertex_fraction >= 0.0,
            "fractions must be non-negative"
        );
        let rng = SplitMix64::new(cfg.seed ^ 0x57_BEA8);
        Self { graph: base, cfg, rng, window: 0 }
    }

    /// The current (post-last-window) state of the evolving graph.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// Windows emitted so far.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Consumes the stream, returning the final graph.
    pub fn into_graph(self) -> DirectedGraph {
        self.graph
    }

    /// One attachment target for a new vertex: a degree-proportional
    /// endpoint with probability `hub_bias` (a uniformly random CSR slot's
    /// target has in-degree-proportional distribution), uniform otherwise.
    fn attach_target(&mut self) -> VertexId {
        let n = self.graph.num_vertices() as u64;
        let m = self.graph.num_edges();
        if m > 0 && self.rng.next_bool(self.cfg.hub_bias) {
            let (_, targets) = self.graph.as_csr();
            targets[self.rng.next_bounded(m) as usize]
        } else {
            self.rng.next_bounded(n) as VertexId
        }
    }
}

impl Iterator for DeltaStream {
    type Item = GraphDelta;

    fn next(&mut self) -> Option<GraphDelta> {
        if self.window >= self.cfg.windows {
            return None;
        }
        self.window += 1;
        let n = self.graph.num_vertices();
        let m = self.graph.num_edges() as f64;
        let add_count = (m * self.cfg.add_fraction).round() as usize;
        let remove_count = (m * self.cfg.remove_fraction).round() as usize;
        let new_vertices = (n as f64 * self.cfg.vertex_fraction).round() as VertexId;

        let add_seed = self.rng.next_u64();
        let remove_seed = self.rng.next_u64();
        let mut added =
            sample_new_edges(&self.graph, add_count, self.cfg.triadic_fraction, add_seed);
        let removed = sample_removed_edges(&self.graph, remove_count, remove_seed);
        // Arrivals: each new vertex friends `attach_degree` distinct existing
        // vertices. New ids are dense and above the current range, so these
        // edges can never collide with the sampled additions.
        for i in 0..new_vertices {
            let src = n + i;
            let mut targets: Vec<VertexId> =
                Vec::with_capacity(self.cfg.attach_degree as usize);
            let mut tries = 0u32;
            while targets.len() < self.cfg.attach_degree as usize && tries < 64 {
                tries += 1;
                let t = self.attach_target();
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
            added.extend(targets.into_iter().map(|t| (src, t)));
        }

        let delta = GraphDelta { added_edges: added, removed_edges: removed, new_vertices };
        self.graph = apply_delta(&self.graph, &delta);
        Some(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{planted_partition, SbmConfig};

    fn base() -> DirectedGraph {
        planted_partition(SbmConfig {
            n: 1500,
            communities: 6,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 21,
        })
    }

    #[test]
    fn emits_the_configured_number_of_windows() {
        let cfg = DeltaStreamConfig { windows: 5, ..DeltaStreamConfig::default() };
        let stream = DeltaStream::new(base(), cfg);
        assert_eq!(stream.count(), 5);
    }

    #[test]
    fn deltas_replay_to_the_stream_graph() {
        let g0 = base();
        let mut stream = DeltaStream::new(g0.clone(), DeltaStreamConfig::default());
        let mut replayed = g0;
        for delta in &mut stream {
            replayed = apply_delta(&replayed, &delta);
        }
        assert_eq!(&replayed, stream.graph());
    }

    #[test]
    fn stream_grows_and_churns() {
        let g0 = base();
        let (n0, m0) = (g0.num_vertices(), g0.num_edges());
        let cfg = DeltaStreamConfig {
            windows: 6,
            add_fraction: 0.02,
            remove_fraction: 0.01,
            vertex_fraction: 0.01,
            ..DeltaStreamConfig::default()
        };
        let mut stream = DeltaStream::new(g0, cfg);
        let mut removed_total = 0usize;
        for delta in &mut stream {
            assert!(!delta.added_edges.is_empty());
            assert!(!delta.removed_edges.is_empty());
            removed_total += delta.removed_edges.len();
        }
        assert!(stream.graph().num_vertices() > n0);
        assert!(stream.graph().num_edges() > m0, "net growth expected");
        assert!(removed_total > 0);
    }

    #[test]
    fn hub_bias_skews_arrival_degree() {
        // With hub_bias = 1 new vertices attach degree-proportionally; the
        // maximum in-degree must grow faster than under uniform attachment.
        let max_in_degree = |g: &DirectedGraph| {
            let mut indeg = vec![0u32; g.num_vertices() as usize];
            for (_, t) in g.edges() {
                indeg[t as usize] += 1;
            }
            indeg.into_iter().max().unwrap_or(0)
        };
        let mk = |hub_bias: f64| {
            let cfg = DeltaStreamConfig {
                windows: 10,
                add_fraction: 0.0,
                remove_fraction: 0.0,
                vertex_fraction: 0.05,
                attach_degree: 4,
                hub_bias,
                seed: 5,
                ..DeltaStreamConfig::default()
            };
            let mut s = DeltaStream::new(base(), cfg);
            for _ in &mut s {}
            max_in_degree(s.graph())
        };
        assert!(mk(1.0) > mk(0.0), "preferential attachment must create hubs");
    }

    #[test]
    fn zero_churn_stream_only_adds() {
        let cfg = DeltaStreamConfig {
            windows: 3,
            remove_fraction: 0.0,
            vertex_fraction: 0.0,
            ..DeltaStreamConfig::default()
        };
        for delta in DeltaStream::new(base(), cfg) {
            assert!(delta.removed_edges.is_empty());
            assert_eq!(delta.new_vertices, 0);
            assert!(!delta.added_edges.is_empty());
        }
    }
}
