//! Erdős-Rényi G(n, m) generator.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Generates a directed Erdős-Rényi graph with `n` vertices and (about)
/// `m` edges. Duplicate draws and self-loops are discarded, so the realised
/// edge count can be slightly below `m` for dense requests.
pub fn erdos_renyi(n: VertexId, m: u64, seed: u64) -> DirectedGraph {
    assert!(n > 1, "need at least two vertices");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m as usize);
    for _ in 0..m {
        let u = rng.next_bounded(n as u64) as VertexId;
        let v = rng.next_bounded(n as u64) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_about_m_edges() {
        let g = erdos_renyi(10_000, 50_000, 1);
        // Collision probability is tiny at this density.
        assert!(g.num_edges() > 49_000);
        assert!(g.num_edges() <= 50_000);
    }

    #[test]
    fn degrees_are_roughly_uniform() {
        let g = erdos_renyi(1000, 20_000, 2);
        let max = (0..1000).map(|v| g.out_degree(v)).max().unwrap();
        // Mean out-degree 20; Poisson tail makes 60 astronomically unlikely.
        assert!(max < 60, "max out degree {max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(500, 2000, 3), erdos_renyi(500, 2000, 3));
    }
}
