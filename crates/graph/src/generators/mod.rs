//! Synthetic graph generators.
//!
//! The paper evaluates on proprietary or very large graphs (Tuenti, Twitter,
//! Yahoo! web). These generators produce scaled-down graphs with the same
//! *structural* properties that drive Spinner's behaviour: community
//! locality (SBM), hub-dominated degree skew (R-MAT, Barabási-Albert),
//! small-world topology (Watts-Strogatz, used by the paper's own scalability
//! experiments §V-B), and hierarchical host locality (web-like model).
//!
//! All generators are deterministic given their seed.

mod barabasi_albert;
mod erdos_renyi;
mod power_law;
mod rmat;
mod sbm;
mod watts_strogatz;
mod weblike;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use power_law::{power_law_degrees, PowerLawConfig};
pub use rmat::{rmat, RmatConfig};
pub use sbm::{planted_partition, SbmConfig};
pub use watts_strogatz::watts_strogatz;
pub use weblike::{weblike, WeblikeConfig};
