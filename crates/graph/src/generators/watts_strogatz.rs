//! Watts-Strogatz small-world generator (paper §V-B).
//!
//! The paper's scalability experiments "connect the vertices following a ring
//! lattice topology, and re-wire 30% of the edges randomly as by the function
//! of the beta (0.3) parameter of the Watts-Strogatz model", with a fixed
//! number of outgoing edges per vertex (40).

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Generates a directed Watts-Strogatz graph.
///
/// Every vertex gets `out_degree` outgoing edges to its clockwise ring
/// successors; each edge is rewired to a uniformly random target with
/// probability `beta`.
pub fn watts_strogatz(n: VertexId, out_degree: u32, beta: f64, seed: u64) -> DirectedGraph {
    assert!(n as u64 > out_degree as u64, "need n > out_degree for a ring lattice");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(n as usize * out_degree as usize);
    for v in 0..n {
        for j in 1..=out_degree {
            let target = if rng.next_bool(beta) {
                // Rewire: uniform target, avoiding the trivial self-loop.
                let mut t = rng.next_bounded(n as u64) as VertexId;
                if t == v {
                    t = (t + 1) % n;
                }
                t
            } else {
                (v + j) % n
            };
            b.add_edge(v, target);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_rewiring_gives_exact_ring_lattice() {
        let g = watts_strogatz(10, 3, 0.0, 1);
        assert_eq!(g.num_edges(), 30);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
        assert_eq!(g.out_neighbors(9), &[0, 1, 2]);
    }

    #[test]
    fn full_rewiring_destroys_lattice_structure() {
        let g = watts_strogatz(1000, 4, 1.0, 2);
        // With all edges rewired, the fraction of lattice edges should be tiny.
        let lattice_edges =
            g.edges().filter(|&(u, v)| (1..=4).contains(&((v + 1000 - u) % 1000))).count();
        assert!(lattice_edges < 100, "still {lattice_edges} lattice edges");
    }

    #[test]
    fn edge_count_close_to_nominal() {
        // Duplicates from rewiring can merge edges; the loss must stay small.
        let g = watts_strogatz(5000, 10, 0.3, 3);
        assert!(g.num_edges() as f64 > 0.99 * 50_000.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(100, 4, 0.3, 9), watts_strogatz(100, 4, 0.3, 9));
    }
}
