//! Power-law degree sequence sampling.

use crate::rng::SplitMix64;

/// Configuration for a truncated discrete power-law distribution
/// `P(d) ∝ d^-alpha` on `[min_degree, max_degree]`.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Exponent `alpha` (> 1). Social networks typically fall in 2.0–2.5.
    pub alpha: f64,
    /// Smallest degree (≥ 1).
    pub min_degree: u32,
    /// Largest degree (inclusive cap; models finite-size cutoffs).
    pub max_degree: u32,
}

impl PowerLawConfig {
    /// A typical social-network configuration.
    pub fn social(max_degree: u32) -> Self {
        Self { alpha: 2.3, min_degree: 1, max_degree }
    }

    /// Samples one degree by inverse-transform sampling of the continuous
    /// Pareto distribution, then truncates to the configured range.
    pub fn sample(&self, rng: &mut SplitMix64) -> u32 {
        debug_assert!(self.alpha > 1.0);
        let u = rng.next_f64();
        // Inverse CDF of the Pareto with x_min = min_degree.
        let x = self.min_degree as f64 * (1.0 - u).powf(-1.0 / (self.alpha - 1.0));
        (x as u32).clamp(self.min_degree, self.max_degree)
    }
}

/// Samples a degree per vertex from the configured power law.
pub fn power_law_degrees(n: usize, cfg: PowerLawConfig, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| cfg.sample(&mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_respect_bounds() {
        let cfg = PowerLawConfig { alpha: 2.2, min_degree: 3, max_degree: 500 };
        let degs = power_law_degrees(20_000, cfg, 1);
        assert!(degs.iter().all(|&d| (3..=500).contains(&d)));
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let cfg = PowerLawConfig { alpha: 2.0, min_degree: 1, max_degree: 100_000 };
        let degs = power_law_degrees(100_000, cfg, 7);
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().map(|&d| d as f64).sum::<f64>() / degs.len() as f64;
        // Hubs should tower over the mean — the property that makes Twitter
        // hard to balance with random partitioning (paper §V-A, Fig. 4a).
        assert!(max as f64 > 50.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PowerLawConfig::social(1000);
        assert_eq!(power_law_degrees(100, cfg, 5), power_law_degrees(100, cfg, 5));
        assert_ne!(power_law_degrees(100, cfg, 5), power_law_degrees(100, cfg, 6));
    }
}
