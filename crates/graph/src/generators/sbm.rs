//! Planted-partition / stochastic-block-model generator.
//!
//! Social networks (LiveJournal, Tuenti, Google+) have strong community
//! structure; that structure is what lets label propagation achieve high
//! edge locality. This generator plants `communities` contiguous blocks and
//! gives every vertex a number of intra- and inter-community edges, with an
//! optional power-law multiplier to add degree skew.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::generators::power_law::PowerLawConfig;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Configuration for [`planted_partition`].
#[derive(Debug, Clone, Copy)]
pub struct SbmConfig {
    /// Total number of vertices.
    pub n: VertexId,
    /// Number of planted communities (contiguous id ranges).
    pub communities: u32,
    /// Average number of intra-community out-edges per vertex.
    pub internal_degree: f64,
    /// Average number of inter-community out-edges per vertex.
    pub external_degree: f64,
    /// Optional power-law multiplier for per-vertex degree skew.
    pub skew: Option<PowerLawConfig>,
    /// Random seed.
    pub seed: u64,
}

/// Generates a directed planted-partition graph.
///
/// Community `i` owns the contiguous vertex range
/// `[i * n / communities, (i + 1) * n / communities)`; that ground truth is
/// used by tests to check that label propagation recovers locality.
pub fn planted_partition(cfg: SbmConfig) -> DirectedGraph {
    assert!(cfg.communities >= 1);
    assert!(cfg.n >= cfg.communities, "need at least one vertex per community");
    let n = cfg.n as u64;
    let c = cfg.communities as u64;
    let mut rng = SplitMix64::new(cfg.seed);
    let expected = (cfg.n as f64 * (cfg.internal_degree + cfg.external_degree)) as usize;
    let mut b = GraphBuilder::new(cfg.n).with_edge_capacity(expected);

    let community_of = |v: u64| -> u64 { v * c / n };
    let range_of = |comm: u64| -> (u64, u64) {
        let lo = comm * n / c;
        let hi = (comm + 1) * n / c;
        (lo, hi)
    };

    for v in 0..n {
        let comm = community_of(v);
        let (lo, hi) = range_of(comm);
        let size = hi - lo;
        let mult = match cfg.skew {
            Some(pl) => {
                // Normalise so the configured averages are preserved:
                // E[pareto] = alpha-1/(alpha-2) * min for alpha > 2.
                let mean = if pl.alpha > 2.0 {
                    pl.min_degree as f64 * (pl.alpha - 1.0) / (pl.alpha - 2.0)
                } else {
                    pl.min_degree as f64 * 3.0
                };
                pl.sample(&mut rng) as f64 / mean
            }
            None => 1.0,
        };
        let d_int = sample_count(cfg.internal_degree * mult, &mut rng);
        let d_ext = sample_count(cfg.external_degree * mult, &mut rng);
        if size > 1 {
            for _ in 0..d_int {
                let mut t = lo + rng.next_bounded(size);
                if t == v {
                    t = lo + (t - lo + 1) % size;
                }
                b.add_edge(v as VertexId, t as VertexId);
            }
        }
        if n > size {
            for _ in 0..d_ext {
                // Uniform vertex outside the community.
                let mut t = rng.next_bounded(n - size);
                if t >= lo {
                    t += size;
                }
                b.add_edge(v as VertexId, t as VertexId);
            }
        }
    }
    b.build()
}

/// Turns a fractional expected count into an integer draw (floor plus a
/// Bernoulli for the remainder), preserving the mean.
fn sample_count(expected: f64, rng: &mut SplitMix64) -> u64 {
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(rng.next_bool(frac))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: VertexId, communities: u32) -> SbmConfig {
        SbmConfig {
            n,
            communities,
            internal_degree: 8.0,
            external_degree: 2.0,
            skew: None,
            seed: 42,
        }
    }

    #[test]
    fn most_edges_stay_inside_communities() {
        let c = cfg(10_000, 20);
        let g = planted_partition(c);
        let n = g.num_vertices() as u64;
        let internal =
            g.edges().filter(|&(u, v)| u as u64 * 20 / n == v as u64 * 20 / n).count() as f64;
        let frac = internal / g.num_edges() as f64;
        // 8 internal vs 2 external expected: internal fraction ≈ 0.8.
        assert!((0.75..0.85).contains(&frac), "internal fraction {frac}");
    }

    #[test]
    fn mean_degree_matches_config() {
        let g = planted_partition(cfg(20_000, 10));
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((9.0..11.0).contains(&mean), "mean out-degree {mean}");
    }

    #[test]
    fn skew_creates_hubs() {
        let mut c = cfg(20_000, 10);
        c.skew = Some(PowerLawConfig { alpha: 2.1, min_degree: 1, max_degree: 2_000 });
        let g = planted_partition(c);
        let max = (0..g.num_vertices()).map(|v| g.out_degree(v)).max().unwrap();
        assert!(max > 200, "expected hubs, max out-degree {max}");
    }

    #[test]
    fn single_community_is_fine() {
        let g = planted_partition(cfg(100, 1));
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(planted_partition(cfg(1000, 4)), planted_partition(cfg(1000, 4)));
    }
}
