//! Hierarchical web-like graph generator.
//!
//! Web graphs (the paper's 1.4B-vertex Yahoo! dataset) have much stronger
//! locality than social graphs: most hyperlinks stay within a host, and
//! host-level popularity is heavy-tailed. Spinner reaches φ ≈ 0.73 on
//! Yahoo! at k=115 (Fig. 4b) precisely because of that structure. This model
//! plants power-law-sized "hosts" (contiguous id ranges), keeps a large
//! fraction of edges intra-host, and routes the rest preferentially towards
//! large hosts.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Configuration for [`weblike`].
#[derive(Debug, Clone, Copy)]
pub struct WeblikeConfig {
    /// Total number of vertices (pages).
    pub n: VertexId,
    /// Number of hosts. Host sizes follow a Zipf-like distribution.
    pub hosts: u32,
    /// Average out-degree per page.
    pub avg_degree: f64,
    /// Fraction of edges that stay within the source page's host.
    pub intra_host_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

/// Generates a directed hierarchical web-like graph.
pub fn weblike(cfg: WeblikeConfig) -> DirectedGraph {
    assert!(cfg.hosts >= 1);
    assert!(cfg.n >= cfg.hosts);
    assert!((0.0..=1.0).contains(&cfg.intra_host_fraction));
    let mut rng = SplitMix64::new(cfg.seed);

    // Zipf-ish host sizes: weight(i) ∝ 1 / (i + 1), then scaled to sum to n.
    let h = cfg.hosts as usize;
    let raw: Vec<f64> = (0..h).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = raw.iter().sum();
    let mut sizes: Vec<u64> =
        raw.iter().map(|w| ((w / total) * cfg.n as f64).floor().max(1.0) as u64).collect();
    // Distribute the rounding remainder over the largest hosts.
    let mut assigned: u64 = sizes.iter().sum();
    let mut i = 0;
    while assigned < cfg.n as u64 {
        sizes[i % h] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > cfg.n as u64 {
        let j = sizes.iter().position(|&s| s > 1).expect("n >= hosts");
        sizes[j] -= 1;
        assigned -= 1;
    }
    // Host boundaries (contiguous ranges) and cumulative sizes for
    // size-proportional host sampling.
    let mut starts = vec![0u64; h + 1];
    for (i, &s) in sizes.iter().enumerate() {
        starts[i + 1] = starts[i] + s;
    }

    let expected = (cfg.n as f64 * cfg.avg_degree) as usize;
    let mut b = GraphBuilder::new(cfg.n).with_edge_capacity(expected);

    for host in 0..h {
        let (lo, hi) = (starts[host], starts[host + 1]);
        let size = hi - lo;
        for v in lo..hi {
            let d = sample_count(cfg.avg_degree, &mut rng);
            for _ in 0..d {
                let target = if rng.next_bool(cfg.intra_host_fraction) && size > 1 {
                    let mut t = lo + rng.next_bounded(size);
                    if t == v {
                        t = lo + (t - lo + 1) % size;
                    }
                    t
                } else {
                    // Inter-host: size-proportional host choice realised by
                    // sampling a uniform vertex id (a vertex in a big host is
                    // proportionally more likely), like links to popular sites.
                    let mut t = rng.next_bounded(cfg.n as u64);
                    if t == v {
                        t = (t + 1) % cfg.n as u64;
                    }
                    t
                };
                b.add_edge(v as VertexId, target as VertexId);
            }
        }
    }
    b.build()
}

fn sample_count(expected: f64, rng: &mut SplitMix64) -> u64 {
    let base = expected.floor();
    let frac = expected - base;
    base as u64 + u64::from(rng.next_bool(frac))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WeblikeConfig {
        WeblikeConfig {
            n: 20_000,
            hosts: 200,
            avg_degree: 6.0,
            intra_host_fraction: 0.8,
            seed: 11,
        }
    }

    #[test]
    fn host_sizes_are_heavy_tailed() {
        // Reconstruct sizes by regenerating boundaries through edge locality:
        // instead, check degree of locality directly: most edges short-range.
        let g = weblike(cfg());
        let near =
            g.edges().filter(|&(u, v)| (u as i64 - v as i64).unsigned_abs() < 2_000).count()
                as f64;
        let frac = near / g.num_edges() as f64;
        assert!(frac > 0.6, "near fraction {frac}");
    }

    #[test]
    fn mean_degree_matches() {
        let g = weblike(cfg());
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((5.0..6.5).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn all_vertices_assigned() {
        let g = weblike(WeblikeConfig { n: 997, hosts: 13, ..cfg() });
        assert_eq!(g.num_vertices(), 997);
    }

    #[test]
    fn deterministic() {
        assert_eq!(weblike(cfg()), weblike(cfg()));
    }
}
