//! Barabási-Albert preferential-attachment generator.

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// Generates a Barabási-Albert graph: each new vertex attaches `m_attach`
/// edges to existing vertices chosen proportionally to their current degree.
///
/// Emitted as a directed graph with edges pointing from the newer vertex to
/// the chosen target (convert with
/// [`crate::conversion::from_undirected_edges`] to treat it as undirected).
/// Produces the heavy-tailed degree distribution of large social graphs.
pub fn barabasi_albert(n: VertexId, m_attach: u32, seed: u64) -> DirectedGraph {
    assert!(n as u64 > m_attach as u64, "need n > m_attach");
    assert!(m_attach >= 1);
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(n as usize * m_attach as usize);

    // Repeated-endpoints array: sampling a uniform element of `endpoints`
    // realises degree-proportional selection in O(1).
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n as usize * m_attach as usize);

    // Seed clique over the first m_attach + 1 vertices.
    let seed_size = m_attach + 1;
    for u in 0..seed_size {
        for v in (u + 1)..seed_size {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for v in seed_size..n {
        let mut chosen = [0 as VertexId; 64];
        let mut count = 0usize;
        // Draw m distinct targets (retry on duplicates; m is small).
        while count < m_attach as usize {
            let t = endpoints[rng.next_bounded(endpoints.len() as u64) as usize];
            if !chosen[..count].contains(&t) {
                chosen[count] = t;
                count += 1;
            }
        }
        for &t in &chosen[..count] {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conversion::from_undirected_edges;

    #[test]
    fn edge_count_matches_formula() {
        let n = 5000;
        let m = 4;
        let g = barabasi_albert(n, m, 1);
        let seed_edges = (m * (m + 1) / 2) as u64;
        let attach_edges = (n - m - 1) as u64 * m as u64;
        assert_eq!(g.num_edges(), seed_edges + attach_edges);
    }

    #[test]
    fn old_vertices_become_hubs() {
        let g = from_undirected_edges(&barabasi_albert(20_000, 3, 2));
        let early_max = (0..100).map(|v| g.degree(v)).max().unwrap();
        let late_max = (19_900..20_000).map(|v| g.degree(v)).max().unwrap();
        assert!(early_max > 5 * late_max, "early max {early_max} vs late max {late_max}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(1000, 2, 5), barabasi_albert(1000, 2, 5));
    }

    #[test]
    #[should_panic(expected = "need n > m_attach")]
    fn rejects_degenerate_sizes() {
        barabasi_albert(3, 3, 0);
    }
}
