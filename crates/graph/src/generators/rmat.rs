//! R-MAT (recursive matrix) generator.
//!
//! R-MAT with skewed quadrant probabilities reproduces the hub-dominated
//! structure of the Twitter follower graph: a few vertices collect an
//! enormous share of edges, which is exactly what makes random partitioning
//! unbalanced in the paper's Fig. 4a (initial ρ ≈ 1.67).

use crate::builder::GraphBuilder;
use crate::directed::DirectedGraph;
use crate::ids::VertexId;
use crate::rng::SplitMix64;

/// R-MAT parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Requested edges per vertex (duplicates are merged afterwards).
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to 1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Random seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style skewed configuration (Twitter-like hubs).
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        Self { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19, seed }
    }
}

/// Generates a directed R-MAT graph.
pub fn rmat(cfg: RmatConfig) -> DirectedGraph {
    let n: u64 = 1 << cfg.scale;
    let m = n * cfg.edge_factor as u64;
    let mut rng = SplitMix64::new(cfg.seed);
    let mut builder = GraphBuilder::new(n as VertexId).with_edge_capacity(m as usize);
    let ab = cfg.a + cfg.b;
    let abc = cfg.a + cfg.b + cfg.c;
    assert!(abc < 1.0 + 1e-9, "quadrant probabilities exceed 1");
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for bit in (0..cfg.scale).rev() {
            let r = rng.next_f64();
            if r < cfg.a {
                // top-left: no bits set
            } else if r < ab {
                v |= 1 << bit;
            } else if r < abc {
                u |= 1 << bit;
            } else {
                u |= 1 << bit;
                v |= 1 << bit;
            }
        }
        builder.add_edge(u as VertexId, v as VertexId);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_skewed_in_degrees() {
        let g = rmat(RmatConfig::graph500(12, 8, 1)); // 4096 vertices
        let mut in_deg = vec![0u32; g.num_vertices() as usize];
        for (_, v) in g.edges() {
            in_deg[v as usize] += 1;
        }
        let max = *in_deg.iter().max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(RmatConfig::graph500(8, 4, 2));
        assert_eq!(g.num_vertices(), 256);
    }

    #[test]
    fn uniform_quadrants_reduce_to_er_like_degrees() {
        let cfg = RmatConfig { scale: 10, edge_factor: 8, a: 0.25, b: 0.25, c: 0.25, seed: 3 };
        let g = rmat(cfg);
        let max = (0..g.num_vertices()).map(|v| g.out_degree(v)).max().unwrap();
        assert!(max < 40, "uniform R-MAT should not have strong hubs, max {max}");
    }

    #[test]
    fn deterministic() {
        let a = rmat(RmatConfig::graph500(8, 4, 7));
        let b = rmat(RmatConfig::graph500(8, 4, 7));
        assert_eq!(a, b);
    }
}
