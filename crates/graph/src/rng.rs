//! Deterministic, allocation-free random number generation.
//!
//! The Spinner algorithm makes three kinds of random choices (initial label
//! assignment, tie-breaking, probabilistic migration). To make distributed
//! runs reproducible independently of thread scheduling, every choice is
//! derived from a pure function of `(seed, vertex, superstep)` rather than
//! from a shared mutable generator. SplitMix64 is used as the mixing
//! function; it passes BigCrush and is the standard seeding primitive for
//! xoshiro-family generators.

/// A SplitMix64 generator. Small, fast, and good enough for simulation
/// choices (not cryptographic).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses the widening-multiply technique (Lemire); the modulo bias is at
    /// most 2^-64 per draw which is negligible for simulation purposes.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Mixes several words into a single well-distributed 64-bit value.
///
/// Used to derive per-`(seed, vertex, superstep)` streams: the output seeds a
/// fresh [`SplitMix64`], so the stream consumed by one vertex never depends
/// on how many draws another vertex made.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut g = SplitMix64::new(a ^ b.rotate_left(21) ^ c.rotate_left(43));
    // One extra scramble round decorrelates consecutive (b, c) inputs.
    g.next_u64() ^ b.wrapping_mul(0xA24BAED4963EE407) ^ c.wrapping_mul(0x9FB21C651E98DF25)
}

/// Convenience: a fresh deterministic stream for a vertex at a superstep.
#[inline]
pub fn vertex_stream(seed: u64, vertex: u64, superstep: u64) -> SplitMix64 {
    SplitMix64::new(mix3(seed, vertex, superstep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut g = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(g.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut g = SplitMix64::new(11);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[g.next_bounded(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow 5% deviation.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn vertex_streams_are_independent_of_draw_order() {
        let s1 = vertex_stream(5, 10, 3).next_u64();
        // Draw lots from an unrelated stream in between.
        let mut other = vertex_stream(5, 11, 3);
        for _ in 0..17 {
            other.next_u64();
        }
        let s2 = vertex_stream(5, 10, 3).next_u64();
        assert_eq!(s1, s2);
    }

    #[test]
    fn mix3_varies_in_every_argument() {
        let base = mix3(1, 2, 3);
        assert_ne!(base, mix3(2, 2, 3));
        assert_ne!(base, mix3(1, 3, 3));
        assert_ne!(base, mix3(1, 2, 4));
    }
}
