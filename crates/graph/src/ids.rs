//! Core identifier types shared across the workspace.

/// Identifier of a vertex. Vertices are always densely numbered `0..n`.
///
/// `u32` bounds graphs at ~4.2 billion vertices, which covers the largest
/// graph in the paper (the 1.4B-vertex Yahoo! web graph) while halving the
/// memory footprint relative to `u64` ids.
pub type VertexId = u32;

/// Weight of an undirected edge produced by the Eq. 3 conversion.
///
/// Always 1 (a single directed edge existed between the endpoints) or
/// 2 (both directions existed). Stored as `u8` to keep adjacency compact.
pub type EdgeWeight = u8;

/// Packs a directed edge into a single sortable `u64` key (`src` high bits).
#[inline]
pub fn edge_key(src: VertexId, dst: VertexId) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// Inverse of [`edge_key`].
#[inline]
pub fn unpack_edge_key(key: u64) -> (VertexId, VertexId) {
    ((key >> 32) as VertexId, key as VertexId)
}

/// Packs the *unordered* pair `{a, b}` into a canonical `u64` key.
#[inline]
pub fn sym_edge_key(a: VertexId, b: VertexId) -> u64 {
    if a <= b {
        edge_key(a, b)
    } else {
        edge_key(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_roundtrip() {
        for &(a, b) in &[(0, 0), (1, 2), (u32::MAX, 0), (12345, u32::MAX)] {
            assert_eq!(unpack_edge_key(edge_key(a, b)), (a, b));
        }
    }

    #[test]
    fn sym_edge_key_is_order_independent() {
        assert_eq!(sym_edge_key(7, 3), sym_edge_key(3, 7));
        assert_eq!(unpack_edge_key(sym_edge_key(7, 3)), (3, 7));
    }

    #[test]
    fn edge_keys_sort_by_source_then_target() {
        let mut keys = [edge_key(2, 1), edge_key(1, 9), edge_key(1, 2)];
        keys.sort_unstable();
        assert_eq!(
            keys.iter().map(|&k| unpack_edge_key(k)).collect::<Vec<_>>(),
            vec![(1, 2), (1, 9), (2, 1)]
        );
    }
}
