//! Weighted undirected graph in symmetric CSR form.
//!
//! This is the representation Spinner actually partitions: the result of the
//! Eq. 3 conversion, where each undirected edge carries weight 1 or 2
//! counting the directed edges between its endpoints (and therefore the
//! messages a Pregel application exchanges across it).

use crate::ids::{EdgeWeight, VertexId};

/// A symmetric weighted undirected graph.
///
/// Each undirected edge `{u, v}` appears in both adjacency lists with the same
/// weight. Adjacency lists are sorted by target, enabling `O(log deg)` edge
/// lookup, which the Pregel implementation uses to update the neighbour-label
/// cache when a label-change message arrives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndirectedGraph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Vec<EdgeWeight>,
    /// Sum of `weights` over all (directed) adjacency entries; equals
    /// `2 * (number of directed edges in the source graph)` after conversion.
    total_weight: u64,
}

impl UndirectedGraph {
    /// Builds from symmetric CSR arrays. Invariants (checked in debug builds):
    /// sorted+deduplicated adjacency, symmetry with equal weights, no
    /// self-loops, `offsets` well-formed.
    pub(crate) fn from_csr(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
        weights: Vec<EdgeWeight>,
    ) -> Self {
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        let total_weight = weights.iter().map(|&w| w as u64).sum();
        let g = Self { offsets, targets, weights, total_weight };
        #[cfg(debug_assertions)]
        g.check_symmetry();
        g
    }

    #[cfg(debug_assertions)]
    fn check_symmetry(&self) {
        for v in 0..self.num_vertices() {
            let (ts, ws) = self.neighbors(v);
            debug_assert!(ts.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency at {v}");
            for (&t, &w) in ts.iter().zip(ws) {
                debug_assert_ne!(t, v, "self loop at {v}");
                let back = self.edge_weight(t, v);
                debug_assert_eq!(back, Some(w), "asymmetric edge {v}-{t}");
            }
        }
    }

    /// The number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// The number of undirected edges (each `{u,v}` counted once).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64 / 2
    }

    /// Total edge weight counted from both endpoints: `Σ_v deg_w(v)`.
    ///
    /// After Eq. 3 conversion this equals twice the number of directed edges
    /// of the original graph, i.e. twice the number of messages per
    /// "broadcast to all neighbours" superstep.
    #[inline]
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Number of adjacency entries (`2 * num_edges`).
    #[inline]
    pub fn num_adjacency_entries(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Unweighted degree of `v` (number of distinct neighbours).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Weighted degree `deg_w(v) = Σ_u w(u, v)`: the load contribution of `v`
    /// in the paper's balance objective (Eq. 6).
    #[inline]
    pub fn weighted_degree(&self, v: VertexId) -> u64 {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.weights[lo..hi].iter().map(|&w| w as u64).sum()
    }

    /// The sorted neighbour ids and matching weights of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> (&[VertexId], &[EdgeWeight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// The weight of edge `{u, v}`, or `None` if absent.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<EdgeWeight> {
        let (ts, ws) = self.neighbors(u);
        ts.binary_search(&v).ok().map(|i| ws[i])
    }

    /// Index of `v` inside `u`'s adjacency run, if present. Exposed so that
    /// engines storing per-edge values in parallel arrays can address them.
    #[inline]
    pub fn edge_index(&self, u: VertexId, v: VertexId) -> Option<usize> {
        let lo = self.offsets[u as usize] as usize;
        let (ts, _) = self.neighbors(u);
        ts.binary_search(&v).ok().map(|i| lo + i)
    }

    /// Iterates over each undirected edge once as `(u, v, w)` with `u < v`.
    pub fn edges_once(&self) -> impl Iterator<Item = (VertexId, VertexId, EdgeWeight)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let (ts, ws) = self.neighbors(u);
            ts.iter().zip(ws).filter_map(
                move |(&v, &w)| {
                    if u < v {
                        Some((u, v, w))
                    } else {
                        None
                    }
                },
            )
        })
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Borrow of the raw symmetric CSR arrays `(offsets, targets, weights)`.
    pub fn as_csr(&self) -> (&[u64], &[VertexId], &[EdgeWeight]) {
        (&self.offsets, &self.targets, &self.weights)
    }

    /// Heap memory used by the CSR arrays, in bytes (for reporting).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
            + self.weights.capacity()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::conversion::to_weighted_undirected;

    fn triangle() -> crate::UndirectedGraph {
        // 0->1, 1->0 (reciprocal), 1->2, 2->0
        let d = GraphBuilder::new(3).add_edges([(0, 1), (1, 0), (1, 2), (2, 0)]).build();
        to_weighted_undirected(&d)
    }

    #[test]
    fn weighted_degrees_and_totals() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        // Eq. 3: {0,1} has both directions -> w=2; {1,2}, {0,2} -> w=1.
        assert_eq!(g.edge_weight(0, 1), Some(2));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(0, 2), Some(1));
        assert_eq!(g.weighted_degree(0), 3);
        assert_eq!(g.weighted_degree(1), 3);
        assert_eq!(g.weighted_degree(2), 2);
        // Σ deg_w = 2 * |directed edges| = 8
        assert_eq!(g.total_weight(), 8);
    }

    #[test]
    fn edges_once_yields_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges_once().collect();
        assert_eq!(edges, vec![(0, 1, 2), (0, 2, 1), (1, 2, 1)]);
    }

    #[test]
    fn edge_index_matches_weight_lookup() {
        let g = triangle();
        let (_, _, weights) = g.as_csr();
        for (u, v, w) in g.edges_once() {
            let i = g.edge_index(u, v).unwrap();
            assert_eq!(weights[i], w);
            let j = g.edge_index(v, u).unwrap();
            assert_eq!(weights[j], w);
        }
        assert_eq!(g.edge_index(0, 0), None);
    }
}
