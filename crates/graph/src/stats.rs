//! Descriptive statistics used to sanity-check generated graphs.

use crate::directed::DirectedGraph;
use crate::rng::SplitMix64;
use crate::undirected::UndirectedGraph;

/// Summary statistics for a directed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Ratio max_degree / mean_degree; large values indicate hubs.
    pub skew: f64,
}

/// Computes degree statistics in one pass.
pub fn degree_stats(g: &DirectedGraph) -> DegreeStats {
    let n = g.num_vertices();
    let mut in_deg = vec![0u32; n as usize];
    let mut max_out = 0u32;
    for v in 0..n {
        max_out = max_out.max(g.out_degree(v));
        for &t in g.out_neighbors(v) {
            in_deg[t as usize] += 1;
        }
    }
    let max_in = in_deg.iter().copied().max().unwrap_or(0);
    let mean = if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 };
    DegreeStats {
        num_vertices: n as u64,
        num_edges: g.num_edges(),
        mean_out_degree: mean,
        max_out_degree: max_out,
        max_in_degree: max_in,
        skew: if mean > 0.0 { max_in.max(max_out) as f64 / mean } else { 0.0 },
    }
}

/// Estimates the global clustering coefficient of an undirected graph by
/// sampling `samples` wedges (paths u–v–w) and testing closure.
pub fn sample_clustering_coefficient(g: &UndirectedGraph, samples: usize, seed: u64) -> f64 {
    let n = g.num_vertices() as u64;
    if n == 0 {
        return 0.0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut wedges = 0usize;
    let mut closed = 0usize;
    let mut attempts = 0usize;
    while wedges < samples && attempts < samples * 20 {
        attempts += 1;
        let v = rng.next_bounded(n) as u32;
        let (ns, _) = g.neighbors(v);
        if ns.len() < 2 {
            continue;
        }
        let i = rng.next_bounded(ns.len() as u64) as usize;
        let mut j = rng.next_bounded(ns.len() as u64) as usize;
        if i == j {
            j = (j + 1) % ns.len();
        }
        wedges += 1;
        if g.edge_weight(ns[i], ns[j]).is_some() {
            closed += 1;
        }
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::conversion::to_weighted_undirected;
    use crate::generators::{erdos_renyi, planted_partition, SbmConfig};

    #[test]
    fn stats_on_small_graph() {
        let g = GraphBuilder::new(4).add_edges([(0, 1), (0, 2), (0, 3), (1, 0)]).build();
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.mean_out_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_higher_in_community_graph_than_random() {
        let sbm = to_weighted_undirected(&planted_partition(SbmConfig {
            n: 3000,
            communities: 30,
            internal_degree: 10.0,
            external_degree: 1.0,
            skew: None,
            seed: 1,
        }));
        let er = to_weighted_undirected(&erdos_renyi(3000, 33_000, 1));
        let c_sbm = sample_clustering_coefficient(&sbm, 5_000, 2);
        let c_er = sample_clustering_coefficient(&er, 5_000, 2);
        assert!(c_sbm > 2.0 * c_er, "sbm {c_sbm} vs er {c_er}");
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build();
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.skew, 0.0);
    }
}
