//! Graph substrate for the Spinner reproduction.
//!
//! This crate provides everything below the Pregel engine:
//!
//! - Compact CSR graph storage for directed graphs ([`DirectedGraph`]) and
//!   symmetric weighted undirected graphs ([`UndirectedGraph`]).
//! - The directed-to-weighted-undirected conversion of the Spinner paper
//!   (Eq. 3): an undirected edge gets weight 2 when both directions exist in
//!   the original directed graph and weight 1 otherwise, so that partitioning
//!   scores count the number of messages a Pregel application would exchange.
//! - Synthetic graph generators (Watts-Strogatz, R-MAT, Barabási-Albert,
//!   Erdős-Rényi, planted-partition/SBM, and a hierarchical web-like model)
//!   standing in for the proprietary datasets of the paper's evaluation.
//! - Dynamic-graph deltas and a triadic-closure edge sampler used by the
//!   incremental repartitioning experiments (§V-C of the paper).
//! - A registry of scaled-down synthetic analogues of the paper's datasets
//!   (LiveJournal, Google+, Tuenti, Twitter, Friendster, Yahoo!).

pub mod builder;
pub mod conversion;
pub mod datasets;
pub mod directed;
pub mod error;
pub mod generators;
pub mod ids;
pub mod io;
pub mod mutation;
pub mod rng;
pub mod stats;
pub mod stream;
pub mod undirected;

pub use builder::GraphBuilder;
pub use datasets::{Dataset, Scale};
pub use directed::DirectedGraph;
pub use error::GraphError;
pub use ids::{EdgeWeight, VertexId};
pub use mutation::GraphDelta;
pub use stream::{DeltaStream, DeltaStreamConfig};
pub use undirected::UndirectedGraph;
