//! Locality (φ), balance (ρ), and the global score of Eq. 10.

use spinner_graph::UndirectedGraph;

/// The label (partition id) type, shared with `spinner-core`.
pub type Label = u32;

/// Quality summary of one partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Ratio of local edges φ ∈ [0, 1].
    pub phi: f64,
    /// Maximum normalized load ρ ≥ 1 (for non-empty graphs).
    pub rho: f64,
    /// Global score(G) (Eq. 10) at capacity constant `c`.
    pub score: f64,
    /// Per-partition loads b(l) in edge-weight units.
    pub loads: Vec<u64>,
}

/// Computes per-partition loads `b(l) = Σ_{v: α(v)=l} deg_w(v)` (Eq. 6).
pub fn partition_loads(g: &UndirectedGraph, labels: &[Label], k: u32) -> Vec<u64> {
    assert_eq!(labels.len(), g.num_vertices() as usize, "labels length mismatch");
    let mut loads = vec![0u64; k as usize];
    for v in g.vertices() {
        let l = labels[v as usize];
        assert!(l < k, "label {l} out of range for k={k}");
        loads[l as usize] += g.weighted_degree(v);
    }
    loads
}

/// Ratio of local edges φ (Eq. 16), weighted by the Eq. 3 edge weights so it
/// counts the fraction of *messages* that stay local.
pub fn phi(g: &UndirectedGraph, labels: &[Label]) -> f64 {
    assert_eq!(labels.len(), g.num_vertices() as usize, "labels length mismatch");
    if g.num_edges() == 0 {
        return 1.0;
    }
    let mut local: u64 = 0;
    let mut total: u64 = 0;
    for (u, v, w) in g.edges_once() {
        total += w as u64;
        if labels[u as usize] == labels[v as usize] {
            local += w as u64;
        }
    }
    local as f64 / total as f64
}

/// Maximum normalized load ρ (Eq. 16): `max_l b(l) / (Σ b / k)`.
pub fn rho(g: &UndirectedGraph, labels: &[Label], k: u32) -> f64 {
    let loads = partition_loads(g, labels, k);
    rho_from_loads(&loads)
}

/// ρ from precomputed loads.
pub fn rho_from_loads(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let ideal = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    max / ideal
}

/// The global score of Eq. 10 with capacity constant `c`:
/// `score(G) = Σ_v [ locality(v)/deg_w(v) − b(α(v)) / C ]`.
pub fn score(g: &UndirectedGraph, labels: &[Label], k: u32, c: f64) -> f64 {
    let loads = partition_loads(g, labels, k);
    let capacity = c * g.total_weight() as f64 / k as f64;
    let mut total = 0.0;
    for v in g.vertices() {
        let (ts, ws) = g.neighbors(v);
        let mut local: u64 = 0;
        let mut degw: u64 = 0;
        for (&t, &w) in ts.iter().zip(ws) {
            degw += w as u64;
            if labels[t as usize] == labels[v as usize] {
                local += w as u64;
            }
        }
        let locality = if degw > 0 { local as f64 / degw as f64 } else { 0.0 };
        let penalty = loads[labels[v as usize] as usize] as f64 / capacity;
        total += locality - penalty;
    }
    total
}

/// Computes all quality metrics at once.
pub fn quality(g: &UndirectedGraph, labels: &[Label], k: u32, c: f64) -> PartitionQuality {
    let loads = partition_loads(g, labels, k);
    PartitionQuality {
        phi: phi(g, labels),
        rho: rho_from_loads(&loads),
        score: score(g, labels, k, c),
        loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    /// Two triangles joined by one edge.
    fn two_triangles() -> UndirectedGraph {
        from_undirected_edges(
            &GraphBuilder::new(6)
                .add_edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
                .build(),
        )
    }

    #[test]
    fn perfect_split_has_high_phi() {
        let g = two_triangles();
        let labels = vec![0, 0, 0, 1, 1, 1];
        assert!((phi(&g, &labels) - 6.0 / 7.0).abs() < 1e-12);
        let r = rho(&g, &labels, 2);
        assert!((r - 1.0).abs() < 1e-12, "rho {r}");
    }

    #[test]
    fn all_in_one_partition_is_unbalanced_but_local() {
        let g = two_triangles();
        let labels = vec![0; 6];
        assert_eq!(phi(&g, &labels), 1.0);
        assert!((rho(&g, &labels, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_labels_have_low_phi() {
        let g = two_triangles();
        let labels = vec![0, 1, 0, 1, 0, 1];
        assert!(phi(&g, &labels) < 0.5);
    }

    #[test]
    fn score_prefers_better_partitionings() {
        let g = two_triangles();
        let good = score(&g, &[0, 0, 0, 1, 1, 1], 2, 1.05);
        let bad = score(&g, &[0, 1, 0, 1, 0, 1], 2, 1.05);
        assert!(good > bad, "good {good} bad {bad}");
    }

    #[test]
    fn loads_sum_to_total_weight() {
        let g = two_triangles();
        let loads = partition_loads(&g, &[0, 0, 1, 1, 0, 1], 2);
        assert_eq!(loads.iter().sum::<u64>(), g.total_weight());
    }

    #[test]
    fn empty_graph_defaults() {
        let g = from_undirected_edges(&GraphBuilder::new(2).build());
        assert_eq!(phi(&g, &[0, 1]), 1.0);
        assert_eq!(rho(&g, &[0, 1], 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn out_of_range_label_panics() {
        let g = two_triangles();
        partition_loads(&g, &[0, 0, 0, 1, 1, 3], 2);
    }
}
