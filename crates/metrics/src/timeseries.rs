//! Per-window quality trajectories for streaming workloads.
//!
//! A dynamic-graph session produces one `(φ, ρ, migration fraction)` point
//! per re-convergence window; [`Trajectory`] collects those points, exposes
//! the aggregates the quality gates check (worst balance, locality floor,
//! movement averages), and renders the series as JSON for the experiment
//! reports.

/// One window's quality observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// Window index (0 is the bootstrap partitioning).
    pub window: u32,
    /// Ratio of local edges φ at convergence.
    pub phi: f64,
    /// Maximum normalized load ρ at convergence.
    pub rho: f64,
    /// Fraction of pre-window vertices that changed partition.
    pub migration_fraction: f64,
    /// Share of the window's messages that stayed worker-local — the
    /// placement-locality series a label-driven placement is meant to push
    /// towards φ (1.0 for a window that exchanged no messages).
    pub local_share: f64,
    /// Fraction of the graph's vertices whose hosted state this window
    /// recovered after a worker loss (0.0 for every ordinary window, so
    /// recovery windows stand out in the series).
    pub lost_fraction: f64,
    /// Mean fraction of vertices actually computed per superstep — the
    /// active-set scheduler's cost series. 1.0 means every superstep
    /// visited the whole graph (a dense restart); frontier-seeded delta
    /// windows should sit far below it, scaling the window's cost with
    /// churn rather than |V|.
    pub active_fraction: f64,
    /// Frames the reliable transport layer re-published during the window
    /// (0 on a clean wire or the direct in-memory path), so lossy-wire
    /// windows stand out in the series.
    pub retransmits: u64,
}

/// A φ/ρ/migration time series across stream windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    points: Vec<WindowPoint>,
}

impl Trajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a window's observation.
    pub fn push(&mut self, point: WindowPoint) {
        self.points.push(point);
    }

    /// The recorded points, in window order.
    pub fn points(&self) -> &[WindowPoint] {
        &self.points
    }

    /// Number of recorded windows.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no window has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded point.
    pub fn last(&self) -> Option<&WindowPoint> {
        self.points.last()
    }

    /// The worst (largest) ρ across all windows (1.0 when empty).
    pub fn max_rho(&self) -> f64 {
        self.points.iter().map(|p| p.rho).fold(1.0, f64::max)
    }

    /// The worst (smallest) φ across all windows (1.0 when empty).
    pub fn min_phi(&self) -> f64 {
        self.points.iter().map(|p| p.phi).fold(1.0, f64::min)
    }

    /// Mean migration fraction over the *post-bootstrap* windows — the
    /// steady-state movement cost of staying adapted. 0.0 with fewer than
    /// two windows.
    pub fn mean_migration_fraction(&self) -> f64 {
        let tail = &self.points[self.points.len().min(1)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|p| p.migration_fraction).sum::<f64>() / tail.len() as f64
    }

    /// The largest post-bootstrap migration fraction (0.0 with fewer than
    /// two windows).
    pub fn max_migration_fraction(&self) -> f64 {
        self.points[self.points.len().min(1)..]
            .iter()
            .map(|p| p.migration_fraction)
            .fold(0.0, f64::max)
    }

    /// The worst (smallest) worker-local message share over the
    /// *post-bootstrap* windows (1.0 with fewer than two windows) — the
    /// locality floor the placement gates check. The bootstrap window is
    /// skipped for the same reason the migration aggregates skip it: it
    /// runs on the initial placement by construction, before any
    /// label-driven re-placement can take effect.
    pub fn min_local_share(&self) -> f64 {
        self.points[self.points.len().min(1)..]
            .iter()
            .map(|p| p.local_share)
            .fold(1.0, f64::min)
    }

    /// Mean worker-local message share over the *post-bootstrap* windows —
    /// the steady-state locality of the placement in effect during the
    /// stream. 0.0 with fewer than two windows.
    pub fn mean_local_share(&self) -> f64 {
        let tail = &self.points[self.points.len().min(1)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|p| p.local_share).sum::<f64>() / tail.len() as f64
    }

    /// Mean per-superstep active fraction over the *post-bootstrap*
    /// windows — the steady-state compute cost of staying adapted, in
    /// units of full-graph sweeps. The bootstrap is skipped because it
    /// necessarily computes everything. 0.0 with fewer than two windows.
    pub fn mean_active_fraction(&self) -> f64 {
        let tail = &self.points[self.points.len().min(1)..];
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter().map(|p| p.active_fraction).sum::<f64>() / tail.len() as f64
    }

    /// The largest post-bootstrap active fraction (0.0 with fewer than two
    /// windows) — the gate that catches a single window regressing to a
    /// full-graph sweep even when the mean stays low.
    pub fn max_active_fraction(&self) -> f64 {
        self.points[self.points.len().min(1)..]
            .iter()
            .map(|p| p.active_fraction)
            .fold(0.0, f64::max)
    }

    /// Renders the series as a JSON array of per-window objects (the format
    /// embedded in the streaming experiment report).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"window\": {}, \"phi\": {:.6}, \"rho\": {:.6}, \
                 \"migration_fraction\": {:.6}, \"local_share\": {:.6}, \
                 \"lost_fraction\": {:.6}, \"active_fraction\": {:.6}, \
                 \"retransmits\": {}}}{sep}\n",
                p.window,
                p.phi,
                p.rho,
                p.migration_fraction,
                p.local_share,
                p.lost_fraction,
                p.active_fraction,
                p.retransmits
            ));
        }
        out.push_str("  ]");
        out
    }
}

impl FromIterator<WindowPoint> for Trajectory {
    fn from_iter<I: IntoIterator<Item = WindowPoint>>(iter: I) -> Self {
        Self { points: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(window: u32, phi: f64, rho: f64, moved: f64) -> WindowPoint {
        WindowPoint {
            window,
            phi,
            rho,
            migration_fraction: moved,
            local_share: 0.25,
            lost_fraction: 0.0,
            active_fraction: 1.0,
            retransmits: 0,
        }
    }

    fn sample() -> Trajectory {
        [point(0, 0.70, 1.04, 1.0), point(1, 0.72, 1.08, 0.10), point(2, 0.71, 1.05, 0.06)]
            .into_iter()
            .collect()
    }

    #[test]
    fn aggregates_skip_the_bootstrap_window() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!((t.max_rho() - 1.08).abs() < 1e-12);
        assert!((t.min_phi() - 0.70).abs() < 1e-12);
        // Bootstrap's migration_fraction = 1.0 must not poison the mean.
        assert!((t.mean_migration_fraction() - 0.08).abs() < 1e-12);
        assert!((t.max_migration_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn empty_trajectory_has_neutral_aggregates() {
        let t = Trajectory::new();
        assert!(t.is_empty());
        assert_eq!(t.max_rho(), 1.0);
        assert_eq!(t.min_phi(), 1.0);
        assert_eq!(t.mean_migration_fraction(), 0.0);
        assert_eq!(t.max_migration_fraction(), 0.0);
        assert_eq!(t.min_local_share(), 1.0);
        assert_eq!(t.mean_local_share(), 0.0);
        assert_eq!(t.mean_active_fraction(), 0.0);
        assert_eq!(t.max_active_fraction(), 0.0);
    }

    #[test]
    fn single_window_has_no_steady_state_tail() {
        let mut t = Trajectory::new();
        t.push(point(0, 0.8, 1.02, 1.0));
        assert_eq!(t.mean_migration_fraction(), 0.0);
        assert_eq!(t.mean_local_share(), 0.0);
    }

    /// A label-driven re-placement mid-stream shows up as a locality jump:
    /// both aggregates track the post-bootstrap windows only, so the
    /// bootstrap's hash-placement share (0.12) poisons neither.
    #[test]
    fn local_share_series_tracks_placement_changes() {
        let mut t = Trajectory::new();
        t.push(WindowPoint { local_share: 0.12, ..point(0, 0.7, 1.04, 1.0) });
        t.push(WindowPoint { local_share: 0.82, ..point(1, 0.72, 1.05, 0.1) });
        t.push(WindowPoint { local_share: 0.86, ..point(2, 0.73, 1.05, 0.05) });
        assert!((t.min_local_share() - 0.82).abs() < 1e-12);
        assert!((t.mean_local_share() - 0.84).abs() < 1e-12);
    }

    /// Frontier-seeded delta windows keep the active series far below the
    /// dense bootstrap; both aggregates skip the bootstrap window, whose
    /// full sweep is structural.
    #[test]
    fn active_fraction_aggregates_skip_the_bootstrap() {
        let mut t = Trajectory::new();
        t.push(WindowPoint { active_fraction: 1.0, ..point(0, 0.7, 1.04, 1.0) });
        t.push(WindowPoint { active_fraction: 0.08, ..point(1, 0.72, 1.05, 0.1) });
        t.push(WindowPoint { active_fraction: 0.12, ..point(2, 0.73, 1.05, 0.05) });
        assert!((t.mean_active_fraction() - 0.10).abs() < 1e-12);
        assert!((t.max_active_fraction() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn json_lists_every_window() {
        let json = sample().to_json();
        assert_eq!(json.matches("\"window\"").count(), 3);
        assert!(json.contains("\"phi\": 0.700000"));
        assert!(json.contains("\"migration_fraction\": 0.060000"));
        assert!(json.contains("\"local_share\": 0.250000"));
        assert!(json.contains("\"active_fraction\": 1.000000"));
        assert!(json.contains("\"retransmits\": 0"));
        assert!(json.starts_with("[\n") && json.ends_with(']'));
        // Exactly two separators for three entries.
        assert_eq!(json.matches("},\n").count(), 2);
    }
}
