//! Partitioning-quality metrics and text-table reporting.
//!
//! Implements the paper's evaluation metrics (Eq. 16):
//!
//! - `φ` — ratio of local edges: the fraction of edge weight whose endpoints
//!   share a partition (higher is better locality).
//! - `ρ` — maximum normalized load: the most loaded partition relative to
//!   the ideal `|E|/k` (1.0 is perfect balance).
//! - `score(G)` — the paper's global objective (Eq. 10), used by the halting
//!   heuristic.
//! - *partitioning difference* (§V-D) — the fraction of vertices whose
//!   partition changed between two partitionings (stability).
//! - [`Trajectory`] — per-window φ/ρ/migration time series for streaming
//!   (dynamic-graph) workloads.

pub mod difference;
pub mod quality;
pub mod table;
pub mod timeseries;

pub use difference::partitioning_difference;
pub use quality::{
    partition_loads, phi, quality, rho, rho_from_loads, score, PartitionQuality,
};
pub use table::Table;
pub use timeseries::{Trajectory, WindowPoint};
