//! Minimal text-table rendering for the experiment harness output.

use std::fmt::Write as _;

/// A simple aligned text table with a title, header, and rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), ..Default::default() }
    }

    /// Sets the header row.
    pub fn header<S: Into<String>>(mut self, cols: impl IntoIterator<Item = S>) -> Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Renders to an aligned string.
    pub fn render(&self) -> String {
        let ncols =
            self.rows.iter().map(|r| r.len()).chain([self.header.len()]).max().unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let write_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                let sep = if i + 1 == row.len() { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        if !self.header.is_empty() {
            write_row(&self.header, &mut out);
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 2 decimal places (the paper's table precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").header(["name", "phi"]);
        t.row(["spinner", "0.85"]);
        t.row(["metis-like", "0.88"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("spinner     0.85"));
        assert!(s.contains("metis-like  0.88"));
    }

    #[test]
    fn empty_table_renders_title_only() {
        let t = Table::new("empty");
        assert_eq!(t.render(), "== empty ==\n");
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f2(0.857), "0.86");
        assert_eq!(f3(1.0461), "1.046");
    }
}
