//! Partitioning difference: the stability metric of §V-D.
//!
//! "The partitioning difference between two partitions is the percentage of
//! vertices that belong to different partitions across two partitionings.
//! This number represents the fraction of vertices that have to move to new
//! partitions."
//!
//! Labels are compared *directly*: a graph management system binds label
//! `l` to machine `l`, so even a pure relabelling forces vertex movement.
//! This is why the paper measures 95–98% difference for re-partitioning from
//! scratch (randomised initialisation lands communities on different
//! labels). A label-matching variant is provided separately for analyses
//! that want to ignore relabelling.

use crate::quality::Label;

/// Fraction of vertices (0..=1) whose label differs between `before` and
/// `after` (direct comparison, as in §V-D).
///
/// `before` may be shorter than `after` (new vertices appended); new
/// vertices are not counted as moved — they have no previous location.
pub fn partitioning_difference(before: &[Label], after: &[Label]) -> f64 {
    assert!(
        before.len() <= after.len(),
        "`after` must cover at least the vertices of `before`"
    );
    if before.is_empty() {
        return 0.0;
    }
    let moved = before.iter().zip(after).filter(|(a, b)| a != b).count();
    moved as f64 / before.len() as f64
}

/// Like [`partitioning_difference`], but first matches each old label to the
/// new label inheriting most of its vertices (greedy maximum-overlap
/// matching), so pure relabellings count as zero movement.
pub fn partitioning_difference_matched(before: &[Label], after: &[Label]) -> f64 {
    assert!(
        before.len() <= after.len(),
        "`after` must cover at least the vertices of `before`"
    );
    if before.is_empty() {
        return 0.0;
    }
    let k_before = before.iter().copied().max().unwrap_or(0) as usize + 1;
    let k_after = after.iter().copied().max().unwrap_or(0) as usize + 1;

    // Overlap counts: how many vertices went from old label a to new label b.
    let mut overlap = vec![0u64; k_before * k_after];
    for (v, &a) in before.iter().enumerate() {
        let b = after[v];
        overlap[a as usize * k_after + b as usize] += 1;
    }

    // Greedy matching by descending overlap: each old label maps to at most
    // one new label and vice versa.
    let mut cells: Vec<(u64, usize, usize)> = Vec::with_capacity(k_before * k_after);
    for a in 0..k_before {
        for b in 0..k_after {
            let c = overlap[a * k_after + b];
            if c > 0 {
                cells.push((c, a, b));
            }
        }
    }
    cells.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    let mut old_taken = vec![false; k_before];
    let mut new_taken = vec![false; k_after];
    let mut kept: u64 = 0;
    for (c, a, b) in cells {
        if !old_taken[a] && !new_taken[b] {
            old_taken[a] = true;
            new_taken[b] = true;
            kept += c;
        }
    }
    1.0 - kept as f64 / before.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitionings_have_zero_difference() {
        let labels = vec![0, 1, 2, 1, 0];
        assert_eq!(partitioning_difference(&labels, &labels), 0.0);
        assert_eq!(partitioning_difference_matched(&labels, &labels), 0.0);
    }

    #[test]
    fn pure_relabelling_counts_fully_direct_but_zero_matched() {
        let before = vec![0, 0, 1, 1, 2, 2];
        let after = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(partitioning_difference(&before, &after), 1.0);
        assert_eq!(partitioning_difference_matched(&before, &after), 0.0);
    }

    #[test]
    fn single_move_is_counted() {
        let before = vec![0, 0, 0, 1, 1, 1];
        let after = vec![0, 0, 1, 1, 1, 1];
        let d = partitioning_difference(&before, &after);
        assert!((d - 1.0 / 6.0).abs() < 1e-12, "{d}");
        let dm = partitioning_difference_matched(&before, &after);
        assert!((dm - 1.0 / 6.0).abs() < 1e-12, "{dm}");
    }

    #[test]
    fn new_vertices_are_not_moves() {
        let before = vec![0, 1];
        let after = vec![0, 1, 0, 1, 0];
        assert_eq!(partitioning_difference(&before, &after), 0.0);
    }

    #[test]
    fn matched_handles_growing_partition_count() {
        // Old k=2 split; new k=4 split halves each.
        let before = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let after = vec![0, 0, 2, 2, 1, 1, 3, 3];
        let d = partitioning_difference_matched(&before, &after);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
        // Direct comparison agrees here because surviving labels kept ids.
        assert!((partitioning_difference(&before, &after) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_relabelling_moves_most_vertices_direct() {
        let before: Vec<u32> = (0..300).map(|v| v / 100).collect();
        let after: Vec<u32> = (0..300).map(|v| (v / 100 + 1) % 3).collect();
        assert_eq!(partitioning_difference(&before, &after), 1.0);
        assert_eq!(partitioning_difference_matched(&before, &after), 0.0);
    }
}
