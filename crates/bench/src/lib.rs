//! Shared harness utilities for the experiment binaries (`exp-*`).
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` that regenerates it (see DESIGN.md §3 for the index).
//! Binaries honour two environment variables:
//!
//! - `SPINNER_SCALE` — `tiny` / `small` / `full` (default `full`): dataset
//!   scale. `full` is the calibrated experiment scale; `tiny` is a smoke
//!   run.
//! - `SPINNER_THREADS` — OS threads for the engine (default: all cores).

use spinner_core::{PartitionResult, SpinnerConfig};
use spinner_graph::{Dataset, Scale, UndirectedGraph};

pub mod report;

pub use spinner_metrics::Table;

/// Reads the dataset scale from `SPINNER_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("SPINNER_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("small") => Scale::Small,
        _ => Scale::Full,
    }
}

/// Reads the thread count from `SPINNER_THREADS`.
pub fn threads_from_env() -> usize {
    std::env::var("SPINNER_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
}

/// The paper's default Spinner configuration for the experiments
/// (§V-A: c = 1.05, ε = 0.001, w = 5).
pub fn spinner_cfg(k: u32, seed: u64) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(seed);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = 16.max(cfg.num_threads);
    cfg
}

/// Runs Spinner and prints a one-line summary.
pub fn run_spinner(graph: &UndirectedGraph, cfg: &SpinnerConfig) -> PartitionResult {
    let r = spinner_core::partition(graph, cfg);
    eprintln!(
        "  spinner k={:<4} phi={:.3} rho={:.3} iters={} ({} supersteps, {:.1}s)",
        cfg.k,
        r.quality.phi,
        r.quality.rho,
        r.iterations,
        r.supersteps,
        r.wall_ns as f64 * 1e-9
    );
    r
}

/// Builds a dataset's undirected analogue, logging its size.
pub fn load_dataset(d: Dataset, scale: Scale) -> UndirectedGraph {
    let g = d.build_undirected(scale);
    eprintln!(
        "dataset {}: |V|={} |E|={} (total weight {})",
        d.short_name(),
        g.num_vertices(),
        g.num_edges(),
        g.total_weight()
    );
    g
}

/// Emits a machine-readable quality metric on stdout (`METRIC <name>
/// <value>`). `run-all` captures these lines into the JSON report's
/// per-experiment `metrics` object, and `bench-compare` gates φ/ρ
/// regressions on them — so only emit *deterministic* numbers (seeded runs,
/// thread-count-invariant), never wall-clock.
pub fn emit_metric(name: &str, value: f64) {
    assert!(
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
        "metric names are [A-Za-z0-9_-]+: {name:?}"
    );
    assert!(value.is_finite(), "metric {name} must be finite, got {value}");
    println!("METRIC {name} {value:.6}");
}

/// Percentage savings of `new` relative to `base` (positive = cheaper).
pub fn savings_pct(base: f64, new: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        100.0 * (1.0 - new / base)
    }
}

/// Percentage improvement of `new` over `base` runtime (positive = faster).
pub fn improvement_pct(base: f64, new: f64) -> f64 {
    savings_pct(base, new)
}

/// Formats `x` with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats `x` with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a percentage with 1 decimal.
pub fn pct1(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_math() {
        assert_eq!(savings_pct(100.0, 20.0), 80.0);
        assert_eq!(savings_pct(0.0, 5.0), 0.0);
        assert!(savings_pct(50.0, 75.0) < 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.057), "1.06");
        assert_eq!(f3(0.8512), "0.851");
        assert_eq!(pct1(86.23), "86.2%");
    }

    #[test]
    fn env_scale_defaults_to_full() {
        // Do not set the var in-process (tests run in parallel); just check
        // the default path.
        if std::env::var("SPINNER_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::Full);
        }
    }
}
