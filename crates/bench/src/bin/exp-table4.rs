//! **Table IV** — impact of partitioning balance on worker load: the time
//! workers spend per superstep (Mean / Max / Min ± stddev) while running 20
//! PageRank iterations on the Twitter analogue across 256 logical workers,
//! with (i) standard hash partitioning and (ii) Spinner's placement.
//!
//! Expected shape (paper): with hash partitioning workers idle ~31% of each
//! superstep (Max ≫ Mean); Spinner narrows the spread to ~19% and lowers
//! the mean.

use spinner_bench::{scale_from_env, spinner_cfg, Table};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::Dataset;
use spinner_pregel::algorithms::run_pagerank;
use spinner_pregel::sim::{summarize, CostModel};
use spinner_pregel::{EngineConfig, Placement};

fn main() {
    let scale = scale_from_env();
    let workers = 256usize;
    let directed = Dataset::Twitter.build_directed(scale);
    let undirected = to_weighted_undirected(&directed);
    eprintln!("twitter analogue: |V|={} |E|={}", directed.num_vertices(), directed.num_edges());

    let engine_cfg = EngineConfig {
        num_threads: spinner_bench::threads_from_env(),
        max_supersteps: 100,
        seed: 5,
        // The workloads here never broadcast: skip the lane's index build.
        broadcast_fabric: false,
        ..EngineConfig::default()
    };
    let n = directed.num_vertices();

    eprintln!("partitioning with spinner (k=256)...");
    let spinner = spinner_core::partition(&undirected, &spinner_cfg(workers as u32, 42));
    eprintln!("  phi={:.3} rho={:.3}", spinner.quality.phi, spinner.quality.rho);

    let cost = CostModel::default();
    let mut rows = Vec::new();
    for (name, placement) in [
        ("Random (hash)", Placement::hashed(n, workers, 7)),
        ("Spinner", Placement::from_labels_balanced(&spinner.labels, workers)),
    ] {
        eprintln!("running PageRank x20 with {name} placement...");
        let (_, summary) = run_pagerank(&directed, &placement, engine_cfg.clone(), 20);
        let sims = cost.simulate_run(&summary.metrics);
        let s = summarize(&sims);
        let idle = 100.0 * (1.0 - s.mean / s.max.max(1e-12));
        rows.push((name, s, idle));
    }

    let mut t = Table::new(
        "Table IV: per-superstep worker time, PageRank x20, Twitter analogue, 256 workers (simulated)",
    )
    .header(["approach", "mean", "max", "min", "idle%"]);
    for (name, s, idle) in &rows {
        t.row([
            name.to_string(),
            format!("{:.3}s ± {:.3}s", s.mean, s.mean_sd),
            format!("{:.3}s ± {:.3}s", s.max, s.max_sd),
            format!("{:.3}s ± {:.3}s", s.min, s.min_sd),
            format!("{idle:.0}%"),
        ]);
    }
    println!("{t}");
    println!(
        "(paper: Random 5.8±2.3 / 8.4±2.1 / 3.4±1.9; Spinner 4.7±1.5 / 5.8±1.3 / 3.1±1.1;"
    );
    println!(" idling 31% under hash vs 19% under Spinner)");
}
