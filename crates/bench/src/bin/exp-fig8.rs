//! **Figure 8** — adapting to resource changes on the Tuenti analogue:
//! grow a k = 32 partitioning by n ∈ {1..8} new partitions (Eq. 11) and
//! compare elastic adaptation against re-partitioning from scratch on
//! (a) savings in time and messages, (b) vertices moved.
//!
//! Expected shape (paper): adapting to +1 partition is ~74% faster than
//! re-partitioning and moves <17% of vertices (vs ~96% from scratch);
//! savings shrink as more partitions are added.

use spinner_bench::{
    f2, f3, load_dataset, pct1, savings_pct, scale_from_env, spinner_cfg, Table,
};
use spinner_core::{elastic, partition};
use spinner_graph::Dataset;
use spinner_metrics::partitioning_difference;

fn main() {
    let scale = scale_from_env();
    let old_k = 32u32;
    let g = load_dataset(Dataset::Tuenti, scale);

    eprintln!("initial partitioning at k={old_k}...");
    let initial = partition(&g, &spinner_cfg(old_k, 42));
    eprintln!("initial: phi={:.3} rho={:.3}", initial.quality.phi, initial.quality.rho);

    let mut t =
        Table::new("Figure 8: adapting to new partitions (Tuenti analogue, 32 -> 32+n)")
            .header([
                "new partitions",
                "time saved",
                "msgs saved",
                "moved elastic",
                "moved scratch",
                "phi",
                "rho",
            ]);

    for n in 1..=8u32 {
        let k = old_k + n;
        let cfg = spinner_cfg(k, 42);
        let grown = elastic(&g, &initial.labels, old_k, &cfg);
        let scratch = partition(&g, &cfg.clone().with_seed(4242));

        let time_saved = savings_pct(scratch.wall_ns as f64, grown.wall_ns as f64);
        let msg_saved =
            savings_pct(scratch.totals.messages as f64, grown.totals.messages as f64);
        let moved_elastic = partitioning_difference(&initial.labels, &grown.labels);
        let moved_scratch = partitioning_difference(&initial.labels, &scratch.labels);

        t.row([
            format!("+{n}"),
            pct1(time_saved),
            pct1(msg_saved),
            pct1(100.0 * moved_elastic),
            pct1(100.0 * moved_scratch),
            f2(grown.quality.phi),
            f3(grown.quality.rho),
        ]);
        eprintln!(
            "+{n}: time saved {time_saved:.1}%, moved {:.1}% vs {:.1}%",
            100.0 * moved_elastic,
            100.0 * moved_scratch
        );
    }
    println!("{t}");
    println!("(paper: +1 partition adapts 74% faster, moving <17% of vertices vs ~96%)");
}
