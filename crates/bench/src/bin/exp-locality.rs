//! **Label-driven placement feedback** — the paper's §V-F payoff, measured:
//! two identical streaming sessions run over the same community-structured
//! delta stream, one keeping Giraph-style hash placement for its whole
//! life, the other re-placing vertices onto workers by computed label
//! (balanced greedy packing, `Engine::replace`) as soon as a window's
//! remote-message share crosses the feedback threshold.
//!
//! Expected shape: hash placement pins the worker-local message share near
//! `1/L`; after the label-driven migration the share jumps towards φ, so
//! every post-bootstrap window of the feedback arm beats the hash arm — at
//! **bit-identical labels**, since the synchronous load view makes results
//! placement-invariant. The binary **asserts** the acceptance criteria
//! (strictly higher local share per window, identical labels everywhere,
//! a real migration, zero steady-state fabric reallocations after it) and
//! exits non-zero on violation, so the CI smoke suite doubles as the
//! placement-feedback quality gate.
//!
//! Locality is measured over **logical deliveries** (one count per
//! destination vertex), not physical fabric records — so `local_share` is
//! directly comparable whether the engine ships announcements as per-edge
//! unicasts or through the deduplicating broadcast lane (the record-level
//! comparison lives in `exp-broadcast`).
//!
//! Emits deterministic `METRIC` lines: `local_share_*` gated
//! higher-is-better by bench-compare, `remote_records_label` (the wire
//! records the label-placed arm actually shipped) gated lower-is-better.

use spinner_bench::{emit_metric, f2, f3, pct1, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::{DeltaStream, DeltaStreamConfig, GraphDelta, Scale};
use spinner_metrics::{Trajectory, WindowPoint};
use std::process::ExitCode;

/// Delta windows in the stream.
const DELTA_WINDOWS: u32 = 6;
/// Re-place by label once a window pushes more than this share of its
/// messages across workers. Hash placement over `WORKERS` workers sends
/// `~(L-1)/L ≈ 0.9` remote, so the bootstrap window always triggers;
/// label placement stays well below.
const FEEDBACK_THRESHOLD: f64 = 0.5;
/// Logical workers. Fewer than `k`, so the balanced packing (not the
/// modulo wrap) is what keeps worker loads sane.
const WORKERS: usize = 10;

fn session_points(session: &StreamSession) -> Trajectory {
    session
        .windows()
        .iter()
        .map(|w| WindowPoint {
            window: w.window(),
            phi: w.phi(),
            rho: w.rho(),
            migration_fraction: w.migration_fraction(),
            local_share: w.local_share(),
            lost_fraction: w.lost_vertices() as f64 / f64::from(w.num_vertices().max(1)),
            active_fraction: w.active_fraction(),
            retransmits: w.retransmits(),
        })
        .collect()
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let n: u32 = match scale {
        Scale::Tiny => 3_000,
        Scale::Small => 30_000,
        Scale::Full => 120_000,
    };
    let k = 16u32;
    let base = planted_partition(SbmConfig {
        n,
        communities: k,
        internal_degree: 8.0,
        external_degree: 1.5,
        skew: None,
        seed: 7,
    });
    eprintln!("community graph: |V|={} |E|={} k={k}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = WORKERS;
    // The bit-identical-labels gate below compares runs on *different*
    // placements, which only the synchronous load view guarantees (the
    // §IV-A4 async view is worker-topology-dependent by design).
    cfg.async_worker_loads = false;
    let feedback_cfg = cfg.clone().with_placement_feedback(FEEDBACK_THRESHOLD);

    let deltas: Vec<GraphDelta> = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: DELTA_WINDOWS,
            add_fraction: 0.010,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 99,
        },
    )
    .collect();

    eprintln!("bootstrap partitioning (hash vs label-feedback placement)...");
    let mut hash_arm = StreamSession::new(base.clone(), cfg);
    let mut label_arm = StreamSession::new(base, feedback_cfg);
    for delta in deltas {
        hash_arm.apply(StreamEvent::Delta(delta.clone()));
        let report = label_arm.apply(StreamEvent::Delta(delta));
        eprintln!(
            "window {:>2}: local share {:.3} (hash {:.3}) phi={:.3} moved-to-worker {}",
            report.window(),
            report.local_share(),
            hash_arm.last().local_share(),
            report.phi(),
            report.placement_moved(),
        );
    }

    let hash_points = session_points(&hash_arm);
    let label_points = session_points(&label_arm);

    let mut t = Table::new(format!(
        "Message locality, hash vs label-driven placement \
         ({DELTA_WINDOWS} delta windows, k={k}, L={WORKERS})"
    ))
    .header([
        "window",
        "phi",
        "local share (hash)",
        "local share (label)",
        "remote msgs (hash)",
        "remote msgs (label)",
        "replaced",
    ]);
    for (h, l) in hash_arm.windows().iter().zip(label_arm.windows()) {
        t.row([
            h.window().to_string(),
            f2(l.phi()),
            f3(h.local_share()),
            f3(l.local_share()),
            h.sent_remote().to_string(),
            l.sent_remote().to_string(),
            pct1(100.0 * l.placement_moved() as f64 / l.num_vertices() as f64),
        ]);
    }
    println!("{t}");
    let wall =
        |s: &StreamSession| s.windows().iter().map(|w| w.wall_ns()).sum::<u64>() as f64 * 1e-9;
    println!(
        "stream wall-clock: hash {:.2}s, label-feedback {:.2}s (single host; the remote \
         share is the distributed network-cost proxy)",
        wall(&hash_arm),
        wall(&label_arm)
    );

    emit_metric("local_share_hash_mean", hash_points.mean_local_share());
    emit_metric("local_share_label_mean", label_points.mean_local_share());
    // Post-bootstrap floor (the bootstrap runs on hash placement in both
    // arms by construction, which min_local_share skips).
    emit_metric("local_share_label_min", label_points.min_local_share());
    emit_metric("phi_final", label_points.last().expect("windows").phi);
    // Physical wire traffic of the label-placed arm (records, not logical
    // deliveries): the number both the placement *and* the broadcast dedup
    // push down, pinned lower-is-better against the baseline.
    let record_total: u64 = label_arm.windows().iter().map(|w| w.sent_remote_records()).sum();
    emit_metric("remote_records_label", record_total as f64);

    // ---- acceptance criteria (self-gating: CI runs this in the smoke
    // suite, so a violation fails the build) ----
    let mut violations: Vec<String> = Vec::new();
    let boot = &label_arm.windows()[0];
    if boot.placement_moved() == 0 {
        violations.push("bootstrap window did not trigger the label migration".to_string());
    }
    for (h, l) in hash_arm.windows().iter().zip(label_arm.windows()).skip(1) {
        if l.local_share() <= h.local_share() {
            violations.push(format!(
                "window {}: label-placement local share {:.4} does not exceed hash {:.4}",
                l.window(),
                l.local_share(),
                h.local_share()
            ));
        }
    }
    if hash_arm.labels() != label_arm.labels() {
        violations.push("labels diverged between hash and label placement".to_string());
    }
    for (h, l) in hash_arm.windows().iter().zip(label_arm.windows()) {
        if (h.phi(), h.rho(), h.iterations(), h.messages())
            != (l.phi(), l.rho(), l.iterations(), l.messages())
        {
            violations.push(format!(
                "window {}: label-space history diverged between placements",
                l.window()
            ));
        }
    }
    // Steady state after the migration: the re-placed layout must run
    // entirely inside pre-reserved fabric capacity.
    for w in label_arm.windows().iter().filter(|w| w.window() >= 2) {
        if w.fabric_reallocs() != 0 {
            violations.push(format!(
                "window {}: {} fabric reallocations after label migration (want 0)",
                w.window(),
                w.fabric_reallocs()
            ));
        }
    }
    if violations.is_empty() {
        println!(
            "all gates passed: bit-identical labels, local share {:.3} -> {:.3} \
             (mean over {} post-bootstrap windows), zero steady-state reallocs",
            hash_points.mean_local_share(),
            label_points.mean_local_share(),
            DELTA_WINDOWS
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
