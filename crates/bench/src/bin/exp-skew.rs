//! **Work-stealing under hub skew** — the scheduler counterpart of the
//! Fig. 6 scaling sweep: a preferential-attachment graph placed
//! *contiguously*, so the low-id hubs (and with them most of the edge
//! work) land on worker 0. A static worker→thread split makes whichever
//! thread owns worker 0 the straggler every superstep; the work-stealing
//! pool lets the idle threads claim its chunks instead.
//!
//! Both arms run the identical partition (the synchronous load view makes
//! labels scheduler-invariant), so the experiment **asserts bit-identical
//! labels and history** between static and stealing before comparing
//! wall-clock — any timing difference is pure scheduling, never a quality
//! trade. Wall times use the min over repeats (the standard noise floor
//! estimator); the speedup METRIC is deliberately named outside the gated
//! classes because wall-clock on a shared CI runner is not reproducible —
//! the deterministic `phi_skew` / `rho_skew` METRICs are what the
//! regression gate pins.
//!
//! Writes `bench-out/SKEW_POOL.json` (override with `SPINNER_SKEW_JSON`)
//! and self-gates: identical results across arms, and stealing within
//! `STEAL_SLACK` of static (it must never be catastrophically slower).
//! Zero-realloc steady state is a *warm* property and is gated where warm
//! engines live, in exp-stream / exp-locality.

use spinner_bench::{emit_metric, f2, scale_from_env, threads_from_env, Table};
use spinner_core::{partition_with_placement, PartitionResult, SpinnerConfig};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::barabasi_albert;
use spinner_graph::{Scale, UndirectedGraph};
use spinner_pregel::Placement;
use std::process::ExitCode;
use std::time::Instant;

/// Timing repeats per arm; the minimum is reported (least-noise estimator).
const REPEATS: usize = 3;
/// The stealing arm may not be slower than static by more than this factor
/// — a lenient cap, because the point of the gate is "stealing never
/// regresses the balanced case", not a CI-hostile speedup assertion.
const STEAL_SLACK: f64 = 1.3;

struct Arm {
    name: &'static str,
    work_stealing: bool,
    steal_chunk: usize,
    wall_s: f64,
    result: PartitionResult,
}

fn run_arm(
    name: &'static str,
    g: &UndirectedGraph,
    p: &Placement,
    base: &SpinnerConfig,
    work_stealing: bool,
    steal_chunk: usize,
) -> Arm {
    let mut cfg = base.clone();
    cfg.work_stealing = work_stealing;
    cfg.steal_chunk = steal_chunk;
    let mut wall_s = f64::INFINITY;
    let mut result = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let r = partition_with_placement(g, &cfg, p);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
        result = Some(r);
    }
    Arm { name, work_stealing, steal_chunk, wall_s, result: result.expect("repeats > 0") }
}

fn digest(r: &PartitionResult) -> (&[u32], &[spinner_core::IterationStats], u32, u64, u64) {
    (&r.labels, &r.history, r.iterations, r.supersteps, r.totals.computed)
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let (n, m_attach) = match scale {
        Scale::Tiny => (20_000u32, 8u32),
        Scale::Small => (100_000, 12),
        Scale::Full => (300_000, 16),
    };
    let g = to_weighted_undirected(&barabasi_albert(n, m_attach, 7));
    eprintln!(
        "hub-skewed graph: |V|={} |E|={} (preferential attachment, m={m_attach})",
        g.num_vertices(),
        g.num_edges()
    );

    let k = 16u32;
    let workers = 16usize;
    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = workers;
    // Bit-identity across schedulers holds only under the synchronous load
    // view (the §IV-A4 async view is schedule-dependent by design).
    cfg.async_worker_loads = false;
    // Contiguous placement is the adversarial layout: BA vertex ids are
    // insertion-ordered, so the low-id block that worker 0 receives holds
    // the oldest, highest-degree hubs.
    let placement = Placement::contiguous(n, workers);

    let arms = [
        run_arm("static", &g, &placement, &cfg, false, 0),
        run_arm("stealing", &g, &placement, &cfg, true, 0),
        run_arm("stealing chunk=1", &g, &placement, &cfg, true, 1),
    ];
    let static_arm = &arms[0];
    let stealing_arm = &arms[1];

    let mut t = Table::new(format!(
        "Work-stealing vs static split on hub-skewed placement \
         (k={k}, L={workers}, {} threads)",
        cfg.num_threads
    ))
    .header(["scheduler", "wall (s)", "vs static", "phi", "iters", "supersteps"]);
    for a in &arms {
        t.row([
            a.name.to_string(),
            format!("{:.3}", a.wall_s),
            format!("{:.2}x", static_arm.wall_s / a.wall_s),
            f2(a.result.quality.phi),
            a.result.iterations.to_string(),
            a.result.supersteps.to_string(),
        ]);
    }
    println!("{t}");

    // Deterministic quality METRICs (gated) + the informational speedup.
    emit_metric("phi_skew", static_arm.result.quality.phi);
    emit_metric("rho_skew", static_arm.result.quality.rho);
    emit_metric("steal_speedup", static_arm.wall_s / stealing_arm.wall_s);
    write_json(&arms, scale, n, cfg.num_threads);

    let mut violations: Vec<String> = Vec::new();
    for a in &arms[1..] {
        if digest(&a.result) != digest(&static_arm.result) {
            violations
                .push(format!("{}: labels/history diverged from the static scheduler", a.name));
        }
    }
    if stealing_arm.wall_s > STEAL_SLACK * static_arm.wall_s {
        violations.push(format!(
            "stealing wall {:.3}s exceeds {STEAL_SLACK} x static {:.3}s",
            stealing_arm.wall_s, static_arm.wall_s
        ));
    }
    if violations.is_empty() {
        println!(
            "all gates passed: bit-identical across schedulers, stealing at {:.2}x static",
            static_arm.wall_s / stealing_arm.wall_s
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON like the other experiment reports (no JSON dependency
/// in the workspace).
fn write_json(arms: &[Arm], scale: Scale, n: u32, threads: usize) {
    let path = std::env::var("SPINNER_SKEW_JSON")
        .unwrap_or_else(|_| "bench-out/SKEW_POOL.json".to_string());
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-skew\",\n");
    out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    out.push_str(&format!("  \"num_vertices\": {n},\n"));
    out.push_str(&format!("  \"num_threads\": {threads},\n"));
    out.push_str("  \"arms\": [\n");
    for (i, a) in arms.iter().enumerate() {
        let sep = if i + 1 == arms.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"work_stealing\": {}, \"steal_chunk\": {}, \
             \"wall_s\": {:.6}, \"phi\": {:.6}, \"rho\": {:.6}, \"iterations\": {}, \
             \"supersteps\": {}, \"computed\": {}}}{sep}\n",
            a.name,
            a.work_stealing,
            a.steal_chunk,
            a.wall_s,
            a.result.quality.phi,
            a.result.quality.rho,
            a.result.iterations,
            a.result.supersteps,
            a.result.totals.computed
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote skew-pool report to {path}");
}
