//! **Figure 5** — impact of the additional-capacity constant c on
//! (a) balance: the final ρ as a function of c (with min/max bars over
//! repeated runs), and (b) convergence speed: iterations to converge as a
//! function of c, for the LiveJournal analogue at k ∈ {8, 16, 32, 64}.
//!
//! Expected shape (paper): ρ ≤ c on average (the ρ(c) curve hugs the ρ = c
//! diagonal from below), and larger c converges in fewer iterations.

use spinner_bench::{f3, load_dataset, scale_from_env, spinner_cfg, Table};
use spinner_core::partition;
use spinner_graph::Dataset;

fn main() {
    let g = load_dataset(Dataset::LiveJournal, scale_from_env());
    let cs = [1.02f64, 1.05, 1.10, 1.20];
    let ks = [8u32, 16, 32, 64];
    let runs: u64 =
        std::env::var("SPINNER_RUNS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);

    let mut rho_table = Table::new(format!(
        "Figure 5a: rho vs c on LiveJournal analogue ({runs} runs; mean [min..max])"
    ))
    .header(std::iter::once("c".to_string()).chain(ks.iter().map(|k| format!("k={k}"))));
    let mut iter_table = Table::new("Figure 5b: iterations to converge vs c (mean)")
        .header(std::iter::once("c".to_string()).chain(ks.iter().map(|k| format!("k={k}"))));

    for &c in &cs {
        let mut rho_cells = vec![format!("{c:.2}")];
        let mut iter_cells = vec![format!("{c:.2}")];
        for &k in &ks {
            let mut rhos = Vec::new();
            let mut iters = Vec::new();
            for run in 0..runs {
                let cfg = spinner_cfg(k, 1000 + run).with_c(c);
                let r = partition(&g, &cfg);
                rhos.push(r.quality.rho);
                iters.push(r.iterations as f64);
            }
            let mean = rhos.iter().sum::<f64>() / rhos.len() as f64;
            let min = rhos.iter().copied().fold(f64::INFINITY, f64::min);
            let max = rhos.iter().copied().fold(0.0, f64::max);
            rho_cells.push(format!("{} [{}..{}]", f3(mean), f3(min), f3(max)));
            let mean_it = iters.iter().sum::<f64>() / iters.len() as f64;
            iter_cells.push(format!("{mean_it:.1}"));
            eprintln!("c={c} k={k}: rho {mean:.3} iters {mean_it:.1}");
        }
        rho_table.row(rho_cells);
        iter_table.row(iter_cells);
    }
    println!("{rho_table}");
    println!("(paper: mean rho tracks the rho = c line from below)");
    println!();
    println!("{iter_table}");
    println!(
        "(paper: larger c => fewer iterations, e.g. ~100 at c=1.02 down to ~25 at c=1.20)"
    );
}
