//! **Figure 4** — evolution of φ, ρ, and score(G) across iterations while
//! partitioning (a) the Twitter analogue (k = 256, halting ignored, 115
//! iterations) and (b) the Yahoo! web-graph analogue (k = 115, halting on).
//!
//! Expected shape (paper): Twitter starts badly unbalanced under random
//! initialisation (ρ ≈ 1.67) and is rebalanced within ~20 iterations while
//! φ climbs steadily; the halting heuristic would stop the run around
//! iteration 41. Yahoo! starts more balanced and converges to φ ≈ 0.73
//! after ~42 iterations.

use spinner_bench::{f2, f3, load_dataset, scale_from_env, spinner_cfg, Table};
use spinner_core::partition;
use spinner_graph::Dataset;

fn print_history(title: &str, r: &spinner_core::PartitionResult) {
    let mut t = Table::new(title).header(["iter", "phi", "rho", "score", "migrations"]);
    // Print every iteration for short runs, every 5th for long ones.
    let stride = if r.history.len() > 40 { 5 } else { 1 };
    for (i, h) in r.history.iter().enumerate() {
        if i % stride == 0 || i + 1 == r.history.len() {
            t.row([
                h.iteration.to_string(),
                f2(h.phi),
                f3(h.rho),
                format!("{:.1}", h.score),
                h.migrations.to_string(),
            ]);
        }
    }
    println!("{t}");
}

fn main() {
    let scale = scale_from_env();

    // (a) Twitter. The paper uses k=256 on the 1.5B-edge graph, where the
    // largest hub holds ~25% of a partition's capacity. Our analogue is
    // ~130x smaller, so k is scaled to 64 to keep the hub-degree /
    // capacity ratio in the paper's regime (at k=256 a single hub would
    // exceed a whole partition's capacity, which the original setting
    // never exhibits).
    let tw = load_dataset(Dataset::Twitter, scale);
    let k = 64u32;
    let mut cfg = spinner_cfg(k, 42);
    cfg.ignore_halting = true;
    cfg.max_iterations = 115;
    let r = partition(&tw, &cfg);
    print_history(&format!("Figure 4a: Twitter analogue, k={k} (115 iterations)"), &r);
    let initial_rho = r.history.first().map(|h| h.rho).unwrap_or(f64::NAN);
    println!(
        "initial rho under random partitioning: {} (paper: 1.67); final rho {} (paper: 1.05)",
        f3(initial_rho),
        f3(r.quality.rho),
    );
    // Where would the halting heuristic have stopped?
    let mut halt_cfg = spinner_cfg(k, 42);
    halt_cfg.max_iterations = 115;
    let halted = partition(&tw, &halt_cfg);
    println!("halting heuristic stops at iteration {} (paper: 41)\n", halted.iterations);

    // (b) Yahoo!, k=115, halting on.
    let y = load_dataset(Dataset::Yahoo, scale);
    let r = partition(&y, &spinner_cfg(115, 42));
    print_history("Figure 4b: Yahoo! analogue, k=115 (halting on)", &r);
    println!(
        "converged after {} iterations to phi {} (paper: 42 iterations, phi 0.73), rho {} (paper: 1.10)",
        r.iterations,
        f2(r.quality.phi),
        f3(r.quality.rho),
    );
}
