//! **Figure 6** — scalability on Watts-Strogatz graphs (the paper's §V-B
//! setting: out-degree 40, β = 0.3): first-iteration runtime as a function
//! of (a) graph size, (b) worker/thread count, (c) number of partitions.
//!
//! The paper runs 2M–1B vertices on a 116-node cluster; we sweep scaled-down
//! sizes on one machine. Expected shapes: (a) linear in |V| (loglog slope
//! ≈ 1), (b) near-linear speedup with workers, (c) runtime grows with k.

use spinner_bench::{scale_from_env, spinner_cfg, threads_from_env, Table};
use spinner_core::{partition, SpinnerConfig};
use spinner_graph::generators::watts_strogatz;
use spinner_graph::{conversion, Scale, UndirectedGraph};

/// Wall time of the first LPA iteration (the paper's §V-B metric: the
/// ComputeScores + ComputeMigrations pair, where every vertex is notified by
/// all neighbours — the most deterministic and expensive iteration).
fn first_iteration_seconds(g: &UndirectedGraph, cfg: &SpinnerConfig) -> f64 {
    let mut cfg = cfg.clone();
    cfg.max_iterations = 1;
    cfg.ignore_halting = true;
    let r = partition(g, &cfg);
    // Supersteps: Initialize, ComputeScores, ComputeMigrations(+halt check).
    // Take the scores+migrations pair.
    r.wall_ns as f64 * 1e-9 * 2.0 / r.supersteps.max(1) as f64
}

fn ws_graph(n: u32, seed: u64) -> UndirectedGraph {
    conversion::to_weighted_undirected(&watts_strogatz(n, 40, 0.3, seed))
}

fn main() {
    let scale = scale_from_env();
    let (sizes, fixed_n): (&[u32], u32) = match scale {
        Scale::Tiny => (&[1 << 12, 1 << 13, 1 << 14], 1 << 13),
        Scale::Small => (&[1 << 14, 1 << 15, 1 << 16, 1 << 17], 1 << 16),
        Scale::Full => (&[1 << 15, 1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20], 1 << 18),
    };

    // (a) Runtime vs graph size (k = 64, like the paper).
    let mut ta = Table::new("Figure 6a: first-iteration runtime vs graph size (k=64, deg 40)")
        .header(["vertices", "edges(dir)", "runtime (s)"]);
    let mut prev: Option<(f64, f64)> = None;
    let mut slopes = Vec::new();
    for &n in sizes {
        let g = ws_graph(n, 7);
        let secs = first_iteration_seconds(&g, &spinner_cfg(64, 42));
        // Small graphs measure engine overhead, not scaling (the paper notes
        // the same for its first data points); fit the slope on the large
        // half only.
        if n >= fixed_n {
            if let Some((pn, ps)) = prev {
                slopes.push((secs / ps).log2() / (n as f64 / pn).log2());
            }
            prev = Some((n as f64, secs));
        }
        ta.row([n.to_string(), (g.total_weight() / 2).to_string(), format!("{secs:.3}")]);
        eprintln!("6a: n={n} {secs:.3}s");
    }
    println!("{ta}");
    if !slopes.is_empty() {
        let mean_slope = slopes.iter().sum::<f64>() / slopes.len() as f64;
        println!(
            "loglog slope over the large sizes: {mean_slope:.2} (paper: ~1.0, linear scaling)\n"
        );
    }

    // (b) Runtime vs thread count (the machine analogue of cluster workers).
    let g = ws_graph(fixed_n, 7);
    let max_threads = threads_from_env();
    let mut tb = Table::new(format!(
        "Figure 6b: first-iteration runtime vs threads (n={fixed_n}, k=64)"
    ))
    .header(["threads", "runtime (s)", "speedup"]);
    let mut base = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        let mut cfg = spinner_cfg(64, 42);
        cfg.num_threads = threads;
        cfg.num_workers = cfg.num_workers.max(max_threads);
        let secs = first_iteration_seconds(&g, &cfg);
        let b = *base.get_or_insert(secs);
        tb.row([threads.to_string(), format!("{secs:.3}"), format!("{:.1}x", b / secs)]);
        eprintln!("6b: threads={threads} {secs:.3}s");
        threads *= 2;
    }
    println!("{tb}");
    println!("(paper: 7.6x speedup from 7.6x more workers)\n");

    // (c) Runtime vs number of partitions, in both candidate-scan modes:
    // the exhaustive O(k)-per-vertex scan the paper describes, and our
    // optimised scan whose cost is O(deg) amortised.
    let mut tc = Table::new(format!("Figure 6c: first-iteration runtime vs k (n={fixed_n})"))
        .header(["k", "paper O(k) scan (s)", "optimized scan (s)"]);
    for k in [2u32, 8, 32, 128, 512] {
        let mut exhaustive_cfg = spinner_cfg(k, 42);
        exhaustive_cfg.exhaustive_candidate_scan = true;
        let secs_ex = first_iteration_seconds(&g, &exhaustive_cfg);
        let secs_opt = first_iteration_seconds(&g, &spinner_cfg(k, 42));
        tc.row([k.to_string(), format!("{secs_ex:.3}"), format!("{secs_opt:.3}")]);
        eprintln!("6c: k={k} exhaustive {secs_ex:.3}s optimized {secs_opt:.3}s");
    }
    println!("{tc}");
    println!("(paper: near-linear growth with k — reproduced by the exhaustive scan;");
    println!(" the optimized scan removes the O(k) term, an improvement over the paper)");
}
