//! **Wire-format fabric** — the serialising transport against the direct
//! in-memory path, and the compact frame encoding against fixed-width
//! records. Three identical streaming sessions run the same hub-skewed
//! delta stream over the Tuenti analogue: one on the default direct path
//! (buffers move by pointer swap, nothing is serialised), one through the
//! in-memory ring transport framing every cross-worker batch in the `Raw`
//! fixed-width format, and one framing in the `Compact` format
//! (sorted-by-destination delta+varint ids, payload-specialised values).
//!
//! Expected shape: labels, φ/ρ, and the whole logical trajectory are
//! **bit-identical** across all three arms — the transport only changes how
//! bytes move — while the compact frames carry the same traffic in less
//! than half the bytes per remote logical message, and the wire path stops
//! allocating once warm. A fourth pair of runs drives a combiner-bearing
//! min-label program through the ring transport to pin sender-side
//! combiner folding: records folded before framing, identical results, and
//! a fold ratio above 1.
//!
//! Emits deterministic `METRIC` lines: `bytes_per_record_*` gate
//! lower-is-better in `bench-compare`, `wire_compression` and `fold_ratio`
//! higher-is-better.

use spinner_bench::{emit_metric, f2, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession, WindowReport};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig, DirectedGraph, GraphDelta};
use spinner_pregel::engine::{Engine, EngineConfig};
use spinner_pregel::program::Program;
use spinner_pregel::{Placement, TransportKind, VertexContext, WireFormat};
use std::process::ExitCode;

/// Delta windows in the stream (hub-biased, as in `exp-broadcast`: the
/// regime where sorted-by-destination delta ids compress best).
const DELTA_WINDOWS: u32 = 5;
/// Logical workers hosting the computation.
const WORKERS: usize = 8;
/// The acceptance gate: raw frames must spend at least this many times
/// more bytes per remote logical message than compact frames.
const MIN_COMPRESSION: f64 = 2.0;

/// The per-window digest that must be identical across all transport arms
/// (f64 fields compare by bits; none are NaN by construction).
fn digest(w: &WindowReport) -> (f64, f64, f64, u32, u64, u64, u64, u64, u64) {
    (
        w.phi(),
        w.rho(),
        w.migration_fraction(),
        w.iterations(),
        w.supersteps(),
        w.messages(),
        w.sent_local(),
        w.sent_remote(),
        w.placement_moved(),
    )
}

/// Min-label propagation (WCC) with a folding combiner — Spinner's own
/// announcement program keeps per-neighbour messages, so the fold gate
/// needs a combiner-bearing program.
struct MinLabel;

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, best);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u32, msg: &u32) -> bool {
        *acc = (*acc).min(*msg);
        true
    }
}

/// Runs the min-label program over `g` on the ring transport and returns
/// `(values, fold_ratio, wire_bytes, tail_reallocs)` — the last being the
/// fabric growth events after the warm-up supersteps, the engine-level
/// steady-state measure.
fn run_minlabel(g: &DirectedGraph, threads: usize, fold: bool) -> (Vec<u32>, f64, u64, u64) {
    let placement = Placement::hashed(g.num_vertices(), WORKERS, 9);
    let cfg = EngineConfig {
        num_threads: threads,
        max_supersteps: 300,
        seed: 3,
        transport: TransportKind::Ring,
        wire_format: WireFormat::Compact,
        sender_fold: fold,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::from_directed(MinLabel, g, &placement, cfg, |_| u32::MAX, |_, _, _| ());
    let summary = engine.run();
    let totals = summary.totals();
    let tail_reallocs = summary
        .metrics
        .iter()
        .skip(3)
        .map(|s| s.per_worker.iter().map(|w| w.fabric_reallocs).sum::<u64>())
        .sum();
    (engine.collect_values(), totals.fold_ratio(), totals.wire_bytes, tail_reallocs)
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = WORKERS;
    let direct_cfg = cfg.clone();
    let raw_cfg =
        cfg.clone().with_transport(TransportKind::Ring).with_wire_format(WireFormat::Raw);
    let compact_cfg = cfg.with_transport(TransportKind::Ring);

    let deltas: Vec<GraphDelta> = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: DELTA_WINDOWS,
            add_fraction: 0.012,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 4,
            triadic_fraction: 0.6,
            hub_bias: 1.0,
            seed: 99,
        },
    )
    .collect();

    eprintln!("bootstrap partitioning (direct vs ring/raw vs ring/compact)...");
    let mut direct = StreamSession::new(base.clone(), direct_cfg);
    let mut raw = StreamSession::new(base.clone(), raw_cfg);
    let mut compact = StreamSession::new(base.clone(), compact_cfg);
    // The last window is a no-growth probe: an empty delta re-converges
    // over an unchanged graph, so every buffer — outboxes, frames,
    // transport channels, decode scratch — must fit in the capacity the
    // stream already warmed up. Growth windows before it may legitimately
    // allocate (their traffic exceeds every prior peak); the probe pins
    // the steady state at exactly zero.
    let probe = GraphDelta { new_vertices: 0, added_edges: vec![], removed_edges: vec![] };
    for delta in deltas.into_iter().chain([probe]) {
        direct.apply(StreamEvent::Delta(delta.clone()));
        raw.apply(StreamEvent::Delta(delta.clone()));
        let c = compact.apply(StreamEvent::Delta(delta));
        eprintln!(
            "window {:>2}: remote msgs {} -> {} compact bytes ({:.2} B/msg) \
             phi={:.3} reallocs={}",
            c.window(),
            c.sent_remote(),
            c.wire_bytes(),
            c.wire_bytes() as f64 / c.sent_remote().max(1) as f64,
            c.phi(),
            c.fabric_reallocs(),
        );
    }

    let mut t = Table::new(format!(
        "Frame bytes per window, raw vs compact encoding \
         ({DELTA_WINDOWS} hub-biased delta windows, k={k}, L={WORKERS})"
    ))
    .header(["window", "phi", "remote msgs", "raw bytes", "compact bytes", "ratio"]);
    for (r, c) in raw.windows().iter().zip(compact.windows()) {
        t.row([
            c.window().to_string(),
            f2(c.phi()),
            c.sent_remote().to_string(),
            r.wire_bytes().to_string(),
            c.wire_bytes().to_string(),
            format!("{:.2}x", r.wire_bytes() as f64 / c.wire_bytes().max(1) as f64),
        ]);
    }
    println!("{t}");

    let bytes = |s: &StreamSession| s.windows().iter().map(|w| w.wire_bytes()).sum::<u64>();
    let remote = |s: &StreamSession| s.windows().iter().map(|w| w.sent_remote()).sum::<u64>();
    let (raw_bytes, compact_bytes) = (bytes(&raw), bytes(&compact));
    let remote_msgs = remote(&compact);
    let per_msg_raw = raw_bytes as f64 / remote_msgs.max(1) as f64;
    let per_msg_compact = compact_bytes as f64 / remote_msgs.max(1) as f64;
    let compression = raw_bytes as f64 / compact_bytes.max(1) as f64;
    println!(
        "stream totals: {raw_bytes} raw vs {compact_bytes} compact bytes for \
         {remote_msgs} remote messages ({per_msg_raw:.2} vs {per_msg_compact:.2} B/msg, \
         {compression:.2}x compression; identical logical traffic and labels)"
    );

    eprintln!("combiner fold (min-label WCC over the ring transport)...");
    let (folded_values, fold_ratio, folded_bytes, folded_tail) =
        run_minlabel(&base, threads_from_env(), true);
    let (unfolded_values, neutral_ratio, unfolded_bytes, _) =
        run_minlabel(&base, threads_from_env(), false);
    println!(
        "sender fold: ratio {fold_ratio:.2}x, {folded_bytes} vs {unfolded_bytes} bytes \
         (fold off: ratio {neutral_ratio:.2}x); identical components"
    );

    emit_metric("bytes_per_record_raw", per_msg_raw);
    emit_metric("bytes_per_record_compact", per_msg_compact);
    emit_metric("wire_compression", compression);
    emit_metric("fold_ratio", fold_ratio);
    emit_metric("phi_final", compact.windows().last().expect("bootstrap window").phi());

    // ---- acceptance criteria (self-gating: CI runs this in the smoke
    // suite, so a violation fails the build) ----
    let mut violations: Vec<String> = Vec::new();
    for (name, arm) in [("raw", &raw), ("compact", &compact)] {
        if direct.labels() != arm.labels() {
            violations.push(format!("labels diverged between direct and {name} arms"));
        }
        for (d, w) in direct.windows().iter().zip(arm.windows()) {
            if digest(d) != digest(w) {
                violations.push(format!(
                    "window {}: logical trajectory diverged between direct and {name}",
                    d.window()
                ));
            }
        }
        // The direct path never serialises; the wire arms always do.
        let wired = bytes(arm);
        if wired == 0 {
            violations.push(format!("{name} arm framed no bytes"));
        }
        // Steady state: the no-growth probe window re-converged over an
        // unchanged graph, so framing, transport channels, and decode
        // scratch must all have run inside pre-reserved capacity.
        let probe = arm.windows().last().expect("probe window");
        if probe.fabric_reallocs() != 0 {
            violations.push(format!(
                "probe window: {} fabric reallocations in the {name} arm (want 0)",
                probe.fabric_reallocs()
            ));
        }
    }
    if bytes(&direct) != 0 {
        violations.push("direct arm serialised".to_string());
    }
    if compression < MIN_COMPRESSION {
        violations.push(format!(
            "compact compression {compression:.2}x below the {MIN_COMPRESSION:.0}x gate \
             ({raw_bytes} vs {compact_bytes} bytes)"
        ));
    }
    if folded_values != unfolded_values {
        violations.push("sender-side folding changed the computed components".to_string());
    }
    if fold_ratio <= 1.0 {
        violations.push(format!("fold ratio {fold_ratio:.2} not above 1"));
    }
    if neutral_ratio != 1.0 {
        violations.push(format!("fold-off arm reported ratio {neutral_ratio:.2} (want 1)"));
    }
    if folded_tail != 0 {
        violations
            .push(format!("{folded_tail} fabric reallocations after engine warm-up (want 0)"));
    }
    if folded_bytes >= unfolded_bytes {
        violations.push(format!(
            "folding did not shrink frames ({folded_bytes} vs {unfolded_bytes} bytes)"
        ));
    }
    if violations.is_empty() {
        println!(
            "all gates passed: bit-identical labels/trajectory across transports, \
             {compression:.2}x compact compression (gate {MIN_COMPRESSION:.0}x), \
             {fold_ratio:.2}x sender fold, zero steady-state reallocs"
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
