//! **Figure 9** — impact of Spinner's partitioning on application
//! performance: runtime improvement over hash partitioning for Single-Source
//! Shortest Paths/BFS (SP), PageRank (PR), and Weakly Connected Components
//! (CC) on the LiveJournal (k=16), Tuenti (k=32), and Twitter (k=64)
//! analogues, with vertices placed on one logical worker per partition.
//!
//! Expected shape (paper): 25–35% improvement on Twitter (densest, hardest)
//! and up to ~50% on LiveJournal/Tuenti.

use spinner_bench::{improvement_pct, pct1, scale_from_env, spinner_cfg, Table};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::{Dataset, DirectedGraph, UndirectedGraph};
use spinner_pregel::algorithms::{run_pagerank, run_sssp, run_wcc};
use spinner_pregel::sim::CostModel;
use spinner_pregel::{EngineConfig, Placement, SuperstepMetrics};

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        num_threads: spinner_bench::threads_from_env(),
        max_supersteps: 100_000,
        seed: 5,
        // PageRank/SSSP send per-edge payloads, never broadcast: skip the
        // broadcast lane's load-time index build.
        broadcast_fabric: false,
        ..EngineConfig::default()
    }
}

/// Simulated cluster runtime of a run (the metric the paper's wall times
/// correspond to on a real cluster).
fn sim_seconds(metrics: &[SuperstepMetrics]) -> f64 {
    CostModel::default().total_seconds(metrics)
}

fn run_apps(
    directed: &DirectedGraph,
    undirected: &UndirectedGraph,
    placement: &Placement,
) -> [f64; 3] {
    let (_, sp) = run_sssp(directed, placement, engine_cfg(), 0);
    let (_, pr) = run_pagerank(directed, placement, engine_cfg(), 20);
    let (_, cc) = run_wcc(undirected, placement, engine_cfg());
    [sim_seconds(&sp.metrics), sim_seconds(&pr.metrics), sim_seconds(&cc.metrics)]
}

fn main() {
    let scale = scale_from_env();
    let settings =
        [(Dataset::LiveJournal, 16u32), (Dataset::Tuenti, 32), (Dataset::Twitter, 64)];

    let mut t = Table::new(
        "Figure 9: % runtime improvement of Spinner placement over hash (simulated cluster)",
    )
    .header(["graph", "k", "SP", "PR", "CC"]);

    for (d, k) in settings {
        let directed = d.build_directed(scale);
        let undirected = if d.directed() {
            to_weighted_undirected(&directed)
        } else {
            spinner_graph::conversion::from_undirected_edges(&directed)
        };
        eprintln!(
            "{}: |V|={} |E|={}",
            d.short_name(),
            directed.num_vertices(),
            directed.num_edges()
        );

        let spinner = spinner_core::partition(&undirected, &spinner_cfg(k, 42));
        eprintln!("  spinner phi={:.3} rho={:.3}", spinner.quality.phi, spinner.quality.rho);
        let n = directed.num_vertices();
        let hash_placement = Placement::hashed(n, k as usize, 7);
        let spinner_placement = Placement::from_labels_balanced(&spinner.labels, k as usize);

        let base = run_apps(&directed, &undirected, &hash_placement);
        let opt = run_apps(&directed, &undirected, &spinner_placement);

        let imps: Vec<String> =
            base.iter().zip(&opt).map(|(&b, &o)| pct1(improvement_pct(b, o))).collect();
        eprintln!("  {}: SP {} PR {} CC {}", d.short_name(), imps[0], imps[1], imps[2]);
        t.row([
            d.short_name().to_string(),
            k.to_string(),
            imps[0].clone(),
            imps[1].clone(),
            imps[2].clone(),
        ]);
    }
    println!("{t}");
    println!("(paper: TW 25-35%; LJ/TU up to ~50%)");
}
