//! **Figure 3 + Table III** — (a) Spinner's locality φ as a function of the
//! number of partitions k ∈ {2..512} on the five real-graph analogues;
//! (b) φ improvement relative to hash partitioning; Table III: average ρ
//! per graph.
//!
//! Expected shape (paper): φ decreases with k but stays high (e.g. LJ ≈ 0.9
//! at k=2 down to ≈ 0.6 at k=512; TW is hardest); the improvement over hash
//! grows with k, up to ~250x at k=512; ρ stays ≈ 1.05 everywhere.

use spinner_baselines::hash_partition;
use spinner_bench::{
    emit_metric, f2, f3, load_dataset, run_spinner, scale_from_env, spinner_cfg, Table,
};
use spinner_graph::Dataset;

/// Paper Table III: average ρ per graph.
const PAPER_RHO: [(&str, f64); 5] =
    [("LJ", 1.053), ("G+", 1.042), ("TU", 1.052), ("TW", 1.059), ("FR", 1.047)];

fn main() {
    let scale = scale_from_env();
    let ks = [2u32, 4, 8, 16, 32, 64, 128, 256, 512];

    let mut phi_table = Table::new("Figure 3a: phi vs number of partitions").header(
        std::iter::once("k".to_string())
            .chain(Dataset::FIG3.iter().map(|d| d.short_name().to_string())),
    );
    let mut imp_table = Table::new("Figure 3b: phi improvement over hash partitioning (x)")
        .header(
            std::iter::once("k".to_string())
                .chain(Dataset::FIG3.iter().map(|d| d.short_name().to_string())),
        );

    let graphs: Vec<_> = Dataset::FIG3.iter().map(|&d| (d, load_dataset(d, scale))).collect();

    let mut rho_sums = vec![0.0f64; graphs.len()];
    let mut phi_rows: Vec<Vec<f64>> = Vec::new();
    let mut imp_rows: Vec<Vec<f64>> = Vec::new();
    for &k in &ks {
        let mut phis = Vec::new();
        let mut imps = Vec::new();
        for (i, (_, g)) in graphs.iter().enumerate() {
            // Pin the logical-worker count: the §IV-A4 async load view makes
            // results depend on it, and this experiment's phi/rho feed the
            // machine-invariant quality gate.
            let mut cfg = spinner_cfg(k, 42);
            cfg.num_workers = 16;
            let r = run_spinner(g, &cfg);
            rho_sums[i] += r.quality.rho;
            let hash = hash_partition(g.num_vertices(), k, 7);
            let phi_hash = spinner_metrics::phi(g, &hash).max(1e-9);
            phis.push(r.quality.phi);
            imps.push(r.quality.phi / phi_hash);
        }
        phi_rows.push(phis);
        imp_rows.push(imps);
    }

    for (row, &k) in phi_rows.iter().zip(&ks) {
        phi_table.row(std::iter::once(k.to_string()).chain(row.iter().map(|&p| f2(p))));
    }
    for (row, &k) in imp_rows.iter().zip(&ks) {
        imp_table
            .row(std::iter::once(k.to_string()).chain(row.iter().map(|&i| format!("{i:.1}x"))));
    }
    println!("{phi_table}");
    println!("{imp_table}");

    let mut rho_table = Table::new("Table III: average rho per graph, measured (paper)")
        .header(["graph", "avg rho", "paper"]);
    for (i, (d, _)) in graphs.iter().enumerate() {
        let avg = rho_sums[i] / ks.len() as f64;
        let paper = PAPER_RHO
            .iter()
            .find(|(n, _)| *n == d.short_name())
            .map(|&(_, r)| r)
            .unwrap_or(f64::NAN);
        rho_table.row([d.short_name().to_string(), f3(avg), f3(paper)]);
    }
    println!("{rho_table}");

    // Quality-gate metrics (seeded, deterministic): mean phi across the
    // graphs at k = 32 and mean rho over the whole grid.
    let k32 = ks.iter().position(|&k| k == 32).expect("k grid contains 32");
    emit_metric("phi_k32_mean", phi_rows[k32].iter().sum::<f64>() / phi_rows[k32].len() as f64);
    emit_metric("rho_mean", rho_sums.iter().sum::<f64>() / (rho_sums.len() * ks.len()) as f64);
}
