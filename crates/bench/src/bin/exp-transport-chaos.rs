//! **Transport chaos** — the wire-level robustness companion to
//! `exp-chaos`: scripted frame-fault plans (drops, duplicates, reorders,
//! bit flips, torn frames, delivery delays, and a seeded mix) are injected
//! under a streaming Tuenti-analogue workload running on the serialising
//! ring transport with the ack/retransmit reliability layer on.
//!
//! Expected shape: every recoverable plan is *invisible* — per-window label
//! digests stay bit-identical to the fault-free reference while the
//! reliability counters record the repairs; the steady-state probe window
//! allocates nothing even with the reliability layer folding repairs in;
//! the retransmit ratio stays bounded; and an unrecoverable lane stall
//! escalates through lane death into the session's worker-loss recovery
//! with lookup availability at 100% throughout — a typed recovery, never a
//! hang. The binary **asserts** these criteria and exits non-zero on
//! violation.
//!
//! Writes `bench-out/TRANSPORT_CHAOS.json` (override with
//! `SPINNER_TRANSPORT_CHAOS_JSON`) and emits
//! `METRIC retransmit_ratio_chaos` (lower-is-better),
//! `METRIC delivery_overhead_chaos` (lower-is-better) and
//! `METRIC availability_transport_recovery` (higher-is-better) for
//! `bench-compare`.

use spinner_bench::{emit_metric, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig, GraphDelta};
use spinner_pregel::{TransportFault, TransportFaultPlan, TransportKind, WorkerId};
use spinner_serving::ServingNode;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Lookup threads hammering the node through the lane-death phase.
const READERS: usize = 4;
/// Churn windows per run (plus the allocation-probe window).
const CHURN_WINDOWS: usize = 2;
/// Retransmitted frames per encoded frame a recoverable sweep may cost.
const RETRANSMIT_BOUND: f64 = 0.10;
/// The sender whose lanes the stall phase kills.
const STALLED_SENDER: WorkerId = 3;

/// FNV-1a over the label array — the per-window bit-identity digest.
fn digest(labels: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels {
        for b in l.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What the lookup threads saw while the lane-death phase ran.
struct HammerStats {
    attempts: u64,
    hits: u64,
}

fn hammer(reader: &spinner_serving::RoutingReader, stop: &Arc<AtomicBool>) -> HammerStats {
    let mut handles = Vec::new();
    for t in 0..READERS {
        let reader = reader.clone();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            let mut stats = HammerStats { attempts: 0, hits: 0 };
            let mut rng = 0x2545_F491_4F6C_DD1Du64 ^ ((t as u64) << 48);
            while !stop.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let len = reader.len();
                if len == 0 {
                    continue;
                }
                stats.attempts += 1;
                if reader.lookup((rng >> 33) as u32 % len as u32).is_some() {
                    stats.hits += 1;
                }
            }
            stats
        }));
    }
    let mut merged = HammerStats { attempts: 0, hits: 0 };
    for h in handles {
        let s = h.join().expect("reader thread");
        merged.attempts += s.attempts;
        merged.hits += s.hits;
    }
    merged
}

/// One chaos arm's outcome over the shared window schedule.
struct ArmOutcome {
    name: &'static str,
    digests: Vec<u64>,
    probe_reallocs: u64,
    /// Whether any scripted fault fired *during* the probe window. A noisy
    /// probe may legitimately allocate (a held frame empties a lane pool
    /// for one publish); a quiet probe must match the reference exactly.
    probe_quiet: bool,
    retransmits: u64,
    wire_frames: u64,
    recovery_actions: u64,
    injected: u64,
    remaining: u64,
}

fn run_arm(
    name: &'static str,
    state0: &spinner_core::SessionState,
    events: &[StreamEvent],
    plan: Option<TransportFaultPlan>,
) -> ArmOutcome {
    let mut session = StreamSession::from_state(state0.clone());
    if let Some(plan) = plan {
        session.inject_transport_faults(plan);
    }
    let mut digests = Vec::new();
    let mut retransmits = 0;
    let mut wire_frames = 0;
    let mut probe_reallocs = 0;
    let mut injected_before_probe = 0;
    for (i, event) in events.iter().enumerate() {
        if i + 1 == events.len() {
            injected_before_probe = session.transport_chaos_counts().0;
        }
        let report = session.apply(event.clone());
        retransmits += report.retransmits();
        wire_frames += report.wire_frames();
        if i + 1 == events.len() {
            probe_reallocs = report.fabric_reallocs();
        }
        digests.push(digest(session.labels()));
    }
    let (injected, remaining) = session.transport_chaos_counts();
    ArmOutcome {
        name,
        digests,
        probe_reallocs,
        probe_quiet: injected == injected_before_probe,
        retransmits,
        wire_frames,
        recovery_actions: session.transport_recv_stats().recovery_actions(),
        injected,
        remaining,
    }
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42).with_placement_feedback(0.5);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = 16;
    cfg.transport = TransportKind::Ring;

    let mut deltas = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: (CHURN_WINDOWS + 4) as u32,
            add_fraction: 0.010,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 99,
        },
    );
    let mut next_event = || StreamEvent::Delta(deltas.next().expect("delta window"));

    eprintln!("bootstrap partitioning (k={k}, ring transport, reliability on)...");
    let state0 = StreamSession::new(base, cfg.clone()).state();
    let mut violations: Vec<String> = Vec::new();

    // The shared schedule: churn windows, then an unchanged-graph probe
    // window — by then every buffer is warm, so any allocation in it is
    // reliability-layer overhead leaking into the steady state.
    let mut events: Vec<StreamEvent> = (0..CHURN_WINDOWS).map(|_| next_event()).collect();
    events.push(StreamEvent::Delta(GraphDelta::default()));

    // ---- phase A: fault-free reference digests on the same wire stack.
    let reference = run_arm("clean", &state0, &events, None);
    if reference.retransmits != 0 {
        violations.push(format!(
            "clean wire retransmitted {} frames — the reliability layer must be silent \
             without faults",
            reference.retransmits
        ));
    }
    eprintln!(
        "reference: {} frames over {} windows, probe reallocs {}",
        reference.wire_frames,
        events.len(),
        reference.probe_reallocs
    );

    // ---- phase B: every recoverable fault plan must be invisible in the
    // digests, allocation-free in the probe window, and bounded in repair
    // cost.
    let w = 16usize; // workers, for seeded plan lane space
    let arms: Vec<ArmOutcome> =
        vec![
            run_arm(
                "drop",
                &state0,
                &events,
                Some(
                    TransportFaultPlan::new()
                        .fail(0, 1, 0, TransportFault::Drop)
                        .fail(5, 9, 1, TransportFault::Drop)
                        .fail(12, 2, 2, TransportFault::Drop),
                ),
            ),
            run_arm(
                "duplicate",
                &state0,
                &events,
                Some(TransportFaultPlan::new().fail(1, 0, 0, TransportFault::Duplicate).fail(
                    7,
                    11,
                    1,
                    TransportFault::Duplicate,
                )),
            ),
            run_arm(
                "reorder",
                &state0,
                &events,
                Some(
                    TransportFaultPlan::new()
                        .fail(2, 3, 0, TransportFault::Reorder { window: 2 })
                        .fail(10, 4, 1, TransportFault::Reorder { window: 3 }),
                ),
            ),
            run_arm(
                "flip-bit",
                &state0,
                &events,
                Some(
                    TransportFaultPlan::new()
                        .fail(3, 2, 0, TransportFault::FlipBit { bit: 17 })
                        .fail(8, 15, 1, TransportFault::FlipBit { bit: 4099 }),
                ),
            ),
            run_arm(
                "torn",
                &state0,
                &events,
                Some(
                    TransportFaultPlan::new()
                        .fail(4, 6, 0, TransportFault::Torn { keep: 3 })
                        .fail(14, 0, 1, TransportFault::Torn { keep: 11 }),
                ),
            ),
            run_arm(
                "delay",
                &state0,
                &events,
                Some(
                    TransportFaultPlan::new()
                        .fail(6, 5, 0, TransportFault::Delay { ticks: 2 })
                        .fail(9, 13, 1, TransportFault::Delay { ticks: 3 }),
                ),
            ),
            run_arm(
                "seeded-mix",
                &state0,
                &events,
                Some(TransportFaultPlan::seeded(42, w, 24, 0.02)),
            ),
        ];

    let mut sweep_retransmits = 0u64;
    let mut sweep_frames = 0u64;
    let mut sweep_repairs = 0u64;
    let mut sweep_injected = 0u64;
    for arm in &arms {
        sweep_retransmits += arm.retransmits;
        sweep_frames += arm.wire_frames;
        sweep_repairs += arm.recovery_actions;
        sweep_injected += arm.injected;
        if arm.digests != reference.digests {
            violations.push(format!(
                "{}: window digests diverged from the fault-free reference",
                arm.name
            ));
        }
        // Zero steady-state allocations attributable to the reliability
        // layer: once an arm's faults are consumed, its probe window must
        // allocate exactly what the fault-free reference does — the
        // retransmit buffers are retained, not regrown. Arms whose plan is
        // still firing during the probe (the seeded mix) are exempt: a
        // frame held by an active fault legitimately empties a lane pool
        // for one publish.
        if arm.probe_quiet && arm.probe_reallocs != reference.probe_reallocs {
            violations.push(format!(
                "{}: probe window allocated {} times vs reference {} — the reliability \
                 layer leaked allocations into the steady state",
                arm.name, arm.probe_reallocs, reference.probe_reallocs
            ));
        }
        let ratio = arm.retransmits as f64 / arm.wire_frames.max(1) as f64;
        if ratio > RETRANSMIT_BOUND {
            violations.push(format!(
                "{}: retransmit ratio {ratio:.4} exceeds {RETRANSMIT_BOUND}",
                arm.name
            ));
        }
        eprintln!(
            "{:>10}: digests {}, injected {}/{} faults, {} retransmits / {} frames, \
             {} repairs, probe reallocs {}{}",
            arm.name,
            if arm.digests == reference.digests { "bit-identical" } else { "DIVERGED" },
            arm.injected,
            arm.injected + arm.remaining,
            arm.retransmits,
            arm.wire_frames,
            arm.recovery_actions,
            arm.probe_reallocs,
            if arm.probe_quiet { "" } else { " (plan active in probe)" }
        );
    }
    if sweep_injected == 0 {
        violations.push("chaos sweep injected no faults — the plans never fired".into());
    }
    let retransmit_ratio = sweep_retransmits as f64 / sweep_frames.max(1) as f64;
    let delivery_overhead = sweep_repairs as f64 / sweep_frames.max(1) as f64;

    // ---- phase C: a stalled sender exhausts the lane's retry budget; the
    // dead lane must escalate into worker-loss recovery while lookups keep
    // serving — never a hang, never an availability drop.
    let mut node = ServingNode::new(StreamSession::from_state(state0.clone()));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = node.reader();
    let readers = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || hammer(&reader, &stop))
    };
    let pre = node.ingest(next_event()).expect("pre-stall churn window");
    assert!(!pre.report().is_recovery(), "clean window must not recover");
    // Stall every early frame the victim sends to three peers: whichever
    // lane the engine trips on first, the error names sender 3 and the
    // session reseeds exactly the state that sender hosted.
    let stall = TransportFaultPlan::new()
        .stall_at(usize::from(STALLED_SENDER), 0, 0)
        .stall_at(usize::from(STALLED_SENDER), 1, 0)
        .stall_at(usize::from(STALLED_SENDER), 2, 0);
    node.inject_transport_faults(stall);
    let loss = node.ingest(next_event()).expect("lane-death recovery window");
    let recovery = loss.report().clone();
    let post = node.ingest(next_event()).expect("post-recovery churn window");
    stop.store(true, Ordering::Relaxed);
    let stats = readers.join().expect("reader pool");
    let availability =
        if stats.attempts == 0 { 0.0 } else { stats.hits as f64 / stats.attempts as f64 };

    if !recovery.is_recovery() || recovery.lost_vertices() == 0 {
        violations.push(format!(
            "lane death did not escalate into recovery (lost_vertices {})",
            recovery.lost_vertices()
        ));
    }
    if recovery.lanes_dead() == 0 {
        violations.push("recovery window reports no dead lanes".into());
    }
    if node.transport_recoveries() != 1 {
        violations.push(format!(
            "node counted {} transport recoveries (want exactly 1)",
            node.transport_recoveries()
        ));
    }
    if post.report().lanes_dead() != 0 || post.report().is_recovery() {
        violations.push("post-recovery window still unhealthy".into());
    }
    if stats.hits != stats.attempts || stats.attempts == 0 {
        violations.push(format!(
            "availability dropped during lane-death recovery: {}/{} lookups answered",
            stats.hits, stats.attempts
        ));
    }
    eprintln!(
        "lane death: {} vertices reseeded, {} dead lanes, {} retransmits in the window, \
         availability {availability:.6}",
        recovery.lost_vertices(),
        recovery.lanes_dead(),
        recovery.retransmits()
    );

    // ---- report ----
    let mut t = Table::new(format!(
        "Transport chaos: recoverable-fault sweep + lane-death escalation \
         (Tuenti analogue, k={k}, ring transport)"
    ))
    .header(["phase", "checks", "outcome"]);
    t.row([
        "clean reference".to_string(),
        format!("{} windows", events.len()),
        format!("{} frames, 0 retransmits", reference.wire_frames),
    ]);
    t.row([
        "fault sweep".to_string(),
        format!("{} plans, {sweep_injected} faults", arms.len()),
        format!(
            "{} bit-identical, ratio {retransmit_ratio:.4}",
            arms.iter().filter(|a| a.digests == reference.digests).count()
        ),
    ]);
    t.row([
        "lane death".to_string(),
        format!("sender {STALLED_SENDER} stalled"),
        format!("{} reseeded, availability {availability:.4}", recovery.lost_vertices()),
    ]);
    println!("{t}");

    write_json(&arms, &reference, retransmit_ratio, delivery_overhead, &recovery, availability);

    emit_metric("retransmit_ratio_chaos", retransmit_ratio);
    emit_metric("delivery_overhead_chaos", delivery_overhead);
    emit_metric("availability_transport_recovery", availability);

    if violations.is_empty() {
        println!(
            "transport chaos gates hold: {} plans bit-identical with zero reliability \
             allocations in the probe, retransmit ratio {retransmit_ratio:.4} <= \
             {RETRANSMIT_BOUND}, lane death recovered {} vertices at availability \
             {availability:.4}",
            arms.len(),
            recovery.lost_vertices()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

fn write_json(
    arms: &[ArmOutcome],
    reference: &ArmOutcome,
    retransmit_ratio: f64,
    delivery_overhead: f64,
    recovery: &spinner_core::WindowReport,
    availability: f64,
) {
    let path = std::env::var("SPINNER_TRANSPORT_CHAOS_JSON")
        .unwrap_or_else(|_| "bench-out/TRANSPORT_CHAOS.json".to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-transport-chaos\",\n");
    out.push_str(&format!("  \"reference_frames\": {},\n", reference.wire_frames));
    out.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let sep = if i + 1 == arms.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"plan\": \"{}\", \"bit_identical\": {}, \"injected\": {}, \
             \"retransmits\": {}, \"wire_frames\": {}, \"repairs\": {}, \
             \"probe_reallocs\": {}}}{sep}\n",
            arm.name,
            arm.digests == reference.digests,
            arm.injected,
            arm.retransmits,
            arm.wire_frames,
            arm.recovery_actions,
            arm.probe_reallocs
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"retransmit_ratio_chaos\": {retransmit_ratio:.6},\n"));
    out.push_str(&format!("  \"delivery_overhead_chaos\": {delivery_overhead:.6},\n"));
    out.push_str(&format!("  \"lane_death_lost_vertices\": {},\n", recovery.lost_vertices()));
    out.push_str(&format!("  \"lane_death_lanes_dead\": {},\n", recovery.lanes_dead()));
    out.push_str(&format!("  \"availability_transport_recovery\": {availability:.6}\n"));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).expect("write transport chaos report");
    eprintln!("wrote {path}");
}
