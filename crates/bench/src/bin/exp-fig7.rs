//! **Figure 7** — adapting to dynamic graph changes on the Tuenti analogue:
//! add a varying percentage of new (triadic-closure) edges and compare
//! incremental adaptation against re-partitioning from scratch on
//! (a) savings in processing time and messages, (b) partitioning stability
//! (fraction of vertices that must move).
//!
//! Expected shape (paper): up to ~86% time / ~92% message savings for small
//! changes, still ≥ ~80% time savings at large (30%) changes; the adaptive
//! approach moves only 8–11% of vertices where scratch moves 95–98%; final
//! quality matches scratch (φ 67–69%, ρ ≈ 1.047).

use spinner_bench::{
    emit_metric, f2, f3, pct1, savings_pct, scale_from_env, spinner_cfg, Table,
};
use spinner_core::{adapt, partition};
use spinner_graph::conversion::from_undirected_edges;
use spinner_graph::mutation::{apply_delta, sample_new_edges};
use spinner_graph::{Dataset, GraphDelta};
use spinner_metrics::partitioning_difference;

fn main() {
    let scale = scale_from_env();
    let k = 32u32;
    // The underlying directed edge list (Tuenti is undirected at source; we
    // mutate the edge list and re-derive the undirected view).
    let base_directed = Dataset::Tuenti.build_directed(scale);
    let base = from_undirected_edges(&base_directed);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    // Pin the logical-worker count: the §IV-A4 async load view makes
    // results depend on it, and this experiment's adaptation phi/rho feed
    // the machine-invariant quality gate.
    let mut cfg = spinner_cfg(k, 42);
    cfg.num_workers = 16;
    eprintln!("initial partitioning...");
    let initial = partition(&base, &cfg);
    eprintln!(
        "initial: phi={:.3} rho={:.3} iters={}",
        initial.quality.phi, initial.quality.rho, initial.iterations
    );

    let mut t = Table::new("Figure 7: adapting to graph changes (Tuenti analogue, k=32)")
        .header([
            "% new edges",
            "time saved",
            "msgs saved",
            "moved adapt",
            "moved scratch",
            "phi adapt",
            "rho adapt",
        ]);

    for pct in [0.1f64, 0.5, 1.0, 2.5, 5.0, 10.0, 20.0, 30.0] {
        let count = (base_directed.num_edges() as f64 * pct / 100.0) as usize;
        let new_edges = sample_new_edges(&base_directed, count, 0.8, 99);
        let changed = apply_delta(&base_directed, &GraphDelta::additions(new_edges));
        let g2 = from_undirected_edges(&changed);

        let adapted = adapt(&g2, &initial.labels, &cfg);
        let scratch = partition(&g2, &cfg.clone().with_seed(4242));

        let time_saved = savings_pct(scratch.wall_ns as f64, adapted.wall_ns as f64);
        let msg_saved =
            savings_pct(scratch.totals.messages as f64, adapted.totals.messages as f64);
        let moved_adapt = partitioning_difference(&initial.labels, &adapted.labels);
        let moved_scratch = partitioning_difference(&initial.labels, &scratch.labels);

        t.row([
            format!("{pct}%"),
            pct1(time_saved),
            pct1(msg_saved),
            pct1(100.0 * moved_adapt),
            pct1(100.0 * moved_scratch),
            f2(adapted.quality.phi),
            f3(adapted.quality.rho),
        ]);
        if pct == 1.0 {
            // Quality-gate metrics at the 1% change point (seeded runs,
            // deterministic across thread counts).
            emit_metric("phi_adapt_1pct", adapted.quality.phi);
            emit_metric("rho_adapt_1pct", adapted.quality.rho);
            emit_metric("moved_adapt_1pct", moved_adapt);
        }
        eprintln!(
            "{pct}% new edges: time saved {time_saved:.1}%, msgs saved {msg_saved:.1}%, moved {:.1}% vs {:.1}%",
            100.0 * moved_adapt,
            100.0 * moved_scratch
        );
    }
    println!("{t}");
    println!("(paper: ~86%/92% savings at 0.5%, >=80% time saved at 30%;");
    println!(" adaptive moves 8-11% of vertices vs 95-98% from scratch)");
}
