//! **Proposition 3 validation** — empirical capacity-violation frequency
//! under the probabilistic migration step vs (i) the bound *as printed* in
//! the paper and (ii) the rigorous Hoeffding bound, plus the ρ ≤ c
//! relationship of §V-A1.
//!
//! Reproduction finding: the printed bound `exp(−2|M|(εr/(Δ−δ))²)` places
//! `|M|` in the numerator of the exponent; for a sum of `|M|` bounded
//! variables Hoeffding puts the candidate mass in the *denominator*
//! (`exp(−2(εr)²/Σ deg²)`). The Monte-Carlo below shows regimes where the
//! printed bound is exceeded while the rigorous bound always holds.

use spinner_bench::{f3, scale_from_env, spinner_cfg, Table};
use spinner_core::partition;
use spinner_core::theory::{capacity_violation_bound, capacity_violation_bound_rigorous};
use spinner_graph::rng::SplitMix64;
use spinner_graph::{Dataset, Scale};

/// Monte-Carlo check of Prop. 3: |M| candidates with random degrees in
/// [δ, Δ] each migrate with p = r/Σdeg; measure how often the realised load
/// exceeds (1+ε)·r and compare with both bounds.
fn monte_carlo(
    candidates: u64,
    delta: u64,
    big_delta: u64,
    eps: f64,
    trials: u64,
) -> (f64, f64, f64) {
    let mut rng = SplitMix64::new(99);
    let degrees: Vec<u64> =
        (0..candidates).map(|_| delta + rng.next_bounded(big_delta - delta + 1)).collect();
    let m: u64 = degrees.iter().sum();
    // Remaining capacity r chosen at half the candidate mass => p = 0.5.
    let r = m as f64 / 2.0;
    let p = r / m as f64;
    let mut violations = 0u64;
    for _ in 0..trials {
        let mut load = 0.0;
        for &d in &degrees {
            if rng.next_bool(p) {
                load += d as f64;
            }
        }
        if load >= (1.0 + eps) * r {
            violations += 1;
        }
    }
    let paper = capacity_violation_bound(candidates, eps, r, delta, big_delta);
    let rigorous = capacity_violation_bound_rigorous(&degrees, eps, r);
    (violations as f64 / trials as f64, paper, rigorous)
}

fn main() {
    let mut t =
        Table::new("Proposition 3: empirical violation rate vs printed and rigorous bounds")
            .header(["|M|", "deg range", "eps", "empirical", "paper bound", "rigorous bound"]);
    let mut printed_bound_violations = 0u32;
    for (m, d, dd, eps) in [
        (200u64, 1u64, 500u64, 0.2f64),
        (200, 1, 500, 0.4),
        (50, 1, 100, 0.2),
        (1000, 1, 50, 0.1),
    ] {
        let (emp, paper, rigorous) = monte_carlo(m, d, dd, eps, 2000);
        // The rigorous bound must always dominate the empirical rate.
        assert!(
            emp <= rigorous + 0.02,
            "empirical {emp} exceeded the rigorous bound {rigorous}"
        );
        if emp > paper + 0.02 {
            printed_bound_violations += 1;
        }
        t.row([
            m.to_string(),
            format!("[{d},{dd}]"),
            format!("{eps}"),
            format!("{emp:.4}"),
            format!("{paper:.4}"),
            format!("{rigorous:.4}"),
        ]);
    }
    println!("{t}");
    println!(
        "printed-bound violations: {printed_bound_violations}/4 regimes \
         (reproduction finding: Prop. 3 as printed is not a valid upper bound;\n \
         the rigorous Hoeffding form holds everywhere)\n"
    );

    // rho <= c with high probability, on a real partitioning run.
    let scale = match scale_from_env() {
        Scale::Full => Scale::Small, // plenty for a bound check
        s => s,
    };
    let g = Dataset::LiveJournal.build_undirected(scale);
    let mut t2 = Table::new("rho <= c check (LiveJournal analogue, k=16, 5 seeds)")
        .header(["c", "max rho over seeds"]);
    for c in [1.02f64, 1.05, 1.10, 1.20] {
        let mut worst: f64 = 0.0;
        for seed in 0..5 {
            let cfg = spinner_cfg(16, 300 + seed).with_c(c);
            let r = partition(&g, &cfg);
            worst = worst.max(r.quality.rho);
        }
        t2.row([format!("{c:.2}"), f3(worst)]);
    }
    println!("{t2}");
    println!("(paper Fig. 5a: rho tracks c from below, small overshoots possible)");
}
