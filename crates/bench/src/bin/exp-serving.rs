//! **Online partition serving** — the serving-path companion to
//! `exp-stream`: a [`ServingNode`] hosts a streaming session behind the
//! epoch-versioned routing table while lookup threads hammer it, first
//! over a quiescent partition and then concurrently with delta-window
//! ingest (the migration path), and finally across a process "restart"
//! that warm-starts from the snapshot + WAL store.
//!
//! Expected shape: lookups are wait-free, so churn costs the readers
//! almost nothing (gated: < 10% throughput drop vs quiescent, with a
//! stand-in spinner thread keeping the CPU pressure of the two phases
//! equal); a served lookup is never more than one routing epoch behind
//! head while a window publishes (gated: p99 staleness <= 1, exactly 0
//! after quiesce); and the restarted node serves labels bit-identical to
//! the one that "died". The binary **asserts** these criteria and exits
//! non-zero on violation, so the CI smoke suite doubles as the serving
//! quality gate.
//!
//! Writes `bench-out/SERVING.json` (override with `SPINNER_SERVING_JSON`)
//! and emits `METRIC lookup_throughput` (higher-is-better) and
//! `METRIC p99_staleness_epochs` (lower-is-better) for `bench-compare`.

use spinner_bench::{emit_metric, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig};
use spinner_serving::{RoutingReader, ServingNode};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lookup threads in both measured phases.
const READERS: usize = 4;
/// Quiescent measurement window.
const QUIESCENT_MS: u64 = 300;
/// Delta windows ingested during the churn phase (plus one elastic resize).
const DELTA_WINDOWS: u32 = 6;
/// Tolerated lookup-throughput drop while ingest publishes epochs.
const MAX_TPUT_DROP: f64 = 0.10;
/// Staleness histogram width; anything deeper is clamped into the last
/// bucket (and would fail the p99 gate anyway).
const BUCKETS: usize = 8;

/// What one lookup thread observed.
struct ReaderStats {
    lookups: u64,
    /// `staleness_buckets[s]` = lookups whose served epoch was `s` behind
    /// the head observed right after the read.
    staleness_buckets: [u64; BUCKETS],
}

/// Runs `READERS` lookup threads against cloned readers until `stop` is
/// set, verifying every hit against the reader-visible head.
fn hammer(reader: &RoutingReader, stop: &Arc<AtomicBool>) -> Vec<ReaderStats> {
    let mut handles = Vec::new();
    for t in 0..READERS {
        let reader = reader.clone();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            let mut stats = ReaderStats { lookups: 0, staleness_buckets: [0; BUCKETS] };
            let mut rng = 0x853C_49E6_748F_EA9Bu64 ^ ((t as u64) << 48);
            while !stop.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let len = reader.len();
                if len == 0 {
                    continue;
                }
                let v = (rng >> 33) as u32 % len as u32;
                let Some(hit) = reader.lookup(v) else { continue };
                let staleness = reader.head().saturating_sub(hit.epoch()) as usize;
                stats.staleness_buckets[staleness.min(BUCKETS - 1)] += 1;
                stats.lookups += 1;
            }
            stats
        }));
    }
    handles.into_iter().map(|h| h.join().expect("reader thread")).collect()
}

fn total_lookups(stats: &[ReaderStats]) -> u64 {
    stats.iter().map(|s| s.lookups).sum()
}

/// p99 of the merged staleness histogram (in epochs).
fn p99_staleness(stats: &[ReaderStats]) -> u64 {
    let mut merged = [0u64; BUCKETS];
    for s in stats {
        for (m, b) in merged.iter_mut().zip(s.staleness_buckets) {
            *m += b;
        }
    }
    let total: u64 = merged.iter().sum();
    let threshold = (total as f64 * 0.99).ceil() as u64;
    let mut cumulative = 0;
    for (s, &count) in merged.iter().enumerate() {
        cumulative += count;
        if cumulative >= threshold {
            return s as u64;
        }
    }
    (BUCKETS - 1) as u64
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = 16;

    let mut deltas = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: DELTA_WINDOWS,
            add_fraction: 0.010,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 99,
        },
    );

    let store_dir = std::env::var("SPINNER_SERVING_DIR")
        .unwrap_or_else(|_| "bench-out/serving-state".to_string());
    let _ = std::fs::remove_dir_all(&store_dir);

    eprintln!("bootstrap partitioning (k={k})...");
    let session = StreamSession::new(base, cfg);
    let mut node =
        ServingNode::with_persistence(session, &store_dir).expect("create serving store");
    let reallocs_after_bootstrap = node.routing().reallocs();

    // ---- phase 1: quiescent lookup throughput. One spinner thread stands
    // in for the (idle) ingest thread so both phases contend for the same
    // number of cores.
    let stop = Arc::new(AtomicBool::new(false));
    let spinner = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        })
    };
    let reader = node.reader();
    let quiescent_start = Instant::now();
    let quiescent_stats = {
        let stop_timer = Arc::clone(&stop);
        let timer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(QUIESCENT_MS));
            stop_timer.store(true, Ordering::Relaxed);
        });
        let stats = hammer(&reader, &stop);
        timer.join().expect("timer thread");
        stats
    };
    spinner.join().expect("spinner thread");
    let quiescent_secs = quiescent_start.elapsed().as_secs_f64();
    let quiescent_tput = total_lookups(&quiescent_stats) as f64 / quiescent_secs;
    let reallocs_after_reads = node.routing().reallocs();
    eprintln!("quiescent: {:.2} Mlookups/s over {READERS} readers", quiescent_tput / 1e6);

    // ---- phase 2: the same hammering while the ingest thread applies
    // delta windows plus an elastic resize, publishing a routing epoch per
    // window.
    let mut events: Vec<StreamEvent> = (0..DELTA_WINDOWS)
        .map(|_| StreamEvent::Delta(deltas.next().expect("window")))
        .collect();
    events.insert(3, StreamEvent::Resize { k: k + 4 });

    let stop = Arc::new(AtomicBool::new(false));
    let churn_start = Instant::now();
    let (churn_stats, windows_applied) = {
        let reader = node.reader();
        let stop_readers = Arc::clone(&stop);
        let readers = std::thread::spawn(move || hammer(&reader, &stop_readers));
        let mut applied = 0u32;
        for event in events {
            let report = node.ingest(event).expect("ingest");
            applied += 1;
            eprintln!(
                "epoch {:>2}: phi={:.3} rho={:.3} moved {:.1}% wal {} B",
                report.epoch(),
                report.report().phi(),
                report.report().rho(),
                100.0 * report.report().migration_fraction(),
                report.wal_bytes()
            );
        }
        stop.store(true, Ordering::Relaxed);
        (readers.join().expect("reader pool"), applied)
    };
    let churn_secs = churn_start.elapsed().as_secs_f64();
    let churn_tput = total_lookups(&churn_stats) as f64 / churn_secs;
    let p99 = p99_staleness(&churn_stats);
    eprintln!(
        "churn: {:.2} Mlookups/s across {windows_applied} windows, p99 staleness {p99} epochs",
        churn_tput / 1e6
    );

    // ---- phase 3: quiesced staleness + restart-to-serving.
    let head = node.epoch();
    let quiesced_reader = node.reader();
    let mut quiesced_stale = 0u64;
    for v in (0..quiesced_reader.len() as u32).step_by(101) {
        let hit = quiesced_reader.lookup(v).expect("published");
        if hit.epoch() != head {
            quiesced_stale += 1;
        }
    }

    let restart_start = Instant::now();
    let (resumed, resume_stats) = ServingNode::resume_from(&store_dir).expect("resume");
    // Serving is up once a lookup answers — include one in the timing.
    let probe = resumed.lookup(0).expect("resumed table published");
    let restart_ms = restart_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "restart: {restart_ms:.1} ms to serving (replayed {} WAL windows, {} B snapshot)",
        resume_stats.replayed_windows, resume_stats.snapshot_bytes
    );

    let mut t = Table::new(format!(
        "Online serving: {READERS} lookup threads vs {windows_applied} ingest windows \
         (Tuenti analogue, k={k})"
    ))
    .header(["phase", "lookups/s", "p99 staleness", "epochs", "notes"]);
    t.row([
        "quiescent".to_string(),
        format!("{:.3e}", quiescent_tput),
        p99_staleness(&quiescent_stats).to_string(),
        "1".to_string(),
        format!("{} lookups", total_lookups(&quiescent_stats)),
    ]);
    t.row([
        "churn".to_string(),
        format!("{:.3e}", churn_tput),
        p99.to_string(),
        format!("2..={head}"),
        format!("drop {:.1}%", 100.0 * (1.0 - churn_tput / quiescent_tput)),
    ]);
    t.row([
        "restart".to_string(),
        "-".to_string(),
        "0".to_string(),
        head.to_string(),
        format!("{restart_ms:.1} ms to first lookup"),
    ]);
    println!("{t}");

    write_json(quiescent_tput, churn_tput, p99, restart_ms, &resume_stats, head);

    emit_metric("lookup_throughput", quiescent_tput);
    emit_metric("p99_staleness_epochs", p99 as f64);
    emit_metric("serving_churn_throughput", churn_tput);
    emit_metric("serving_restart_ms", restart_ms);

    // ---- acceptance criteria ----
    let mut violations: Vec<String> = Vec::new();
    if churn_tput < (1.0 - MAX_TPUT_DROP) * quiescent_tput {
        violations.push(format!(
            "churn throughput {:.3e} dropped more than {:.0}% below quiescent {:.3e}",
            churn_tput,
            100.0 * MAX_TPUT_DROP,
            quiescent_tput
        ));
    }
    if p99 > 1 {
        violations.push(format!("p99 lookup staleness {p99} epochs (want <= 1)"));
    }
    if quiesced_stale != 0 {
        violations.push(format!(
            "{quiesced_stale} lookups behind head {head} after quiesce (want 0)"
        ));
    }
    if reallocs_after_reads != reallocs_after_bootstrap {
        violations.push(format!(
            "lookup path allocated: routing grows went {reallocs_after_bootstrap} -> \
             {reallocs_after_reads} across the read-only phase"
        ));
    }
    if resumed.session().labels() != node.session().labels() {
        violations.push("resumed labels differ from the live session".to_string());
    }
    if resumed.epoch() != node.epoch() || probe.epoch() != node.epoch() {
        violations.push(format!(
            "resumed node serves epoch {} (probe {}), live head is {}",
            resumed.epoch(),
            probe.epoch(),
            node.epoch()
        ));
    }
    if violations.is_empty() {
        println!(
            "serving gates hold: churn drop {:.1}% < {:.0}%, p99 staleness {p99} <= 1, \
             quiesced staleness 0, restart bit-identical in {restart_ms:.1} ms",
            100.0 * (1.0 - churn_tput / quiescent_tput),
            100.0 * MAX_TPUT_DROP
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Writes the serving report (hand-rolled JSON like the suite reports).
fn write_json(
    quiescent_tput: f64,
    churn_tput: f64,
    p99: u64,
    restart_ms: f64,
    resume: &spinner_serving::ResumeStats,
    head: u64,
) {
    let path = std::env::var("SPINNER_SERVING_JSON")
        .unwrap_or_else(|_| "bench-out/SERVING.json".to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-serving\",\n");
    out.push_str(&format!("  \"readers\": {READERS},\n"));
    out.push_str(&format!("  \"head_epoch\": {head},\n"));
    out.push_str(&format!("  \"lookup_throughput\": {quiescent_tput:.1},\n"));
    out.push_str(&format!("  \"churn_throughput\": {churn_tput:.1},\n"));
    out.push_str(&format!(
        "  \"throughput_drop\": {:.6},\n",
        1.0 - churn_tput / quiescent_tput
    ));
    out.push_str(&format!("  \"p99_staleness_epochs\": {p99},\n"));
    out.push_str(&format!("  \"restart_ms\": {restart_ms:.3},\n"));
    out.push_str(&format!("  \"replayed_windows\": {},\n", resume.replayed_windows));
    out.push_str(&format!("  \"snapshot_bytes\": {},\n", resume.snapshot_bytes));
    out.push_str(&format!("  \"wal_bytes\": {}\n", resume.wal_bytes));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).expect("write serving report");
    eprintln!("wrote {path}");
}
