//! Compares a smoke-suite report against the committed baseline and fails
//! on wall-clock regressions — the perf gate CI runs after the smoke suite.
//!
//! ```text
//! bench-compare --baseline <path> --current <path>
//!               [--max-regression <factor>] [--min-delta <seconds>]
//!               [--max-quality-regression <fraction>]
//!               [--max-timing-regression <fraction>] [--summary <path>]
//! ```
//!
//! Two gates run over the reports:
//!
//! - **Wall-clock**: an experiment regresses when `current > factor *
//!   baseline` (default 2x) AND `current - baseline > min-delta` (default
//!   0.5 s — sub-second smoke runs double on runner noise alone).
//! - **Quality**: the `metrics` an experiment reported (φ/ρ/migration
//!   trajectories, see `spinner_bench::emit_metric`) are seeded and exactly
//!   reproducible, so they get a much tighter gate: a higher-is-better
//!   metric (`phi*`, `local_share*` — the message-locality share of the
//!   placement in effect, `availability*` — lookups answered during fault
//!   recovery) regresses when it drops more than the quality
//!   fraction (default 5%) below baseline; a lower-is-better one (`rho*`,
//!   `*migration*`, `*moved*`, `remote_records*` — the physical record
//!   traffic the broadcast fabric deduplicates) when it rises more than
//!   that above. Other metric names are reported but never gate.
//!
//! Quality metrics split into two tolerance classes. *Deterministic*
//! metrics (φ/ρ/migration/locality) are seeded and exactly reproducible, so
//! they keep the tight default. *Timing-derived* metrics
//! (`lookup_throughput*`, `p99_staleness*`) measure wall-clock behaviour of
//! concurrent readers and inherit runner noise no seed can remove — a 5%
//! gate flakes on an idle-core difference (observed: `lookup_throughput`
//! grazing the gate at -1.7% on identical code). They gate against
//! `--max-timing-regression` instead (default 25%).
//!
//! A markdown delta table goes to stdout and, with `--summary`, is appended
//! to the given file (pass `$GITHUB_STEP_SUMMARY` in CI). Exit code 1 on
//! any regression or failed experiment, 2 on usage/IO errors.

use spinner_bench::report::{parse_report, ExperimentOutcome};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    baseline: String,
    current: String,
    max_regression: f64,
    min_delta: f64,
    max_quality_regression: f64,
    max_timing_regression: f64,
    summary: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        baseline: String::new(),
        current: String::new(),
        max_regression: 2.0,
        min_delta: 0.5,
        max_quality_regression: 0.05,
        max_timing_regression: 0.25,
        summary: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => args.baseline = value(&mut it, "--baseline"),
            "--current" => args.current = value(&mut it, "--current"),
            "--max-regression" => {
                args.max_regression = value(&mut it, "--max-regression")
                    .parse()
                    .expect("numeric --max-regression")
            }
            "--min-delta" => {
                args.min_delta =
                    value(&mut it, "--min-delta").parse().expect("numeric --min-delta")
            }
            "--max-quality-regression" => {
                args.max_quality_regression = value(&mut it, "--max-quality-regression")
                    .parse()
                    .expect("numeric --max-quality-regression")
            }
            "--max-timing-regression" => {
                args.max_timing_regression = value(&mut it, "--max-timing-regression")
                    .parse()
                    .expect("numeric --max-timing-regression")
            }
            "--summary" => args.summary = Some(value(&mut it, "--summary")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.baseline.is_empty() || args.current.is_empty() {
        eprintln!(
            "usage: bench-compare --baseline <path> --current <path> \
             [--max-regression <factor>] [--min-delta <seconds>] \
             [--max-quality-regression <fraction>] \
             [--max-timing-regression <fraction>] [--summary <path>]"
        );
        std::process::exit(2);
    }
    args
}

fn load(path: &str) -> Vec<ExperimentOutcome> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_report(&text).unwrap_or_else(|| {
        eprintln!("{path} is not a bench report");
        std::process::exit(2);
    })
}

/// Which way a quality metric is allowed to move, inferred from its name.
enum Direction {
    /// `phi*` (edge locality), `local_share*` (worker-local message share
    /// under the placement in effect), `lookup_throughput*` (serving
    /// reads/sec), `availability*` (the share of lookups answered while a
    /// fault recovery was in flight), `fold_ratio*` (sender-side combiner
    /// folding) and `wire_compression*` (raw/compact frame-byte ratio) —
    /// dropping below baseline is a regression.
    HigherBetter,
    /// `rho*`, `*migration*`, `*moved*` (balance/movement cost),
    /// `remote_records*` (physical cross-worker fabric records — what the
    /// broadcast lane deduplicates), `wire_bytes*` / `bytes_per_record*`
    /// (encoded frame traffic on the serialising transport),
    /// `p99_staleness*` (routing epochs a served lookup lags behind head),
    /// `active_fraction*` (per-superstep compute cost of frontier-seeded
    /// windows), `retransmit_ratio*` (reliable-transport re-publishes per
    /// encoded frame) and `delivery_overhead*` (receive-side repair actions
    /// per frame) — rising above baseline is a regression.
    LowerBetter,
    /// Anything else: reported for the record, never gated.
    Informational,
}

fn direction(name: &str) -> Direction {
    // `fold_ratio*` and `wire_compression*` gate higher-is-better: both
    // measure achieved savings (records folded away, raw/compact byte
    // ratio), so a *drop* below baseline means the wire path regressed.
    if name.starts_with("phi")
        || name.starts_with("local_share")
        || name.starts_with("lookup_throughput")
        || name.starts_with("availability")
        || name.starts_with("fold_ratio")
        || name.starts_with("wire_compression")
    {
        Direction::HigherBetter
    } else if name.starts_with("rho")
        || name.starts_with("remote_records")
        || name.starts_with("wire_bytes")
        || name.starts_with("bytes_per_record")
        || name.starts_with("p99_staleness")
        || name.starts_with("active_fraction")
        || name.starts_with("retransmit_ratio")
        || name.starts_with("delivery_overhead")
        || name.contains("migration")
        || name.contains("moved")
    {
        Direction::LowerBetter
    } else {
        Direction::Informational
    }
}

/// Whether a metric is timing-derived (gates against the wider
/// `--max-timing-regression` tolerance) rather than seeded-deterministic.
/// Throughput and staleness percentiles come from racing real threads
/// against a wall clock, so identical code still jitters run to run.
fn is_timing(name: &str) -> bool {
    name.starts_with("lookup_throughput") || name.starts_with("p99_staleness")
}

/// Appends the quality-metric delta table (omitted when neither report
/// carries metrics) and returns the number of quality failures.
fn quality_table(
    baseline: &[ExperimentOutcome],
    current: &[ExperimentOutcome],
    tolerance: f64,
    timing_tolerance: f64,
    table: &mut String,
) -> usize {
    if baseline.iter().all(|o| o.metrics.is_empty())
        && current.iter().all(|o| o.metrics.is_empty())
    {
        return 0;
    }
    table.push_str("\n## Quality metrics (phi / rho / migration) vs baseline\n\n");
    table.push_str(&format!(
        "Regression gate: phi must not drop, and rho / migration fractions must \
         not rise, by more than {:.0}% of baseline. Those metrics are seeded \
         and thread-count-invariant, so any drift is a real behaviour change. \
         Timing-derived metrics (throughput, staleness percentiles) carry \
         runner noise and gate at {:.0}% instead.\n\n",
        100.0 * tolerance,
        100.0 * timing_tolerance
    ));
    table.push_str("| experiment | metric | baseline | current | delta | gate | status |\n");
    table.push_str("|---|---|---:|---:|---:|---:|---|\n");

    let mut failures = 0usize;
    for cur in current {
        let base = baseline.iter().find(|b| b.name == cur.name);
        for (name, cur_value) in &cur.metrics {
            let cur_value = *cur_value;
            let Some(base_value) = base.and_then(|b| b.metric(name)) else {
                table.push_str(&format!(
                    "| {} | {} | — | {:.4} | — | — | new (no baseline) |\n",
                    cur.name, name, cur_value
                ));
                continue;
            };
            let delta_pct = if base_value != 0.0 {
                100.0 * (cur_value - base_value) / base_value
            } else {
                0.0
            };
            let tol = if is_timing(name) { timing_tolerance } else { tolerance };
            let regressed = match direction(name) {
                Direction::HigherBetter => cur_value < base_value * (1.0 - tol),
                Direction::LowerBetter => cur_value > base_value * (1.0 + tol),
                Direction::Informational => false,
            };
            let gate = match direction(name) {
                Direction::Informational => "—".to_string(),
                _ => format!("{:.0}%", 100.0 * tol),
            };
            let status = if regressed {
                failures += 1;
                "REGRESSION"
            } else if matches!(direction(name), Direction::Informational) {
                "info"
            } else {
                "ok"
            };
            table.push_str(&format!(
                "| {} | {} | {:.4} | {:.4} | {:+.2}% | {} | {} |\n",
                cur.name, name, base_value, cur_value, delta_pct, gate, status
            ));
        }
        // Metrics that disappeared from an experiment still present in the
        // current report would otherwise silently shrink coverage.
        if let Some(base) = base {
            for (name, base_value) in &base.metrics {
                if cur.metric(name).is_none() {
                    failures += 1;
                    table.push_str(&format!(
                        "| {} | {} | {:.4} | — | — | — | MISSING |\n",
                        cur.name, name, base_value
                    ));
                }
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let args = parse_args();
    let baseline = load(&args.baseline);
    let current = load(&args.current);

    let mut table = String::new();
    table.push_str("## Smoke-suite wall-clock vs baseline\n\n");
    table.push_str(&format!(
        "Regression gate: fail when current > {:.1}x baseline and the difference \
         exceeds {:.1} s.\n\n",
        args.max_regression, args.min_delta
    ));
    table.push_str("| experiment | baseline (s) | current (s) | delta | status |\n");
    table.push_str("|---|---:|---:|---:|---|\n");

    let mut failures = 0usize;
    for cur in &current {
        let Some(base) = baseline.iter().find(|b| b.name == cur.name) else {
            table.push_str(&format!(
                "| {} | — | {:.3} | — | new (no baseline) |\n",
                cur.name, cur.seconds
            ));
            continue;
        };
        let delta_pct = if base.seconds > 0.0 {
            100.0 * (cur.seconds - base.seconds) / base.seconds
        } else {
            0.0
        };
        let status = if !cur.ok {
            failures += 1;
            "FAILED"
        } else if cur.seconds > args.max_regression * base.seconds
            && cur.seconds - base.seconds > args.min_delta
        {
            failures += 1;
            "REGRESSION"
        } else if delta_pct <= -10.0 {
            "faster"
        } else {
            "ok"
        };
        table.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:+.1}% | {} |\n",
            cur.name, base.seconds, cur.seconds, delta_pct, status
        ));
    }
    for base in &baseline {
        if !current.iter().any(|c| c.name == base.name) {
            failures += 1;
            table.push_str(&format!(
                "| {} | {:.3} | — | — | MISSING |\n",
                base.name, base.seconds
            ));
        }
    }

    failures += quality_table(
        &baseline,
        &current,
        args.max_quality_regression,
        args.max_timing_regression,
        &mut table,
    );

    println!("{table}");
    if let Some(path) = &args.summary {
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(path).unwrap_or_else(
                |e| {
                    eprintln!("cannot open summary {path}: {e}");
                    std::process::exit(2);
                },
            );
        writeln!(file, "{table}").expect("write summary");
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) regressed, failed, or went missing");
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, metrics: Vec<(String, f64)>) -> ExperimentOutcome {
        ExperimentOutcome { name: name.to_string(), seconds: 1.0, ok: true, metrics }
    }

    #[test]
    fn timing_metrics_are_classified() {
        assert!(is_timing("lookup_throughput"));
        assert!(is_timing("lookup_throughput_degraded"));
        assert!(is_timing("p99_staleness_epochs"));
        assert!(!is_timing("phi"));
        assert!(!is_timing("rho"));
        assert!(!is_timing("migration_fraction_w3"));
        assert!(!is_timing("active_fraction_w5"));
    }

    #[test]
    fn timing_graze_passes_wide_gate_but_deterministic_drift_fails_tight() {
        // The flake that motivated the split: lookup_throughput down 1.7%
        // on identical code must pass; a deterministic phi down 1.7% has no
        // noise excuse and must still trip the 5% gate only when it exceeds
        // it — and a 6% phi drop must fail while a 6% throughput drop is
        // inside the timing gate.
        let baseline = vec![outcome(
            "exp-serving",
            vec![("lookup_throughput".into(), 1000.0), ("phi".into(), 0.80)],
        )];

        let graze = vec![outcome(
            "exp-serving",
            vec![("lookup_throughput".into(), 983.0), ("phi".into(), 0.80)],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &graze, 0.05, 0.25, &mut table), 0);

        let phi_drop = vec![outcome(
            "exp-serving",
            vec![("lookup_throughput".into(), 1000.0), ("phi".into(), 0.75)],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &phi_drop, 0.05, 0.25, &mut table), 1);

        let throughput_drop = vec![outcome(
            "exp-serving",
            vec![("lookup_throughput".into(), 940.0), ("phi".into(), 0.80)],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &throughput_drop, 0.05, 0.25, &mut table), 0);

        let throughput_crash = vec![outcome(
            "exp-serving",
            vec![("lookup_throughput".into(), 700.0), ("phi".into(), 0.80)],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &throughput_crash, 0.05, 0.25, &mut table), 1);
    }

    #[test]
    fn transport_resilience_metrics_gate_in_the_right_direction() {
        // `retransmit_ratio*` / `delivery_overhead*` are costs (rising is a
        // regression); `availability*` is a guarantee (dropping is one).
        let baseline = vec![outcome(
            "exp-transport-chaos",
            vec![
                ("retransmit_ratio_chaos".into(), 0.010),
                ("delivery_overhead_chaos".into(), 0.020),
                ("availability_transport_recovery".into(), 1.0),
            ],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &baseline, 0.05, 0.25, &mut table), 0);

        let ratio_up = vec![outcome(
            "exp-transport-chaos",
            vec![
                ("retransmit_ratio_chaos".into(), 0.012),
                ("delivery_overhead_chaos".into(), 0.020),
                ("availability_transport_recovery".into(), 1.0),
            ],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &ratio_up, 0.05, 0.25, &mut table), 1);

        let overhead_up = vec![outcome(
            "exp-transport-chaos",
            vec![
                ("retransmit_ratio_chaos".into(), 0.010),
                ("delivery_overhead_chaos".into(), 0.030),
                ("availability_transport_recovery".into(), 1.0),
            ],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &overhead_up, 0.05, 0.25, &mut table), 1);

        let availability_down = vec![outcome(
            "exp-transport-chaos",
            vec![
                ("retransmit_ratio_chaos".into(), 0.010),
                ("delivery_overhead_chaos".into(), 0.020),
                ("availability_transport_recovery".into(), 0.90),
            ],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &availability_down, 0.05, 0.25, &mut table), 1);

        // Both costs dropping (a cleaner wire) is an improvement, not a gate
        // trip.
        let cleaner = vec![outcome(
            "exp-transport-chaos",
            vec![
                ("retransmit_ratio_chaos".into(), 0.0),
                ("delivery_overhead_chaos".into(), 0.0),
                ("availability_transport_recovery".into(), 1.0),
            ],
        )];
        let mut table = String::new();
        assert_eq!(quality_table(&baseline, &cleaner, 0.05, 0.25, &mut table), 0);
    }
}
