//! **Chaos harness** — the robustness companion to `exp-serving`: a
//! scripted fault schedule drives a persistent [`ServingNode`] through
//! process kills at every storage-op index, a death mid-compaction,
//! single-bit corruption sweeps over the snapshot and WAL, a worker loss
//! under live churn with lookup threads hammering throughout, and a
//! degraded-persistence stretch where the store keeps failing while the
//! node keeps serving.
//!
//! Expected shape: every kill point resumes bit-identical to the
//! uninterrupted run; every flipped bit surfaces as a typed
//! [`PersistError::Corrupt`] or a clean WAL truncation — never a panic,
//! never silently wrong labels; worker-loss recovery re-places about the
//! lost fraction of the graph (gated: moved < 2x the lost vertex count,
//! orders of magnitude below a scratch repartition) and re-converges φ/ρ to
//! the streaming gates within five windows; and lookup availability stays
//! at 100% through all of it. The binary **asserts** these criteria and
//! exits non-zero on violation, so the CI smoke suite doubles as the
//! fault-tolerance gate.
//!
//! Writes `bench-out/CHAOS.json` (override with `SPINNER_CHAOS_JSON`) and
//! emits `METRIC recovery_migrations_fraction` (lower-is-better),
//! `METRIC availability_during_recovery` (higher-is-better) and
//! `METRIC phi_after_recovery` (higher-is-better) for `bench-compare`.

use spinner_bench::{emit_metric, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig};
use spinner_pregel::WorkerId;
use spinner_serving::{
    decode_state, Fault, FaultPlan, FaultyStorage, Health, MemStorage, PersistError,
    RetryPolicy, RoutingReader, ServingNode, StoreFile,
};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lookup threads hammering the node through the live-fault phases.
const READERS: usize = 4;
/// Stream windows in the kill sweep (ops swept: 2 store-creation ops plus
/// one WAL append per window).
const SWEEP_WINDOWS: usize = 3;
/// Torn bytes a killed append leaves on the medium (exercises tail
/// truncation at every append kill point).
const TORN_BYTES: usize = 7;
/// Single-bit flips tried per file in the corruption sweep.
const FLIPS: usize = 48;
/// Churn windows after the worker loss; φ/ρ must be back inside the
/// streaming gates within these.
const RECOVERY_WINDOWS: usize = 5;
/// The worker whose state phase D loses.
const LOST_WORKER: WorkerId = 3;
/// Balance slack over the capacity constant `c` (mirrors exp-stream).
const RHO_SLACK: f64 = 0.15;
/// φ is allowed to dip at most this far below its pre-loss value once the
/// recovery windows have run.
const PHI_SLACK: f64 = 0.05;

/// Fail-fast retry policy: kills are terminal, so retries only burn time.
fn no_retry() -> RetryPolicy {
    RetryPolicy { attempts: 1, base_backoff: Duration::ZERO, max_degraded_windows: 0 }
}

/// What the lookup threads saw while a fault phase ran.
struct HammerStats {
    attempts: u64,
    hits: u64,
    /// `staleness_buckets[s]` = hits whose epoch was `s` behind head.
    staleness_buckets: [u64; 8],
}

/// Hammers cloned readers until `stop`, tallying availability (a miss on a
/// vertex the table has published is an availability drop) and staleness.
fn hammer(reader: &RoutingReader, stop: &Arc<AtomicBool>) -> HammerStats {
    let mut handles = Vec::new();
    for t in 0..READERS {
        let reader = reader.clone();
        let stop = Arc::clone(stop);
        handles.push(std::thread::spawn(move || {
            let mut stats = HammerStats { attempts: 0, hits: 0, staleness_buckets: [0; 8] };
            let mut rng = 0x2545_F491_4F6C_DD1Du64 ^ ((t as u64) << 48);
            while !stop.load(Ordering::Relaxed) {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let len = reader.len();
                if len == 0 {
                    continue;
                }
                let v = (rng >> 33) as u32 % len as u32;
                stats.attempts += 1;
                if let Some(hit) = reader.lookup(v) {
                    stats.hits += 1;
                    let staleness = reader.head().saturating_sub(hit.epoch()) as usize;
                    stats.staleness_buckets[staleness.min(7)] += 1;
                }
            }
            stats
        }));
    }
    let mut merged = HammerStats { attempts: 0, hits: 0, staleness_buckets: [0; 8] };
    for h in handles {
        let s = h.join().expect("reader thread");
        merged.attempts += s.attempts;
        merged.hits += s.hits;
        for (m, b) in merged.staleness_buckets.iter_mut().zip(s.staleness_buckets) {
            *m += b;
        }
    }
    merged
}

/// p99 of the staleness histogram, in epochs.
fn p99_staleness(stats: &HammerStats) -> u64 {
    let total: u64 = stats.staleness_buckets.iter().sum();
    let threshold = (total as f64 * 0.99).ceil() as u64;
    let mut cumulative = 0;
    for (s, &count) in stats.staleness_buckets.iter().enumerate() {
        cumulative += count;
        if cumulative >= threshold {
            return s as u64;
        }
    }
    7
}

fn flipped(bytes: &[u8], bit: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    let bit = (bit % (out.len() as u64 * 8)) as usize;
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    // Label-driven placement feedback keeps the serving placement aligned
    // with computed labels, so a worker-loss recovery (which re-places the
    // whole graph by label) only moves what the loss actually touched.
    let mut cfg = SpinnerConfig::new(k).with_seed(42).with_placement_feedback(0.5);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = 16;
    let rho_bound = cfg.c + RHO_SLACK;

    let mut deltas = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: (SWEEP_WINDOWS + 1 + RECOVERY_WINDOWS + 2) as u32,
            add_fraction: 0.010,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 99,
        },
    );
    let mut next_event = || StreamEvent::Delta(deltas.next().expect("delta window"));

    eprintln!("bootstrap partitioning (k={k})...");
    let state0 = StreamSession::new(base, cfg.clone()).state();
    let mut violations: Vec<String> = Vec::new();

    // ---- phase A: kill the storage at every op index; each death point
    // must resume and finish bit-identical to the uninterrupted run.
    let sweep_events: Vec<StreamEvent> = (0..SWEEP_WINDOWS).map(|_| next_event()).collect();
    let mut reference = StreamSession::from_state(state0.clone());
    for event in &sweep_events {
        reference.apply(event.clone());
    }
    let total_ops = 2 + SWEEP_WINDOWS as u64;
    let mut identical_resumes = 0usize;
    for kill_op in 0..total_ops {
        let disk = MemStorage::new();
        let plan = FaultPlan::new().fail(kill_op, Fault::Kill { keep: TORN_BYTES });
        let mut durable = 0usize;
        if let Ok(node) = ServingNode::with_storage(
            StreamSession::from_state(state0.clone()),
            Box::new(FaultyStorage::new(disk.clone(), plan)),
        ) {
            let mut node = node.with_retry_policy(no_retry());
            for event in &sweep_events {
                match node.ingest(event.clone()) {
                    Ok(rep) if rep.health() == Health::Healthy => durable += 1,
                    _ => break, // storage dead — the process dies here
                }
            }
        }
        let (mut node, start) = match ServingNode::resume_from_storage(Box::new(disk.clone())) {
            Ok((node, stats)) => {
                if stats.replayed_windows != durable {
                    violations.push(format!(
                        "kill at op {kill_op}: resume replayed {} windows, {durable} were \
                         acknowledged durable",
                        stats.replayed_windows
                    ));
                }
                (node, durable)
            }
            Err(_) => {
                if kill_op != 0 {
                    violations.push(format!(
                        "kill at op {kill_op}: store unreadable though the snapshot landed"
                    ));
                }
                // Death before the bootstrap snapshot: recreate from scratch.
                let node = ServingNode::with_storage(
                    StreamSession::from_state(state0.clone()),
                    Box::new(disk.clone()),
                )
                .expect("clean medium");
                (node, 0)
            }
        };
        for event in &sweep_events[start..] {
            node.ingest(event.clone()).expect("ingest after resume");
        }
        if node.session().labels() == reference.labels()
            && node.session().placement().as_slice() == reference.placement().as_slice()
        {
            identical_resumes += 1;
        } else {
            violations.push(format!("kill at op {kill_op}: resumed run diverged"));
        }
        eprintln!(
            "kill op {kill_op}: {durable} durable windows, resumed + finished {}",
            if node.session().labels() == reference.labels() {
                "bit-identical"
            } else {
                "DIVERGED"
            }
        );
    }

    // ---- phase B: death between the compaction's snapshot swap and its
    // WAL truncation — the stale log must be skipped, not replayed twice.
    let midcompact_ok = {
        let disk = MemStorage::new();
        // Ops: create = 0,1; two appends = 2,3; compact = write_atomic 4,
        // truncate 5 (killed).
        let plan = FaultPlan::kill_at(5);
        let mut node = ServingNode::with_storage(
            StreamSession::from_state(state0.clone()),
            Box::new(FaultyStorage::new(disk.clone(), plan)),
        )
        .expect("create store")
        .with_retry_policy(no_retry());
        node.ingest(sweep_events[0].clone()).expect("window 1");
        node.ingest(sweep_events[1].clone()).expect("window 2");
        let labels = node.session().labels().to_vec();
        let died = node.compact().is_err();
        drop(node);
        let (resumed, stats) =
            ServingNode::resume_from_storage(Box::new(disk)).expect("resume past compact");
        let ok = died
            && stats.replayed_windows == 0
            && stats.skipped_windows == 2
            && resumed.session().labels() == labels.as_slice();
        if !ok {
            violations.push(format!(
                "mid-compact kill: died={died}, replayed={}, skipped={}, labels \
                 identical={}",
                stats.replayed_windows,
                stats.skipped_windows,
                resumed.session().labels() == labels.as_slice()
            ));
        }
        eprintln!(
            "mid-compact kill: skipped {} stale records, resumed {}",
            stats.skipped_windows,
            if ok { "bit-identical" } else { "WRONG" }
        );
        ok
    };

    // ---- phase C: flip single bits across the snapshot and the WAL; every
    // flip must surface as a typed error or a clean truncation.
    let (snapshot_bytes, wal_bytes, prefix_labels) = {
        let disk = MemStorage::new();
        let mut node = ServingNode::with_storage(
            StreamSession::from_state(state0.clone()),
            Box::new(disk.clone()),
        )
        .expect("create store");
        let mut prefix_labels = vec![node.session().labels().to_vec()];
        node.ingest(sweep_events[0].clone()).expect("window 1");
        prefix_labels.push(node.session().labels().to_vec());
        node.ingest(sweep_events[1].clone()).expect("window 2");
        prefix_labels.push(node.session().labels().to_vec());
        (
            disk.dump(StoreFile::Snapshot).expect("snapshot"),
            disk.dump(StoreFile::Wal).expect("wal"),
            prefix_labels,
        )
    };
    let mut snapshot_flips_detected = 0usize;
    for i in 0..FLIPS {
        let bit = (i as u64 * 8 * snapshot_bytes.len() as u64) / FLIPS as u64 + 3;
        let bad = flipped(&snapshot_bytes, bit);
        let disk = MemStorage::new();
        disk.plant(StoreFile::Snapshot, bad.clone());
        disk.plant(StoreFile::Wal, wal_bytes.clone());
        let typed = decode_state(&bad).is_err()
            && matches!(
                ServingNode::resume_from_storage(Box::new(disk)),
                Err(PersistError::Corrupt(_))
            );
        if typed {
            snapshot_flips_detected += 1;
        } else {
            violations.push(format!("snapshot bit {bit}: flip not surfaced as Corrupt"));
        }
    }
    let mut wal_flips_truncated = 0usize;
    for i in 0..FLIPS {
        let bit = (i as u64 * 8 * wal_bytes.len() as u64) / FLIPS as u64 + 5;
        let disk = MemStorage::new();
        disk.plant(StoreFile::Snapshot, snapshot_bytes.clone());
        disk.plant(StoreFile::Wal, flipped(&wal_bytes, bit));
        match ServingNode::resume_from_storage(Box::new(disk)) {
            Ok((node, stats)) => {
                let clean = stats.truncated_tail
                    && stats.replayed_windows < 2
                    && node.session().labels()
                        == prefix_labels[stats.replayed_windows].as_slice();
                if clean {
                    wal_flips_truncated += 1;
                } else {
                    violations.push(format!(
                        "wal bit {bit}: resume served a non-prefix state (replayed {})",
                        stats.replayed_windows
                    ));
                }
            }
            Err(e) => violations.push(format!("wal bit {bit}: resume errored: {e}")),
        }
    }
    eprintln!(
        "corruption sweep: {snapshot_flips_detected}/{FLIPS} snapshot flips typed, \
         {wal_flips_truncated}/{FLIPS} wal flips cleanly truncated"
    );

    // ---- phase D: worker loss under live churn, lookup threads hammering
    // throughout. Recovery must stay scoped and availability must not drop.
    let disk = MemStorage::new();
    let mut node = ServingNode::with_storage(
        StreamSession::from_state(state0.clone()),
        Box::new(disk.clone()),
    )
    .expect("create store");
    let stop = Arc::new(AtomicBool::new(false));
    let reader = node.reader();
    let readers = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || hammer(&reader, &stop))
    };
    let pre = node.ingest(next_event()).expect("pre-loss churn window");
    let phi_before = pre.report().phi();
    let hosted =
        node.session().placement().as_slice().iter().filter(|&&w| w == LOST_WORKER).count()
            as u64;
    let labels_before = node.session().labels().to_vec();
    let loss = node.report_worker_loss(LOST_WORKER).expect("worker loss recovery");
    let lost = loss.report().lost_vertices();
    // Recovery cost = vertices whose *partition label* changed across the
    // recovery window (the thing a scratch repartition maximises); the
    // balanced by-label re-pack may shuffle more worker slots than this.
    let moved = labels_before
        .iter()
        .zip(node.session().labels())
        .filter(|&(&old, &new)| old != new)
        .count() as u64;
    let mut phi_after = loss.report().phi();
    let mut recovered_in = None;
    for w in 1..=RECOVERY_WINDOWS {
        let rep = node.ingest(next_event()).expect("post-loss churn window");
        phi_after = rep.report().phi();
        let rho = rep.report().rho();
        if recovered_in.is_none() && phi_after >= phi_before - PHI_SLACK && rho <= rho_bound {
            recovered_in = Some(w);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let churn_stats = readers.join().expect("reader pool");
    let availability = if churn_stats.attempts == 0 {
        0.0
    } else {
        churn_stats.hits as f64 / churn_stats.attempts as f64
    };
    let p99 = p99_staleness(&churn_stats);
    eprintln!(
        "worker loss: {lost} vertices lost ({hosted} hosted), {moved} labels migrated, \
         phi {phi_before:.3} -> {phi_after:.3}, availability {availability:.6}, \
         p99 staleness {p99}"
    );

    if lost != hosted || lost == 0 {
        violations.push(format!(
            "worker loss recovered {lost} vertices but worker {LOST_WORKER} hosted {hosted}"
        ));
    }
    if moved >= 2 * lost {
        violations.push(format!(
            "recovery migrated {moved} labels for {lost} lost vertices (want < 2x — a \
             scratch repartition would move ~{})",
            labels_before.len()
        ));
    }
    match recovered_in {
        Some(w) => eprintln!("phi/rho back inside streaming gates {w} windows after loss"),
        None => violations.push(format!(
            "phi/rho not back inside gates within {RECOVERY_WINDOWS} windows of the loss \
             (phi {phi_after:.3} vs pre-loss {phi_before:.3}, rho bound {rho_bound:.3})"
        )),
    }
    if churn_stats.hits != churn_stats.attempts || churn_stats.attempts == 0 {
        violations.push(format!(
            "availability dropped during recovery: {}/{} lookups answered",
            churn_stats.hits, churn_stats.attempts
        ));
    }
    if p99 > 1 {
        violations
            .push(format!("p99 lookup staleness {p99} epochs during recovery (want <= 1)"));
    }

    // ---- phase E: persistence goes dark mid-stream; the node must degrade,
    // keep serving, then re-checkpoint its way back to Healthy — and the
    // whole history must land durably once storage recovers.
    let degraded_ok = {
        let disk = MemStorage::new();
        // Ops: create 0,1; the first post-bootstrap append (op 2) fails both
        // attempts (ops 2,3) -> Degraded; the next ingest re-checkpoints
        // clean and heals.
        let plan = FaultPlan::new().fail(2, Fault::Full).fail(3, Fault::Full);
        let mut node = ServingNode::with_storage(
            StreamSession::from_state(state0.clone()),
            Box::new(FaultyStorage::new(disk.clone(), plan)),
        )
        .expect("create store")
        .with_retry_policy(RetryPolicy {
            attempts: 2,
            base_backoff: Duration::ZERO,
            max_degraded_windows: 8,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let reader = node.reader();
        let readers = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || hammer(&reader, &stop))
        };
        let degraded = node.ingest(next_event()).expect("ingest into dark storage");
        let healed = node.ingest(next_event()).expect("ingest heals");
        stop.store(true, Ordering::Relaxed);
        let stats = readers.join().expect("reader pool");
        drop(node);
        let (resumed, _) = ServingNode::resume_from_storage(Box::new(disk)).expect("resume");
        let ok = degraded.health() == Health::Degraded
            && healed.health() == Health::Healthy
            && stats.hits == stats.attempts
            && stats.hits > 0
            && p99_staleness(&stats) <= 1
            && resumed.session().windows().len() == 3;
        if !ok {
            violations.push(format!(
                "degraded serving: health {:?} -> {:?}, {}/{} lookups, p99 {}, resumed \
                 {} windows (want 3)",
                degraded.health(),
                healed.health(),
                stats.hits,
                stats.attempts,
                p99_staleness(&stats),
                resumed.session().windows().len()
            ));
        }
        eprintln!(
            "degraded stretch: {} lookups served while persistence was dark, healed by \
             re-checkpoint, resume sees {} windows",
            stats.hits,
            resumed.session().windows().len()
        );
        ok
    };

    // ---- report ----
    let migration_fraction = moved as f64 / labels_before.len().max(1) as f64;
    let mut t = Table::new(format!(
        "Chaos harness: kill sweep, corruption, worker loss, degraded serving \
         (Tuenti analogue, k={k})"
    ))
    .header(["phase", "checks", "outcome"]);
    t.row([
        "kill sweep".to_string(),
        format!("{total_ops} kill points"),
        format!("{identical_resumes}/{total_ops} bit-identical"),
    ]);
    t.row([
        "mid-compact kill".to_string(),
        "stale WAL skip".to_string(),
        if midcompact_ok { "ok" } else { "FAILED" }.to_string(),
    ]);
    t.row([
        "corruption".to_string(),
        format!("{} bit flips", 2 * FLIPS),
        format!("{snapshot_flips_detected} typed + {wal_flips_truncated} truncated"),
    ]);
    t.row([
        "worker loss".to_string(),
        format!("{lost} lost, churn x{RECOVERY_WINDOWS}"),
        format!("moved {moved}, availability {availability:.4}"),
    ]);
    t.row([
        "degraded".to_string(),
        "serve without store".to_string(),
        if degraded_ok { "ok" } else { "FAILED" }.to_string(),
    ]);
    println!("{t}");

    write_json(
        identical_resumes,
        total_ops as usize,
        snapshot_flips_detected,
        wal_flips_truncated,
        lost,
        moved,
        migration_fraction,
        availability,
        phi_before,
        phi_after,
        recovered_in,
    );

    emit_metric("recovery_migrations_fraction", migration_fraction);
    emit_metric("availability_during_recovery", availability);
    emit_metric("phi_after_recovery", phi_after);

    if violations.is_empty() {
        println!(
            "chaos gates hold: {total_ops} kill points bit-identical, {} flips contained, \
             loss recovery moved {moved} < 2x{lost}, availability {availability:.4}",
            2 * FLIPS
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    identical_resumes: usize,
    kill_points: usize,
    snapshot_flips: usize,
    wal_flips: usize,
    lost: u64,
    moved: u64,
    migration_fraction: f64,
    availability: f64,
    phi_before: f64,
    phi_after: f64,
    recovered_in: Option<usize>,
) {
    let path = std::env::var("SPINNER_CHAOS_JSON")
        .unwrap_or_else(|_| "bench-out/CHAOS.json".to_string());
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-chaos\",\n");
    out.push_str(&format!("  \"kill_points\": {kill_points},\n"));
    out.push_str(&format!("  \"bit_identical_resumes\": {identical_resumes},\n"));
    out.push_str(&format!("  \"snapshot_flips_typed\": {snapshot_flips},\n"));
    out.push_str(&format!("  \"wal_flips_truncated\": {wal_flips},\n"));
    out.push_str(&format!("  \"lost_vertices\": {lost},\n"));
    out.push_str(&format!("  \"recovery_moved\": {moved},\n"));
    out.push_str(&format!("  \"recovery_migrations_fraction\": {migration_fraction:.6},\n"));
    out.push_str(&format!("  \"availability_during_recovery\": {availability:.6},\n"));
    out.push_str(&format!("  \"phi_before_loss\": {phi_before:.6},\n"));
    out.push_str(&format!("  \"phi_after_recovery\": {phi_after:.6},\n"));
    out.push_str(&format!(
        "  \"recovered_in_windows\": {}\n",
        recovered_in.map_or("null".to_string(), |w| w.to_string())
    ));
    out.push_str("}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).expect("write chaos report");
    eprintln!("wrote {path}");
}
