//! **Streaming dynamic-graph trajectory** — the continuous extension of
//! Figs. 7–8: a [`StreamSession`] holds engine and partition state warm
//! across a stream of delta windows (edge churn + vertex arrivals, with a
//! mid-stream elastic grow and shrink), re-converging incrementally after
//! each window; every window is also repartitioned from scratch as the
//! baseline.
//!
//! Expected shape: per-window migration fraction stays far below the
//! from-scratch baseline (the paper's 8–11% vs 95–98% at one-shot scale),
//! ρ stays within the configured balance slack throughout, and the warm
//! engine performs zero fabric reallocations from window 2 on. The binary
//! **asserts** these acceptance criteria and exits non-zero on violation,
//! so the CI smoke suite doubles as the streaming quality gate.
//!
//! Writes a per-window trajectory JSON (default
//! `bench-out/STREAM_TRAJECTORY.json`, override with
//! `SPINNER_STREAM_JSON`) and emits deterministic `METRIC` lines for the
//! φ/ρ regression tracking in `bench-compare`.
//!
//! A second, frontier-enabled arm replays the same stream with
//! `frontier_windows = true`: delta windows seed only the delta-touched
//! vertices and their direct neighbours as active, so superstep cost
//! scales with churn rather than |V|. The Tuenti analogue oscillates near
//! its equilibrium (~20-26% of labels move every window at smoke scale),
//! so on *that* stream the active fraction tracks genuine churn, not
//! scheduler overhead — the "active fraction << 1" acceptance gate
//! therefore runs on a dedicated converged probe arm: a planted-partition
//! graph warmed through a couple of delta windows, then hit with one
//! small delta whose cost must stay far below a full sweep. The arm also
//! emits `*_frontier` quality metrics plus the `active_fraction_*` cost
//! series for the regression gate.

use spinner_bench::{emit_metric, f2, f3, pct1, scale_from_env, threads_from_env, Table};
use spinner_core::{partition, SpinnerConfig, StreamEvent, StreamSession, WindowReport};
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig, GraphDelta, Scale};
use spinner_metrics::{partitioning_difference, Trajectory, WindowPoint};
use std::process::ExitCode;

/// Delta windows in the stream (the resize events ride on two of them).
const DELTA_WINDOWS: u32 = 10;
/// Balance slack over the capacity constant `c` tolerated across windows
/// (tiny analogues are noisier than the paper's full graphs).
const RHO_SLACK: f64 = 0.15;
/// The converged-arm probe window (a handful of edges) must compute well
/// under this fraction of |V| per superstep — the "cost scales with churn,
/// not |V|" acceptance gate. Activity spreads only to the probe's frontier
/// and the neighbours of actual label changes, so a settled partition sits
/// far below this.
const ACTIVE_FRACTION_BOUND: f64 = 0.5;
/// Edges in the synthetic probe delta.
const PROBE_EDGES: u32 = 8;
/// The frontier arm restarts fewer vertices than a dense window, so its
/// labels drift from the dense arm's — but its final locality must stay in
/// the same regime.
const PHI_PARITY: f64 = 0.9;

struct WindowRow {
    report: WindowReport,
    event: String,
    migration_scratch: f64,
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    // Fixed logical-worker count: the §IV-A4 async load view makes results
    // depend on it, so pinning it keeps every METRIC machine-independent.
    cfg.num_workers = 16;

    let stream_cfg = DeltaStreamConfig {
        windows: DELTA_WINDOWS,
        add_fraction: 0.010,
        remove_fraction: 0.004,
        vertex_fraction: 0.002,
        attach_degree: 3,
        triadic_fraction: 0.8,
        hub_bias: 0.5,
        seed: 99,
    };
    let mut deltas = DeltaStream::new(base.clone(), stream_cfg);

    eprintln!("bootstrap partitioning (k={k})...");
    let mut session = StreamSession::new(base, cfg.clone());
    let bootstrap = session.last().clone();
    eprintln!(
        "bootstrap: phi={:.3} rho={:.3} iters={}",
        bootstrap.phi(),
        bootstrap.rho(),
        bootstrap.iterations()
    );
    let mut rows = vec![WindowRow {
        report: bootstrap,
        event: "bootstrap".to_string(),
        migration_scratch: 1.0,
    }];

    // The stream: 10 delta windows with an elastic grow after the 4th and a
    // shrink back after the 7th — graph and cluster changes interleaved.
    let mut events: Vec<(String, StreamEvent)> = Vec::new();
    for i in 1..=DELTA_WINDOWS {
        events.push(("delta".to_string(), StreamEvent::Delta(deltas.next().expect("window"))));
        if i == 4 {
            events.push((format!("resize {k}->{}", k + 4), StreamEvent::Resize { k: k + 4 }));
        }
        if i == 7 {
            events.push((format!("resize {}->{k}", k + 4), StreamEvent::Resize { k }));
        }
    }

    for (event, stream_event) in &events {
        let previous = session.labels().to_vec();
        let report = session.apply(stream_event.clone()).clone();
        // From-scratch baseline on the same post-delta graph and k.
        let scratch_cfg = session.config().clone().with_seed(4242 + report.window() as u64);
        let scratch = partition(session.undirected(), &scratch_cfg);
        let shared = previous.len().min(scratch.labels.len());
        let migration_scratch =
            partitioning_difference(&previous[..shared], &scratch.labels[..shared]);
        eprintln!(
            "window {:>2} [{event}]: phi={:.3} rho={:.3} moved {:.1}% (scratch {:.1}%) \
             iters={} reallocs={}",
            report.window(),
            report.phi(),
            report.rho(),
            100.0 * report.migration_fraction(),
            100.0 * migration_scratch,
            report.iterations(),
            report.fabric_reallocs()
        );
        rows.push(WindowRow { report, event: event.clone(), migration_scratch });
    }

    // ---- frontier arm: same stream, delta windows seeded from the delta
    // frontier instead of restarting the whole graph. Labels may differ
    // from the dense arm (different restart set, same algorithm), so the
    // arm is quality-gated rather than bit-compared; the scan-mode
    // bit-identity lives in the scheduler_invariance tests. ----
    let mut frontier_cfg = cfg.clone();
    frontier_cfg.frontier_windows = true;
    let mut frontier = StreamSession::new(Dataset::Tuenti.build_directed(scale), frontier_cfg);
    let mut frontier_rows: Vec<(String, WindowReport)> = Vec::new();
    for (event, stream_event) in &events {
        let report = frontier.apply(stream_event.clone()).clone();
        eprintln!(
            "frontier window {:>2} [{event}]: phi={:.3} rho={:.3} moved {:.1}% \
             active={:.3} iters={}",
            report.window(),
            report.phi(),
            report.rho(),
            100.0 * report.migration_fraction(),
            report.active_fraction(),
            report.iterations()
        );
        frontier_rows.push((event.clone(), report));
    }

    let trajectory: Trajectory = rows
        .iter()
        .map(|r| WindowPoint {
            window: r.report.window(),
            phi: r.report.phi(),
            rho: r.report.rho(),
            migration_fraction: r.report.migration_fraction(),
            local_share: r.report.local_share(),
            lost_fraction: r.report.lost_vertices() as f64
                / f64::from(r.report.num_vertices().max(1)),
            active_fraction: r.report.active_fraction(),
            retransmits: r.report.retransmits(),
        })
        .collect();

    let mut t = Table::new(format!(
        "Streaming trajectory: {DELTA_WINDOWS} delta windows + elastic grow/shrink \
         (Tuenti analogue, k={k})"
    ))
    .header(["window", "event", "k", "phi", "rho", "moved", "moved scratch", "reallocs"]);
    for r in &rows {
        t.row([
            r.report.window().to_string(),
            r.event.clone(),
            r.report.k().to_string(),
            f2(r.report.phi()),
            f3(r.report.rho()),
            pct1(100.0 * r.report.migration_fraction()),
            pct1(100.0 * r.migration_scratch),
            r.report.fabric_reallocs().to_string(),
        ]);
    }
    println!("{t}");

    write_json(&rows, &trajectory, scale, k);

    emit_metric("phi_final", trajectory.last().expect("windows").phi);
    emit_metric("phi_min", trajectory.min_phi());
    emit_metric("rho_max", trajectory.max_rho());
    emit_metric("migration_mean", trajectory.mean_migration_fraction());
    // Locality accounting (already counted per window by the engine): the
    // stream's total local/remote split as *logical* deliveries — lane-
    // independent, so these stay comparable whether the broadcast fabric
    // is on or off — plus the physical cross-worker records the broadcast
    // lane actually shipped (gated lower-is-better by bench-compare; the
    // unicast/broadcast comparison itself lives in exp-broadcast).
    // These run under the default hash placement — the label-placement
    // counterpart (and its gate) lives in exp-locality.
    let sent_local: u64 = rows.iter().map(|r| r.report.sent_local()).sum();
    let sent_remote: u64 = rows.iter().map(|r| r.report.sent_remote()).sum();
    let remote_records: u64 = rows.iter().map(|r| r.report.sent_remote_records()).sum();
    emit_metric("sent_local", sent_local as f64);
    emit_metric("sent_remote", sent_remote as f64);
    emit_metric("remote_records", remote_records as f64);

    // Frontier-arm quality (deterministic, gated through the same phi/rho/
    // migration name classes) and the active-set cost series. The active
    // fraction aggregates run over *delta* windows only: resize windows
    // restart dense by design (a new k invalidates every score), and the
    // bootstrap necessarily sweeps everything.
    let frontier_traj: Trajectory = frontier_rows
        .iter()
        .map(|(_, w)| WindowPoint {
            window: w.window(),
            phi: w.phi(),
            rho: w.rho(),
            migration_fraction: w.migration_fraction(),
            local_share: w.local_share(),
            lost_fraction: 0.0,
            active_fraction: w.active_fraction(),
            retransmits: w.retransmits(),
        })
        .collect();
    let frontier_deltas: Vec<&WindowReport> =
        frontier_rows.iter().filter(|(event, _)| event == "delta").map(|(_, w)| w).collect();
    let active_mean = frontier_deltas.iter().map(|w| w.active_fraction()).sum::<f64>()
        / frontier_deltas.len().max(1) as f64;
    let active_max = frontier_deltas.iter().map(|w| w.active_fraction()).fold(0.0f64, f64::max);
    emit_metric("phi_final_frontier", frontier_traj.last().expect("windows").phi);
    emit_metric("rho_max_frontier", frontier_traj.max_rho());
    emit_metric("migration_mean_frontier", frontier_traj.mean_migration_fraction());
    emit_metric("active_fraction_mean", active_mean);
    emit_metric("active_fraction_max", active_max);

    // ---- acceptance criteria (self-gating: CI runs this in the smoke
    // suite, so a violation fails the build) ----
    let mut violations: Vec<String> = Vec::new();
    for r in &rows[1..] {
        if r.report.migration_fraction() >= r.migration_scratch {
            violations.push(format!(
                "window {} [{}]: adaptive moved {:.3} >= scratch {:.3}",
                r.report.window(),
                r.event,
                r.report.migration_fraction(),
                r.migration_scratch
            ));
        }
        let rho_bound = cfg.c + RHO_SLACK;
        if r.report.rho() > rho_bound {
            violations.push(format!(
                "window {} [{}]: rho {:.3} exceeds balance slack {:.3}",
                r.report.window(),
                r.event,
                r.report.rho(),
                rho_bound
            ));
        }
    }
    for r in rows.iter().filter(|r| r.report.window() >= 2) {
        if r.report.fabric_reallocs() != 0 {
            violations.push(format!(
                "window {} [{}]: {} steady-state fabric reallocations (want 0)",
                r.report.window(),
                r.event,
                r.report.fabric_reallocs()
            ));
        }
    }
    // Frontier arm: every delta window must cost far less than a full
    // sweep (that is the point of the active set), quality must stay in
    // the dense arm's regime, and the warm engine must stay allocation-
    // free there too.
    for (event, w) in frontier_rows.iter().filter(|(_, w)| w.window() >= 2) {
        if w.fabric_reallocs() != 0 {
            violations.push(format!(
                "frontier window {} [{}]: {} steady-state fabric reallocations (want 0)",
                w.window(),
                event,
                w.fabric_reallocs()
            ));
        }
        if w.rho() > cfg.c + RHO_SLACK {
            violations.push(format!(
                "frontier window {} [{}]: rho {:.3} exceeds balance slack {:.3}",
                w.window(),
                event,
                w.rho(),
                cfg.c + RHO_SLACK
            ));
        }
    }
    let dense_final_phi = rows.last().expect("windows").report.phi();
    let frontier_final_phi = frontier_rows.last().expect("windows").1.phi();
    if frontier_final_phi < PHI_PARITY * dense_final_phi {
        violations.push(format!(
            "frontier final phi {frontier_final_phi:.3} below {PHI_PARITY} x dense \
             {dense_final_phi:.3}"
        ));
    }
    // The active-set probe: on the Tuenti analogue even an 8-edge delta
    // cascades (near-tie labels keep ~20% of the graph moving every
    // window), so the probe arm uses a community-structured graph the
    // partitioner actually settles on, warms it through two realistic
    // delta windows, and then measures a small delta. Its churn is tiny by
    // construction, so its cost exposes exactly what the frontier driver
    // saves.
    let probe_report = converged_probe(threads_from_env());
    eprintln!(
        "probe window {}: active={:.4} moved={:.3} supersteps={}",
        probe_report.window(),
        probe_report.active_fraction(),
        probe_report.migration_fraction(),
        probe_report.supersteps()
    );
    emit_metric("active_fraction_probe", probe_report.active_fraction());
    if probe_report.active_fraction() >= ACTIVE_FRACTION_BOUND {
        violations.push(format!(
            "probe window: active fraction {:.3} not << 1 (bound {}) — the \
             frontier driver is sweeping the graph for a {}-edge delta",
            probe_report.active_fraction(),
            ACTIVE_FRACTION_BOUND,
            PROBE_EDGES
        ));
    }
    if violations.is_empty() {
        println!(
            "all {} windows within gates: migration below scratch, rho <= {:.2}, \
             zero fabric reallocations from window 2",
            rows.len(),
            cfg.c + RHO_SLACK
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

/// The converged probe arm for the active-set gate: a planted-partition
/// graph (strong communities, so the partitioner settles instead of
/// oscillating like the Tuenti analogue), frontier windows on, warmed
/// through two realistic delta windows, then hit with an 8-edge delta.
/// Fixed-size regardless of `SPINNER_SCALE` — the gate is about the
/// scheduler, not the workload, and a fixed graph keeps the probe METRIC
/// deterministic across scales.
fn converged_probe(num_threads: usize) -> WindowReport {
    let base = planted_partition(SbmConfig {
        n: 2_000,
        communities: 8,
        internal_degree: 8.0,
        external_degree: 1.0,
        skew: None,
        seed: 7,
    });
    let mut cfg = SpinnerConfig::new(8).with_seed(42);
    cfg.num_threads = num_threads;
    cfg.num_workers = 4;
    cfg.frontier_windows = true;
    let mut session = StreamSession::new(base.clone(), cfg);
    let warm: Vec<GraphDelta> = DeltaStream::new(
        base,
        DeltaStreamConfig {
            windows: 2,
            add_fraction: 0.010,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 3,
            triadic_fraction: 0.8,
            hub_bias: 0.5,
            seed: 99,
        },
    )
    .collect();
    for delta in warm {
        session.apply(StreamEvent::Delta(delta));
    }
    let n = session.graph().num_vertices();
    let probe = GraphDelta {
        new_vertices: 0,
        added_edges: (0..PROBE_EDGES).map(|i| (n / 2 + 2 * i, n / 2 + 2 * i + 1)).collect(),
        removed_edges: vec![],
    };
    session.apply(StreamEvent::Delta(probe)).clone()
}

/// Writes the per-window trajectory report (hand-rolled JSON like the suite
/// reports; no JSON dependency in the workspace).
fn write_json(rows: &[WindowRow], trajectory: &Trajectory, scale: Scale, k0: u32) {
    let path = std::env::var("SPINNER_STREAM_JSON")
        .unwrap_or_else(|_| "bench-out/STREAM_TRAJECTORY.json".to_string());
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-stream\",\n");
    out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    out.push_str(&format!("  \"k0\": {k0},\n"));
    out.push_str(&format!("  \"rho_max\": {:.6},\n", trajectory.max_rho()));
    out.push_str(&format!("  \"phi_min\": {:.6},\n", trajectory.min_phi()));
    out.push_str(&format!(
        "  \"migration_mean\": {:.6},\n",
        trajectory.mean_migration_fraction()
    ));
    out.push_str(&format!("  \"trajectory\": {},\n", trajectory.to_json()));
    out.push_str("  \"windows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"window\": {}, \"event\": \"{}\", \"k\": {}, \"num_vertices\": {}, \
             \"num_edges\": {}, \"phi\": {:.6}, \"rho\": {:.6}, \
             \"migration_fraction\": {:.6}, \"migration_scratch\": {:.6}, \
             \"iterations\": {}, \"supersteps\": {}, \"messages\": {}, \
             \"sent_local\": {}, \"sent_remote\": {}, \"remote_records\": {}, \
             \"local_share\": {:.6}, \"remote_dedup\": {:.6}, \
             \"fabric_reallocs\": {}}}{sep}\n",
            r.report.window(),
            r.event,
            r.report.k(),
            r.report.num_vertices(),
            r.report.num_edges(),
            r.report.phi(),
            r.report.rho(),
            r.report.migration_fraction(),
            r.migration_scratch,
            r.report.iterations(),
            r.report.supersteps(),
            r.report.messages(),
            r.report.sent_local(),
            r.report.sent_remote(),
            r.report.sent_remote_records(),
            r.report.local_share(),
            r.report.remote_dedup(),
            r.report.fabric_reallocs()
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote trajectory to {path}");
}
