//! **Streaming dynamic-graph trajectory** — the continuous extension of
//! Figs. 7–8: a [`StreamSession`] holds engine and partition state warm
//! across a stream of delta windows (edge churn + vertex arrivals, with a
//! mid-stream elastic grow and shrink), re-converging incrementally after
//! each window; every window is also repartitioned from scratch as the
//! baseline.
//!
//! Expected shape: per-window migration fraction stays far below the
//! from-scratch baseline (the paper's 8–11% vs 95–98% at one-shot scale),
//! ρ stays within the configured balance slack throughout, and the warm
//! engine performs zero fabric reallocations from window 2 on. The binary
//! **asserts** these acceptance criteria and exits non-zero on violation,
//! so the CI smoke suite doubles as the streaming quality gate.
//!
//! Writes a per-window trajectory JSON (default
//! `bench-out/STREAM_TRAJECTORY.json`, override with
//! `SPINNER_STREAM_JSON`) and emits deterministic `METRIC` lines for the
//! φ/ρ regression tracking in `bench-compare`.

use spinner_bench::{emit_metric, f2, f3, pct1, scale_from_env, threads_from_env, Table};
use spinner_core::{partition, SpinnerConfig, StreamEvent, StreamSession, WindowReport};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig, Scale};
use spinner_metrics::{partitioning_difference, Trajectory, WindowPoint};
use std::process::ExitCode;

/// Delta windows in the stream (the resize events ride on two of them).
const DELTA_WINDOWS: u32 = 10;
/// Balance slack over the capacity constant `c` tolerated across windows
/// (tiny analogues are noisier than the paper's full graphs).
const RHO_SLACK: f64 = 0.15;

struct WindowRow {
    report: WindowReport,
    event: String,
    migration_scratch: f64,
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    // Fixed logical-worker count: the §IV-A4 async load view makes results
    // depend on it, so pinning it keeps every METRIC machine-independent.
    cfg.num_workers = 16;

    let stream_cfg = DeltaStreamConfig {
        windows: DELTA_WINDOWS,
        add_fraction: 0.010,
        remove_fraction: 0.004,
        vertex_fraction: 0.002,
        attach_degree: 3,
        triadic_fraction: 0.8,
        hub_bias: 0.5,
        seed: 99,
    };
    let mut deltas = DeltaStream::new(base.clone(), stream_cfg);

    eprintln!("bootstrap partitioning (k={k})...");
    let mut session = StreamSession::new(base, cfg.clone());
    let bootstrap = session.last().clone();
    eprintln!(
        "bootstrap: phi={:.3} rho={:.3} iters={}",
        bootstrap.phi(),
        bootstrap.rho(),
        bootstrap.iterations()
    );
    let mut rows = vec![WindowRow {
        report: bootstrap,
        event: "bootstrap".to_string(),
        migration_scratch: 1.0,
    }];

    // The stream: 10 delta windows with an elastic grow after the 4th and a
    // shrink back after the 7th — graph and cluster changes interleaved.
    let mut events: Vec<(String, StreamEvent)> = Vec::new();
    for i in 1..=DELTA_WINDOWS {
        events.push(("delta".to_string(), StreamEvent::Delta(deltas.next().expect("window"))));
        if i == 4 {
            events.push((format!("resize {k}->{}", k + 4), StreamEvent::Resize { k: k + 4 }));
        }
        if i == 7 {
            events.push((format!("resize {}->{k}", k + 4), StreamEvent::Resize { k }));
        }
    }

    for (event, stream_event) in events {
        let previous = session.labels().to_vec();
        let report = session.apply(stream_event).clone();
        // From-scratch baseline on the same post-delta graph and k.
        let scratch_cfg = session.config().clone().with_seed(4242 + report.window() as u64);
        let scratch = partition(session.undirected(), &scratch_cfg);
        let shared = previous.len().min(scratch.labels.len());
        let migration_scratch =
            partitioning_difference(&previous[..shared], &scratch.labels[..shared]);
        eprintln!(
            "window {:>2} [{event}]: phi={:.3} rho={:.3} moved {:.1}% (scratch {:.1}%) \
             iters={} reallocs={}",
            report.window(),
            report.phi(),
            report.rho(),
            100.0 * report.migration_fraction(),
            100.0 * migration_scratch,
            report.iterations(),
            report.fabric_reallocs()
        );
        rows.push(WindowRow { report, event, migration_scratch });
    }

    let trajectory: Trajectory = rows
        .iter()
        .map(|r| WindowPoint {
            window: r.report.window(),
            phi: r.report.phi(),
            rho: r.report.rho(),
            migration_fraction: r.report.migration_fraction(),
            local_share: r.report.local_share(),
            lost_fraction: r.report.lost_vertices() as f64
                / f64::from(r.report.num_vertices().max(1)),
        })
        .collect();

    let mut t = Table::new(format!(
        "Streaming trajectory: {DELTA_WINDOWS} delta windows + elastic grow/shrink \
         (Tuenti analogue, k={k})"
    ))
    .header(["window", "event", "k", "phi", "rho", "moved", "moved scratch", "reallocs"]);
    for r in &rows {
        t.row([
            r.report.window().to_string(),
            r.event.clone(),
            r.report.k().to_string(),
            f2(r.report.phi()),
            f3(r.report.rho()),
            pct1(100.0 * r.report.migration_fraction()),
            pct1(100.0 * r.migration_scratch),
            r.report.fabric_reallocs().to_string(),
        ]);
    }
    println!("{t}");

    write_json(&rows, &trajectory, scale, k);

    emit_metric("phi_final", trajectory.last().expect("windows").phi);
    emit_metric("phi_min", trajectory.min_phi());
    emit_metric("rho_max", trajectory.max_rho());
    emit_metric("migration_mean", trajectory.mean_migration_fraction());
    // Locality accounting (already counted per window by the engine): the
    // stream's total local/remote split as *logical* deliveries — lane-
    // independent, so these stay comparable whether the broadcast fabric
    // is on or off — plus the physical cross-worker records the broadcast
    // lane actually shipped (gated lower-is-better by bench-compare; the
    // unicast/broadcast comparison itself lives in exp-broadcast).
    // These run under the default hash placement — the label-placement
    // counterpart (and its gate) lives in exp-locality.
    let sent_local: u64 = rows.iter().map(|r| r.report.sent_local()).sum();
    let sent_remote: u64 = rows.iter().map(|r| r.report.sent_remote()).sum();
    let remote_records: u64 = rows.iter().map(|r| r.report.sent_remote_records()).sum();
    emit_metric("sent_local", sent_local as f64);
    emit_metric("sent_remote", sent_remote as f64);
    emit_metric("remote_records", remote_records as f64);

    // ---- acceptance criteria (self-gating: CI runs this in the smoke
    // suite, so a violation fails the build) ----
    let mut violations: Vec<String> = Vec::new();
    for r in &rows[1..] {
        if r.report.migration_fraction() >= r.migration_scratch {
            violations.push(format!(
                "window {} [{}]: adaptive moved {:.3} >= scratch {:.3}",
                r.report.window(),
                r.event,
                r.report.migration_fraction(),
                r.migration_scratch
            ));
        }
        let rho_bound = cfg.c + RHO_SLACK;
        if r.report.rho() > rho_bound {
            violations.push(format!(
                "window {} [{}]: rho {:.3} exceeds balance slack {:.3}",
                r.report.window(),
                r.event,
                r.report.rho(),
                rho_bound
            ));
        }
    }
    for r in rows.iter().filter(|r| r.report.window() >= 2) {
        if r.report.fabric_reallocs() != 0 {
            violations.push(format!(
                "window {} [{}]: {} steady-state fabric reallocations (want 0)",
                r.report.window(),
                r.event,
                r.report.fabric_reallocs()
            ));
        }
    }
    if violations.is_empty() {
        println!(
            "all {} windows within gates: migration below scratch, rho <= {:.2}, \
             zero fabric reallocations from window 2",
            rows.len(),
            cfg.c + RHO_SLACK
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}

/// Writes the per-window trajectory report (hand-rolled JSON like the suite
/// reports; no JSON dependency in the workspace).
fn write_json(rows: &[WindowRow], trajectory: &Trajectory, scale: Scale, k0: u32) {
    let path = std::env::var("SPINNER_STREAM_JSON")
        .unwrap_or_else(|_| "bench-out/STREAM_TRAJECTORY.json".to_string());
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp-stream\",\n");
    out.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    out.push_str(&format!("  \"k0\": {k0},\n"));
    out.push_str(&format!("  \"rho_max\": {:.6},\n", trajectory.max_rho()));
    out.push_str(&format!("  \"phi_min\": {:.6},\n", trajectory.min_phi()));
    out.push_str(&format!(
        "  \"migration_mean\": {:.6},\n",
        trajectory.mean_migration_fraction()
    ));
    out.push_str(&format!("  \"trajectory\": {},\n", trajectory.to_json()));
    out.push_str("  \"windows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"window\": {}, \"event\": \"{}\", \"k\": {}, \"num_vertices\": {}, \
             \"num_edges\": {}, \"phi\": {:.6}, \"rho\": {:.6}, \
             \"migration_fraction\": {:.6}, \"migration_scratch\": {:.6}, \
             \"iterations\": {}, \"supersteps\": {}, \"messages\": {}, \
             \"sent_local\": {}, \"sent_remote\": {}, \"remote_records\": {}, \
             \"local_share\": {:.6}, \"remote_dedup\": {:.6}, \
             \"fabric_reallocs\": {}}}{sep}\n",
            r.report.window(),
            r.event,
            r.report.k(),
            r.report.num_vertices(),
            r.report.num_edges(),
            r.report.phi(),
            r.report.rho(),
            r.report.migration_fraction(),
            r.migration_scratch,
            r.report.iterations(),
            r.report.supersteps(),
            r.report.messages(),
            r.report.sent_local(),
            r.report.sent_remote(),
            r.report.sent_remote_records(),
            r.report.local_share(),
            r.report.remote_dedup(),
            r.report.fabric_reallocs()
        ));
    }
    out.push_str("  ]\n}\n");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
    }
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote trajectory to {path}");
}
