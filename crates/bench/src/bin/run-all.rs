//! Runs every experiment binary in sequence (the full paper reproduction).
//!
//! `SPINNER_SCALE=tiny cargo run --release --bin run-all` for a smoke pass;
//! default scale regenerates the EXPERIMENTS.md numbers.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp-table1",
    "exp-fig3",
    "exp-fig4",
    "exp-fig5",
    "exp-fig6",
    "exp-fig7",
    "exp-fig8",
    "exp-fig9",
    "exp-table4",
    "exp-ablation",
    "exp-theory",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    let mut failed = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################\n");
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} FAILED with {status}");
            failed.push(*name);
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        panic!("failed experiments: {failed:?}");
    }
}
