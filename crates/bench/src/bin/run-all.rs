//! Runs every experiment binary in sequence (the full paper reproduction).
//!
//! ```text
//! run-all [--smoke] [--json <path>]
//! ```
//!
//! - `--smoke`: run the tiny-scale smoke suite (forces `SPINNER_SCALE=tiny`
//!   for every child), finishing in seconds. CI runs this on each PR and
//!   uploads the JSON report as a workflow artifact.
//! - `--json <path>`: write a machine-readable report of the run (see
//!   `spinner_bench::report`). Defaults to `bench-out/BENCH_SMOKE.json` in
//!   smoke mode; omitted otherwise unless requested.
//!
//! `SPINNER_SCALE=tiny cargo run --release --bin run-all` remains the
//! manual equivalent; the default (full) scale regenerates the
//! EXPERIMENTS.md numbers.

use spinner_bench::report::{render_report, ExperimentOutcome};
use spinner_bench::scale_from_env;
use spinner_graph::Scale;
use std::io::BufRead;
use std::process::{Command, ExitCode, Stdio};
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "exp-table1",
    "exp-fig3",
    "exp-fig4",
    "exp-fig5",
    "exp-fig6",
    "exp-fig7",
    "exp-fig8",
    "exp-fig9",
    "exp-table4",
    "exp-ablation",
    "exp-theory",
    "exp-stream",
    "exp-locality",
    "exp-broadcast",
    "exp-serving",
    "exp-chaos",
    "exp-skew",
    "exp-wire",
    "exp-transport-chaos",
];

struct Args {
    smoke: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { smoke: false, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--json" => match it.next() {
                Some(path) => args.json = Some(path),
                None => {
                    eprintln!("missing value for --json");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: run-all [--smoke] [--json <path>]");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if args.smoke && args.json.is_none() {
        args.json = Some("bench-out/BENCH_SMOKE.json".to_string());
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    // Children read SPINNER_SCALE themselves; in smoke mode force tiny so a
    // stray environment setting cannot turn CI into a multi-hour run. The
    // reported scale goes through the same mapping the children use, so an
    // unrecognised SPINNER_SCALE value is recorded as the "full" it falls
    // back to, not as the raw string.
    let scale = if args.smoke {
        "tiny"
    } else {
        match scale_from_env() {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    };

    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    let mut outcomes = Vec::new();
    for name in EXPERIMENTS {
        println!("\n################ {name} ################\n");
        let mut cmd = Command::new(dir.join(name));
        if args.smoke {
            cmd.env("SPINNER_SCALE", "tiny");
        }
        // Pipe stdout through so `METRIC <name> <value>` lines (see
        // `spinner_bench::emit_metric`) can be captured into the report
        // while everything still reaches the console. Stderr stays
        // inherited (progress logging).
        cmd.stdout(Stdio::piped());
        let start = Instant::now();
        let mut child = cmd.spawn().unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        let mut metrics: Vec<(String, f64)> = Vec::new();
        let stdout = child.stdout.take().expect("piped child stdout");
        for line in std::io::BufReader::new(stdout).lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    // Surface decode/read errors instead of silently
                    // dropping whatever METRIC lines they may have carried.
                    eprintln!("warning: unreadable stdout line from {name}: {e}");
                    continue;
                }
            };
            if let Some((metric_name, value)) = line
                .strip_prefix("METRIC ")
                .and_then(|rest| rest.split_once(' '))
                .and_then(|(n, v)| v.trim().parse::<f64>().ok().map(|v| (n, v)))
            {
                metrics.push((metric_name.to_string(), value));
            }
            println!("{line}");
        }
        let status = child.wait().unwrap_or_else(|e| panic!("failed to wait on {name}: {e}"));
        let seconds = start.elapsed().as_secs_f64();
        if !status.success() {
            eprintln!("{name} FAILED with {status}");
        }
        outcomes.push(ExperimentOutcome {
            name: name.to_string(),
            ok: status.success(),
            seconds,
            metrics,
        });
    }

    if let Some(path) = &args.json {
        let suite = if args.smoke { "smoke" } else { "full" };
        let report = render_report(suite, scale, &outcomes);
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create report directory");
            }
        }
        std::fs::write(path, report).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote report to {path}");
    }

    let failed: Vec<&str> =
        outcomes.iter().filter(|o| !o.ok).map(|o| o.name.as_str()).collect();
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        ExitCode::FAILURE
    }
}
