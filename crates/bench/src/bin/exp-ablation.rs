//! **Ablations** — the design choices DESIGN.md calls out, isolated:
//!
//! 1. Asynchronous per-worker load counters (§IV-A4) on/off → convergence.
//! 2. Directed-aware conversion (Eq. 3) vs naive symmetrisation (Fig. 1) →
//!    locality measured in *messages*.
//! 3. Balance penalty (Eq. 8) on/off → plain LPA's unbalance.
//! 4. Probabilistic migrations (Eq. 14) on/off → capacity violations and
//!    convergence stability.
//! 5. Restart scope on incremental adaptation (§III-D): the paper's full
//!    restart vs the affected-only alternative.

use spinner_bench::{f2, f3, load_dataset, pct1, scale_from_env, spinner_cfg, Table};
use spinner_core::config::RestartScope;
use spinner_core::{adapt_with_delta, partition};
use spinner_graph::conversion::{
    from_undirected_edges, to_naive_undirected, to_weighted_undirected,
};
use spinner_graph::mutation::{apply_delta, sample_new_edges};
use spinner_graph::{Dataset, GraphDelta};

fn main() {
    let scale = scale_from_env();
    let k = 32u32;

    // --- 1. async per-worker counters ---
    let g = load_dataset(Dataset::LiveJournal, scale);
    let mut t1 = Table::new("Ablation 1: asynchronous per-worker load counters (LJ, k=32)")
        .header(["variant", "iterations", "phi", "rho"]);
    for (name, on) in [("async (paper)", true), ("synchronous", false)] {
        let mut cfg = spinner_cfg(k, 42);
        cfg.async_worker_loads = on;
        let r = partition(&g, &cfg);
        t1.row([
            name.to_string(),
            r.iterations.to_string(),
            f2(r.quality.phi),
            f3(r.quality.rho),
        ]);
    }
    println!("{t1}");
    println!("(paper §IV-A4: the async view speeds up convergence)\n");

    // --- 2. Eq. 3 conversion vs naive symmetrisation ---
    let d = Dataset::GooglePlus.build_directed(scale);
    let weighted = to_weighted_undirected(&d);
    let naive = to_naive_undirected(&d);
    let mut t2 = Table::new("Ablation 2: Eq. 3 weights vs naive symmetrisation (G+, k=32)")
        .header(["conversion", "phi (messages)", "rho"]);
    for (name, graph) in [("Eq. 3 weighted", &weighted), ("naive unweighted", &naive)] {
        let r = partition(graph, &spinner_cfg(k, 42));
        // Evaluate locality in MESSAGE terms (on the weighted graph) in both
        // cases — the naive variant optimises the wrong objective.
        let phi_msgs = spinner_metrics::phi(&weighted, &r.labels);
        let rho = spinner_metrics::rho(&weighted, &r.labels, k);
        t2.row([name.to_string(), f2(phi_msgs), f3(rho)]);
    }
    println!("{t2}");
    println!("(paper §III-A/Fig. 1: direction-aware weights cut more message traffic)\n");

    // --- 3 & 4. penalty / probabilistic migrations on skewed graph ---
    let tw = load_dataset(Dataset::Twitter, scale);
    let mut t3 = Table::new("Ablations 3-4: balance machinery on the Twitter analogue (k=32)")
        .header(["variant", "phi", "rho", "iterations"]);
    for (name, penalty, prob) in [
        ("full spinner", true, true),
        ("no balance penalty (plain LPA)", false, true),
        ("migrate-all (no Eq. 14)", true, false),
        ("neither", false, false),
    ] {
        let mut cfg = spinner_cfg(k, 42);
        cfg.balance_penalty = penalty;
        cfg.probabilistic_migration = prob;
        cfg.max_iterations = 60;
        let r = partition(&tw, &cfg);
        t3.row([
            name.to_string(),
            f2(r.quality.phi),
            f3(r.quality.rho),
            r.iterations.to_string(),
        ]);
    }
    println!("{t3}");
    println!("(expected: dropping the penalty or the probabilistic step inflates rho)\n");

    // --- 5. restart scope on incremental adaptation ---
    let tu_directed = Dataset::Tuenti.build_directed(scale);
    let tu = from_undirected_edges(&tu_directed);
    let base = partition(&tu, &spinner_cfg(32, 42));
    let new_edges = sample_new_edges(
        &tu_directed,
        (tu_directed.num_edges() / 200) as usize, // 0.5% new edges
        0.8,
        7,
    );
    let delta = GraphDelta::additions(new_edges);
    let changed = from_undirected_edges(&apply_delta(&tu_directed, &delta));
    let mut t5 = Table::new("Ablation 5: restart scope on 0.5% graph change (Tuenti, k=32)")
        .header(["strategy", "vertex computations", "phi", "moved"]);
    for (name, scope) in [
        ("full restart (paper)", RestartScope::All),
        ("affected-only", RestartScope::AffectedOnly),
    ] {
        let mut cfg = spinner_cfg(32, 42);
        cfg.restart_scope = scope;
        let r = adapt_with_delta(&changed, &base.labels, &delta, &cfg);
        let moved = spinner_metrics::partitioning_difference(&base.labels, &r.labels);
        t5.row([
            name.to_string(),
            r.totals.computed.to_string(),
            f2(r.quality.phi),
            pct1(100.0 * moved),
        ]);
    }
    println!("{t5}");
    println!("(paper chose the full restart for quality; affected-only minimises compute)");
}
