//! **Table I** — comparison with state-of-the-art approaches on the Twitter
//! graph: φ and ρ for k ∈ {2, 4, 8, 16, 32} across Wang et al., Stanton et
//! al. (LDG), Fennel, METIS-like, and Spinner.
//!
//! Expected shape (paper): METIS-like leads on φ with near-perfect ρ;
//! Spinner lands within a few percent of it with comparable balance; Fennel
//! sits between; LDG is balanced but less local; the vertex-balanced Wang
//! approach shows markedly worse edge balance on this hub-dominated graph.

use spinner_baselines as baselines;
use spinner_bench::{f2, load_dataset, run_spinner, scale_from_env, spinner_cfg, Table};
use spinner_graph::Dataset;

/// Paper values: (approach, [(phi, rho); 5]).
const PAPER: [(&str, [(f64, f64); 5]); 5] = [
    ("wang", [(0.61, 1.30), (0.36, 1.63), (0.23, 2.19), (0.15, 2.63), (0.11, 1.87)]),
    ("ldg", [(0.66, 1.04), (0.45, 1.07), (0.34, 1.10), (0.24, 1.13), (0.20, 1.15)]),
    ("fennel", [(0.93, 1.10), (0.71, 1.10), (0.52, 1.10), (0.41, 1.10), (0.33, 1.10)]),
    ("metis-like", [(0.88, 1.02), (0.76, 1.03), (0.64, 1.03), (0.46, 1.03), (0.37, 1.03)]),
    ("spinner", [(0.85, 1.05), (0.69, 1.02), (0.51, 1.05), (0.39, 1.04), (0.31, 1.04)]),
];

fn main() {
    let g = load_dataset(Dataset::Twitter, scale_from_env());
    let ks = [2u32, 4, 8, 16, 32];

    let mut results: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for &(name, _) in &PAPER {
        let mut row = Vec::new();
        for &k in &ks {
            eprintln!("running {name} k={k}...");
            let labels = match name {
                "wang" => baselines::wang_partition(&g, &baselines::WangConfig::new(k)),
                "ldg" => baselines::ldg_partition(&g, &baselines::LdgConfig::new(k)),
                "fennel" => baselines::fennel_partition(&g, &baselines::FennelConfig::new(k)),
                "metis-like" => {
                    baselines::multilevel_partition(&g, &baselines::MultilevelConfig::new(k))
                }
                "spinner" => run_spinner(&g, &spinner_cfg(k, 42)).labels,
                _ => unreachable!(),
            };
            let phi = spinner_metrics::phi(&g, &labels);
            let rho = spinner_metrics::rho(&g, &labels, k);
            row.push((phi, rho));
        }
        results.push((name, row));
    }

    let mut t = Table::new("Table I: phi/rho on the Twitter analogue, measured (paper)")
        .header(
            std::iter::once("approach".to_string())
                .chain(ks.iter().flat_map(|k| [format!("phi k={k}"), format!("rho k={k}")])),
        );
    for ((name, row), (_, paper)) in results.iter().zip(&PAPER) {
        let mut cells = vec![name.to_string()];
        for (i, &(phi, rho)) in row.iter().enumerate() {
            cells.push(format!("{} ({})", f2(phi), f2(paper[i].0)));
            cells.push(format!("{} ({})", f2(rho), f2(paper[i].1)));
        }
        t.row(cells);
    }
    println!("{t}");

    // Shape assertions the paper makes in prose.
    let phi_of = |name: &str| &results.iter().find(|(n, _)| *n == name).unwrap().1;
    let spinner = phi_of("spinner");
    let metis = phi_of("metis-like");
    let wang = phi_of("wang");
    let within =
        spinner.iter().zip(metis).filter(|((sp, _), (mp, _))| sp >= &(mp - 0.15)).count();
    println!("spinner within 0.15 of metis-like phi in {within}/5 settings");
    let wang_rho_worst = wang.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    let spinner_rho_worst = spinner.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    println!(
        "worst-case rho: wang {} vs spinner {} (paper: 2.63 vs 1.05)",
        f2(wang_rho_worst),
        f2(spinner_rho_worst)
    );
}
