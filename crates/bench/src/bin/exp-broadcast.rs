//! **Broadcast message fabric** — sender-side dedup + receiver-side fan-out
//! for Spinner's only message, the label announcement broadcast to all
//! neighbours (§IV-A2): two identical streaming sessions run the same
//! hub-skewed delta stream over the Tuenti analogue, one shipping
//! announcements as per-edge unicasts (one grid record per crossing edge),
//! the other through the deduplicating broadcast lane (one record per
//! `(sender, destination worker)` pair, expanded by the receiver's fan-out
//! index).
//!
//! Expected shape: logical traffic, labels, φ/ρ, and the whole iteration
//! history are **bit-identical** — the lane only changes how bytes move —
//! while the physical cross-worker records drop by the mean remote fan-out
//! (on a dense hub-heavy graph over 8 workers, well past the 3x gate).
//! Placement feedback fires at the bootstrap, so the stream also exercises
//! the fan-out index across a mid-stream `Engine::replace` migration and
//! every warm reset, with zero steady-state fabric reallocations. The
//! binary **asserts** all of this and exits non-zero on violation, so the
//! CI smoke suite doubles as the broadcast-lane quality gate.
//!
//! Emits deterministic `METRIC` lines: `remote_records_*` are gated
//! lower-is-better by `bench-compare`, pinning the dedup against the
//! committed baseline.

use spinner_bench::{emit_metric, f2, scale_from_env, threads_from_env, Table};
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession, WindowReport};
use spinner_graph::{Dataset, DeltaStream, DeltaStreamConfig, GraphDelta};
use std::process::ExitCode;

/// Delta windows in the stream (all hub-biased: new edges and arrivals
/// attach preferentially to hubs, the regime the dedup targets).
const DELTA_WINDOWS: u32 = 5;
/// Re-place by computed label once a window's remote share crosses this;
/// the bootstrap window on hash placement always does, so the broadcast
/// index is exercised across an `Engine::replace` migration mid-stream.
const FEEDBACK_THRESHOLD: f64 = 0.5;
/// Logical workers hosting the computation.
const WORKERS: usize = 8;
/// The acceptance gate: the unicast arm must ship at least this many times
/// more cross-worker records than the broadcast arm over the whole stream.
const MIN_DEDUP: f64 = 3.0;

/// The per-window digest that must be identical across the two arms
/// (f64 fields compare by bits; none are NaN by construction).
fn digest(w: &WindowReport) -> (f64, f64, f64, u32, u64, u64, u64, u64, u64) {
    (
        w.phi(),
        w.rho(),
        w.migration_fraction(),
        w.iterations(),
        w.supersteps(),
        w.messages(),
        w.sent_local(),
        w.sent_remote(),
        w.placement_moved(),
    )
}

fn main() -> ExitCode {
    let scale = scale_from_env();
    let k = 16u32;
    let base = Dataset::Tuenti.build_directed(scale);
    eprintln!("tuenti analogue: |V|={} |E|={}", base.num_vertices(), base.num_edges());

    let mut cfg = SpinnerConfig::new(k).with_seed(42);
    cfg.num_threads = threads_from_env();
    cfg.num_workers = WORKERS;
    cfg.placement_feedback = Some(FEEDBACK_THRESHOLD);
    let unicast_cfg = cfg.clone().with_broadcast_fabric(false);

    let deltas: Vec<GraphDelta> = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: DELTA_WINDOWS,
            add_fraction: 0.012,
            remove_fraction: 0.004,
            vertex_fraction: 0.002,
            attach_degree: 4,
            triadic_fraction: 0.6,
            hub_bias: 1.0,
            seed: 99,
        },
    )
    .collect();

    eprintln!("bootstrap partitioning (unicast vs broadcast fabric)...");
    let mut unicast = StreamSession::new(base.clone(), unicast_cfg);
    let mut broadcast = StreamSession::new(base, cfg);
    for delta in deltas {
        unicast.apply(StreamEvent::Delta(delta.clone()));
        let b = broadcast.apply(StreamEvent::Delta(delta));
        eprintln!(
            "window {:>2}: remote msgs {} -> records {} (dedup {:.2}x) phi={:.3} reallocs={}",
            b.window(),
            b.sent_remote(),
            b.sent_remote_records(),
            b.remote_dedup(),
            b.phi(),
            b.fabric_reallocs(),
        );
    }

    let mut t = Table::new(format!(
        "Announcement traffic, per-edge unicast vs broadcast lane \
         ({DELTA_WINDOWS} hub-biased delta windows, k={k}, L={WORKERS})"
    ))
    .header([
        "window",
        "phi",
        "remote msgs",
        "records (unicast)",
        "records (broadcast)",
        "dedup",
        "replaced",
    ]);
    for (u, b) in unicast.windows().iter().zip(broadcast.windows()) {
        t.row([
            b.window().to_string(),
            f2(b.phi()),
            b.sent_remote().to_string(),
            u.sent_remote_records().to_string(),
            b.sent_remote_records().to_string(),
            format!("{:.2}x", b.remote_dedup()),
            b.placement_moved().to_string(),
        ]);
    }
    println!("{t}");

    let records =
        |s: &StreamSession| s.windows().iter().map(|w| w.sent_remote_records()).sum::<u64>();
    let (rec_unicast, rec_broadcast) = (records(&unicast), records(&broadcast));
    let dedup = rec_unicast as f64 / rec_broadcast.max(1) as f64;
    println!(
        "stream totals: {rec_unicast} unicast records vs {rec_broadcast} broadcast records \
         ({dedup:.2}x fewer; identical logical traffic and labels)"
    );

    emit_metric("remote_records_unicast", rec_unicast as f64);
    emit_metric("remote_records_broadcast", rec_broadcast as f64);
    emit_metric("dedup_factor", dedup);
    emit_metric("phi_final", broadcast.windows().last().expect("bootstrap window").phi());

    // ---- acceptance criteria (self-gating: CI runs this in the smoke
    // suite, so a violation fails the build) ----
    let mut violations: Vec<String> = Vec::new();
    if unicast.labels() != broadcast.labels() {
        violations.push("labels diverged between unicast and broadcast arms".to_string());
    }
    for (u, b) in unicast.windows().iter().zip(broadcast.windows()) {
        if digest(u) != digest(b) {
            violations.push(format!(
                "window {}: logical trajectory diverged between the arms",
                u.window()
            ));
        }
        // The unicast arm is the identity baseline: one record per message.
        if u.sent_remote_records() != u.sent_remote()
            || u.sent_local_records() != u.sent_local()
        {
            violations.push(format!(
                "window {}: unicast arm deduplicated ({} records for {} messages)",
                u.window(),
                u.sent_remote_records(),
                u.sent_remote()
            ));
        }
    }
    if broadcast.windows()[0].placement_moved() == 0 {
        violations.push(
            "placement feedback never fired: Engine::replace left unexercised".to_string(),
        );
    }
    if dedup < MIN_DEDUP {
        violations.push(format!(
            "dedup {dedup:.2}x below the {MIN_DEDUP:.0}x gate \
             ({rec_unicast} vs {rec_broadcast} records)"
        ));
    }
    // Steady state across warm resets and the replace migration: the
    // broadcast fabric (fan-out index included) must run entirely inside
    // pre-reserved capacity.
    for w in broadcast.windows().iter().filter(|w| w.window() >= 2) {
        if w.fabric_reallocs() != 0 {
            violations.push(format!(
                "window {}: {} fabric reallocations in the broadcast arm (want 0)",
                w.window(),
                w.fabric_reallocs()
            ));
        }
    }
    if violations.is_empty() {
        println!(
            "all gates passed: bit-identical labels/trajectory, {:.2}x record dedup \
             (gate {MIN_DEDUP:.0}x), replace exercised, zero steady-state reallocs",
            dedup
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("ACCEPTANCE VIOLATION: {v}");
        }
        ExitCode::FAILURE
    }
}
