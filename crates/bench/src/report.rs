//! Machine-readable experiment reports: the `BENCH_*.json` files CI uploads
//! as artifacts so the experiment trajectory is tracked across commits.
//!
//! Rendering is hand-rolled (the workspace has no JSON dependency); the
//! format is a flat object that any consumer can parse:
//!
//! ```json
//! {
//!   "suite": "smoke",
//!   "scale": "tiny",
//!   "total": 11,
//!   "failed": 0,
//!   "experiments": [
//!     {"name": "exp-table1", "ok": true, "seconds": 1.234},
//!     {"name": "exp-stream", "ok": true, "seconds": 0.9,
//!      "metrics": {"phi_final": 0.71, "rho_max": 1.08}}
//!   ]
//! }
//! ```
//!
//! The optional `metrics` object carries the quality numbers an experiment
//! reported through `METRIC <name> <value>` stdout lines (seeded and
//! thread-count-invariant, so — unlike wall-clock — they diff exactly
//! across runs; `bench-compare` gates φ/ρ regressions on them).

/// The result of one experiment binary run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Binary name (e.g. `exp-table1`).
    pub name: String,
    /// Whether the process exited successfully.
    pub ok: bool,
    /// Wall-clock runtime in seconds.
    pub seconds: f64,
    /// Quality metrics the experiment reported (name, value), in emission
    /// order. Empty for experiments that report none.
    pub metrics: Vec<(String, f64)>,
}

impl ExperimentOutcome {
    /// The reported value of metric `name`, if any.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Renders a suite report as a JSON document (trailing newline included).
pub fn render_report(suite: &str, scale: &str, outcomes: &[ExperimentOutcome]) -> String {
    let failed = outcomes.iter().filter(|o| !o.ok).count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"suite\": {},\n", json_string(suite)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale)));
    out.push_str(&format!("  \"total\": {},\n", outcomes.len()));
    out.push_str(&format!("  \"failed\": {failed},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 == outcomes.len() { "" } else { "," };
        let metrics = if o.metrics.is_empty() {
            String::new()
        } else {
            let entries: Vec<String> =
                o.metrics.iter().map(|(n, v)| format!("{}: {v:.6}", json_string(n))).collect();
            format!(", \"metrics\": {{{}}}", entries.join(", "))
        };
        out.push_str(&format!(
            "    {{\"name\": {}, \"ok\": {}, \"seconds\": {:.3}{metrics}}}{sep}\n",
            json_string(&o.name),
            o.ok,
            o.seconds
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a report produced by [`render_report`] back into its outcomes.
///
/// Hand-rolled like the renderer (no JSON dependency): scans for the
/// `{"name": ..., "ok": ..., "seconds": ...}` experiment objects. Returns
/// `None` when the document does not look like a report.
pub fn parse_report(json: &str) -> Option<Vec<ExperimentOutcome>> {
    let experiments = json.split("\"experiments\"").nth(1)?;
    let mut outcomes = Vec::new();
    // Split on the experiment-object opener rather than a bare `{` so the
    // nested `"metrics"` objects don't produce phantom chunks.
    for obj in experiments.split("{\"name\"").skip(1) {
        let name = obj.split_once(':')?.1;
        let name = name.trim_start().strip_prefix('"')?;
        let name = &name[..closing_quote(name)?];
        let ok = field(obj, "\"ok\"")?.trim().starts_with("true");
        let seconds: f64 = {
            let raw = field(obj, "\"seconds\"")?;
            let end = raw.find(['}', ',', '\n']).unwrap_or(raw.len());
            raw[..end].trim().parse().ok()?
        };
        outcomes.push(ExperimentOutcome {
            name: unescape(name),
            ok,
            seconds,
            metrics: parse_metrics(obj),
        });
    }
    Some(outcomes)
}

/// The `(name, value)` entries of an experiment object's optional nested
/// `"metrics": {...}` object (empty when absent or malformed). Metric names
/// are simple identifiers by construction (`emit_metric` rejects everything
/// else), so no unescaping is needed.
fn parse_metrics(obj: &str) -> Vec<(String, f64)> {
    let Some(body) = obj
        .split("\"metrics\"")
        .nth(1)
        .and_then(|m| m.split_once('{'))
        .and_then(|(_, rest)| rest.split_once('}'))
        .map(|(body, _)| body)
    else {
        return Vec::new();
    };
    body.split(',')
        .filter_map(|entry| {
            let (key, value) = entry.split_once(':')?;
            let name = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            Some((name.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Byte index of the string literal's terminating quote (the first `"` not
/// preceded by an odd number of backslashes).
fn closing_quote(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\\' => escaped = !escaped,
            b'"' if !escaped => return Some(i),
            _ => escaped = false,
        }
    }
    None
}

/// The text following `key:` within `obj`, if present.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    obj.split(key).nth(1)?.split_once(':').map(|(_, rest)| rest)
}

/// Reverses the escapes [`json_string`] emits (enough for experiment names).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Quotes and escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, ok: bool, seconds: f64) -> ExperimentOutcome {
        ExperimentOutcome { name: name.into(), ok, seconds, metrics: Vec::new() }
    }

    fn outcome_with_metrics(
        name: &str,
        seconds: f64,
        metrics: &[(&str, f64)],
    ) -> ExperimentOutcome {
        ExperimentOutcome {
            name: name.into(),
            ok: true,
            seconds,
            metrics: metrics.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    #[test]
    fn report_lists_every_experiment_and_counts_failures() {
        let r = render_report(
            "smoke",
            "tiny",
            &[outcome("exp-table1", true, 1.5), outcome("exp-fig3", false, 0.25)],
        );
        assert!(r.contains("\"suite\": \"smoke\""));
        assert!(r.contains("\"scale\": \"tiny\""));
        assert!(r.contains("\"total\": 2"));
        assert!(r.contains("\"failed\": 1"));
        assert!(r.contains("{\"name\": \"exp-table1\", \"ok\": true, \"seconds\": 1.500}"));
        assert!(r.contains("{\"name\": \"exp-fig3\", \"ok\": false, \"seconds\": 0.250}"));
        // Exactly one element separator for two entries.
        assert_eq!(r.matches("},\n").count(), 1);
    }

    #[test]
    fn empty_report_is_well_formed() {
        let r = render_report("smoke", "full", &[]);
        assert!(r.contains("\"total\": 0"));
        assert!(r.contains("\"experiments\": [\n  ]"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_roundtrips_render() {
        let outcomes = vec![outcome("exp-table1", true, 1.5), outcome("exp-fig3", false, 0.25)];
        let parsed = parse_report(&render_report("smoke", "tiny", &outcomes)).unwrap();
        assert_eq!(parsed, outcomes);
    }

    #[test]
    fn metrics_roundtrip_and_mix_with_plain_experiments() {
        let outcomes = vec![
            outcome("exp-table1", true, 1.5),
            outcome_with_metrics(
                "exp-stream",
                0.9,
                &[("phi_final", 0.714523), ("rho_max", 1.0812)],
            ),
            outcome("exp-fig9", false, 0.2),
        ];
        let rendered = render_report("smoke", "tiny", &outcomes);
        assert!(
            rendered.contains("\"metrics\": {\"phi_final\": 0.714523, \"rho_max\": 1.081200}")
        );
        let parsed = parse_report(&rendered).unwrap();
        assert_eq!(parsed, outcomes);
        assert_eq!(parsed[1].metric("rho_max"), Some(1.0812));
        assert_eq!(parsed[1].metric("absent"), None);
        assert!(parsed[0].metrics.is_empty());
    }

    #[test]
    fn parse_roundtrips_escaped_names() {
        let outcomes = vec![outcome("odd \"name\" with \\ and\ttab", true, 0.1)];
        let parsed = parse_report(&render_report("smoke", "tiny", &outcomes)).unwrap();
        assert_eq!(parsed, outcomes);
    }

    #[test]
    fn parse_rejects_non_reports() {
        assert_eq!(parse_report(""), None);
        assert_eq!(parse_report("{\"foo\": 1}"), None);
        // A report with no experiments parses as empty.
        assert_eq!(parse_report(&render_report("smoke", "tiny", &[])), Some(vec![]));
    }
}
