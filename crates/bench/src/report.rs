//! Machine-readable experiment reports: the `BENCH_*.json` files CI uploads
//! as artifacts so the experiment trajectory is tracked across commits.
//!
//! Rendering is hand-rolled (the workspace has no JSON dependency); the
//! format is a flat object that any consumer can parse:
//!
//! ```json
//! {
//!   "suite": "smoke",
//!   "scale": "tiny",
//!   "total": 11,
//!   "failed": 0,
//!   "experiments": [
//!     {"name": "exp-table1", "ok": true, "seconds": 1.234}
//!   ]
//! }
//! ```

/// The result of one experiment binary run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Binary name (e.g. `exp-table1`).
    pub name: String,
    /// Whether the process exited successfully.
    pub ok: bool,
    /// Wall-clock runtime in seconds.
    pub seconds: f64,
}

/// Renders a suite report as a JSON document (trailing newline included).
pub fn render_report(suite: &str, scale: &str, outcomes: &[ExperimentOutcome]) -> String {
    let failed = outcomes.iter().filter(|o| !o.ok).count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"suite\": {},\n", json_string(suite)));
    out.push_str(&format!("  \"scale\": {},\n", json_string(scale)));
    out.push_str(&format!("  \"total\": {},\n", outcomes.len()));
    out.push_str(&format!("  \"failed\": {failed},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 == outcomes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": {}, \"ok\": {}, \"seconds\": {:.3}}}{sep}\n",
            json_string(&o.name),
            o.ok,
            o.seconds
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Quotes and escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(name: &str, ok: bool, seconds: f64) -> ExperimentOutcome {
        ExperimentOutcome { name: name.into(), ok, seconds }
    }

    #[test]
    fn report_lists_every_experiment_and_counts_failures() {
        let r = render_report(
            "smoke",
            "tiny",
            &[outcome("exp-table1", true, 1.5), outcome("exp-fig3", false, 0.25)],
        );
        assert!(r.contains("\"suite\": \"smoke\""));
        assert!(r.contains("\"scale\": \"tiny\""));
        assert!(r.contains("\"total\": 2"));
        assert!(r.contains("\"failed\": 1"));
        assert!(r.contains("{\"name\": \"exp-table1\", \"ok\": true, \"seconds\": 1.500}"));
        assert!(r.contains("{\"name\": \"exp-fig3\", \"ok\": false, \"seconds\": 0.250}"));
        // Exactly one element separator for two entries.
        assert_eq!(r.matches("},\n").count(), 1);
    }

    #[test]
    fn empty_report_is_well_formed() {
        let r = render_report("smoke", "full", &[]);
        assert!(r.contains("\"total\": 0"));
        assert!(r.contains("\"experiments\": [\n  ]"));
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
