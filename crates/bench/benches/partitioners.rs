//! Criterion bench: one-shot partitioning cost of Spinner vs the Table I
//! baselines on a small community graph (quality is covered by `exp-table1`;
//! this tracks compute cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinner_baselines as baselines;
use spinner_core::SpinnerConfig;
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::UndirectedGraph;

fn graph() -> UndirectedGraph {
    to_weighted_undirected(&planted_partition(SbmConfig {
        n: 20_000,
        communities: 16,
        internal_degree: 8.0,
        external_degree: 2.0,
        skew: None,
        seed: 1,
    }))
}

fn bench_partitioners(c: &mut Criterion) {
    let g = graph();
    let k = 8u32;
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("spinner", k), |b| {
        let mut cfg = SpinnerConfig::new(k);
        cfg.max_iterations = 30;
        cfg.num_workers = 8;
        b.iter(|| spinner_core::partition(&g, &cfg))
    });
    group.bench_function(BenchmarkId::new("ldg", k), |b| {
        let cfg = baselines::LdgConfig::new(k);
        b.iter(|| baselines::ldg_partition(&g, &cfg))
    });
    group.bench_function(BenchmarkId::new("fennel", k), |b| {
        let cfg = baselines::FennelConfig::new(k);
        b.iter(|| baselines::fennel_partition(&g, &cfg))
    });
    group.bench_function(BenchmarkId::new("multilevel", k), |b| {
        let cfg = baselines::MultilevelConfig::new(k);
        b.iter(|| baselines::multilevel_partition(&g, &cfg))
    });
    group.bench_function(BenchmarkId::new("wang", k), |b| {
        let cfg = baselines::WangConfig::new(k);
        b.iter(|| baselines::wang_partition(&g, &cfg))
    });
    group.bench_function(BenchmarkId::new("hash", k), |b| {
        b.iter(|| baselines::hash_partition(g.num_vertices(), k, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
