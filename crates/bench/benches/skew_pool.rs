//! Criterion bench: the work-stealing worker pool against the static
//! worker→thread split on a hub-skewed graph.
//!
//! Preferential-attachment ids are insertion-ordered, so a *contiguous*
//! placement parks the oldest, highest-degree hubs on worker 0 — the
//! adversarial layout where a static split makes whichever thread owns
//! worker 0 the per-superstep straggler. Work-stealing lets the idle
//! threads claim its chunks; labels stay bit-identical either way (the
//! engine merges per-worker partials in worker order), so the arms differ
//! in wall-clock only. Engines are built (topology loaded, fabric warmed)
//! outside the timing loop: the bench isolates steady-state superstep
//! scheduling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spinner_graph::generators::barabasi_albert;
use spinner_pregel::program::Program;
use spinner_pregel::{Engine, EngineConfig, Placement, VertexContext};

/// Announce-to-all-neighbours every superstep — Spinner's messaging
/// pattern, and edge-proportional work, so the hub worker dominates.
struct Announce;

impl Program for Announce {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        *ctx.value = ctx.value.wrapping_add(messages.iter().sum::<u64>());
        ctx.mail.broadcast(ctx.vertex as u64);
    }
    fn master(&self, ctx: &mut spinner_pregel::program::MasterContext<'_, ()>) {
        if ctx.superstep >= 8 {
            ctx.halt();
        }
    }
}

fn bench_skew_pool(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 32, 7);
    let edges = g.num_edges();
    let placement = Placement::contiguous(g.num_vertices(), 16);

    let mut group = c.benchmark_group("skew_pool");
    group.sample_size(10);
    // 9 supersteps of announcements move ~9x|E| logical messages.
    group.throughput(Throughput::Elements(9 * edges));
    for (name, stealing, chunk) in [
        ("hub_static", false, 0usize),
        ("hub_stealing", true, 0),
        ("hub_stealing_chunk1", true, 1),
    ] {
        let cfg = EngineConfig {
            num_threads: 8,
            max_supersteps: 10_000,
            seed: 1,
            broadcast_fabric: false,
            work_stealing: stealing,
            steal_chunk: chunk,
            ..EngineConfig::default()
        };
        let mut engine =
            Engine::from_directed(Announce, &g, &placement, cfg, |_| 0, |_, _, _| ());
        engine.run(); // warm every fabric buffer
        group.bench_function(name, |b| b.iter(|| engine.run()));
    }
    group.finish();
}

criterion_group!(benches, bench_skew_pool);
criterion_main!(benches);
