//! Criterion bench: the Fig. 6 scalability sweeps at reduced scale —
//! first-iteration runtime vs graph size and vs k on Watts-Strogatz graphs
//! (out-degree 40, β = 0.3, the paper's §V-B setting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spinner_core::SpinnerConfig;
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::watts_strogatz;
use spinner_graph::UndirectedGraph;

fn one_iteration_cfg(k: u32) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k);
    cfg.max_iterations = 1;
    cfg.ignore_halting = true;
    cfg.num_workers = 16;
    cfg
}

fn ws(n: u32) -> UndirectedGraph {
    to_weighted_undirected(&watts_strogatz(n, 40, 0.3, 7))
}

fn bench_fig6a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_size");
    group.sample_size(10);
    for shift in [12u32, 13, 14, 15] {
        let n = 1u32 << shift;
        let g = ws(n);
        group.throughput(Throughput::Elements(g.total_weight()));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let cfg = one_iteration_cfg(64);
            b.iter(|| spinner_core::partition(g, &cfg))
        });
    }
    group.finish();
}

fn bench_fig6c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6c_partitions");
    group.sample_size(10);
    let g = ws(1 << 14);
    for k in [2u32, 16, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &g, |b, g| {
            let cfg = one_iteration_cfg(k);
            b.iter(|| spinner_core::partition(g, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6a, bench_fig6c);
criterion_main!(benches);
