//! Criterion bench: the wire codec in isolation — frame encode/decode
//! throughput for both formats on a hub-skewed batch — and the transport
//! arms end-to-end on a message-heavy engine run.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spinner_graph::generators::barabasi_albert;
use spinner_graph::DirectedGraph;
use spinner_pregel::program::Program;
use spinner_pregel::wire::{decode_frame, encode_frame, WireRecord};
use spinner_pregel::{
    Engine, EngineConfig, Placement, TransportKind, VertexContext, WireFormat,
};

/// A sorted-by-destination unicast batch with hub-skewed ids (what the
/// outbox actually hands the encoder after the sort): many records per hot
/// destination, so delta ids are mostly zero and varints mostly one byte.
fn hub_batch(records: usize) -> Vec<WireRecord<u64>> {
    let mut out = Vec::with_capacity(records);
    let mut id = 0u64;
    for i in 0..records {
        // Runs of 8 records per destination, destinations 97 ids apart.
        if i % 8 == 0 {
            id += 97;
        }
        out.push(WireRecord { broadcast: i % 16 == 0, id, msg: (i as u64) << 7 });
    }
    out
}

fn bench_codec(c: &mut Criterion) {
    let records = 100_000usize;
    let batch = hub_batch(records);
    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(20);
    group.throughput(Throughput::Elements(records as u64));
    for format in [WireFormat::Raw, WireFormat::Compact] {
        group.bench_function(format!("encode_{format:?}"), |b| {
            let mut buf = Vec::new();
            b.iter(|| {
                buf = encode_frame(format, &batch, records as u64, std::mem::take(&mut buf));
                buf.len()
            })
        });
        let frame = encode_frame(format, &batch, records as u64, Vec::new());
        group.bench_function(format!("decode_{format:?}"), |b| {
            let mut ids = Vec::new();
            let mut out = Vec::new();
            b.iter(|| {
                decode_frame::<u64>(&frame, &mut ids, &mut out).expect("valid frame");
                out.len()
            })
        });
    }
    group.finish();
}

/// Min-label propagation with a combiner: floods the fabric with
/// same-destination messages, the regime sender-side folding targets.
struct MinLabel;

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, best);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u32, msg: &u32) -> bool {
        *acc = (*acc).min(*msg);
        true
    }
}

fn run_arm(g: &DirectedGraph, transport: TransportKind, format: WireFormat, fold: bool) {
    let placement = Placement::hashed(g.num_vertices(), 8, 5);
    let cfg = EngineConfig {
        num_threads: 8,
        max_supersteps: 10_000,
        seed: 1,
        broadcast_fabric: false,
        transport,
        wire_format: format,
        sender_fold: fold,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::from_directed(MinLabel, g, &placement, cfg, |_| u32::MAX, |_, _, _| ());
    engine.run();
}

fn bench_transport(c: &mut Criterion) {
    let g = barabasi_albert(30_000, 8, 11);
    let edges = g.num_edges();
    let mut group = c.benchmark_group("wire_transport");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));
    group.bench_function("direct", |b| {
        b.iter(|| run_arm(&g, TransportKind::Direct, WireFormat::Compact, true))
    });
    group.bench_function("ring_raw", |b| {
        b.iter(|| run_arm(&g, TransportKind::Ring, WireFormat::Raw, true))
    });
    group.bench_function("ring_compact", |b| {
        b.iter(|| run_arm(&g, TransportKind::Ring, WireFormat::Compact, true))
    });
    group.bench_function("ring_compact_nofold", |b| {
        b.iter(|| run_arm(&g, TransportKind::Ring, WireFormat::Compact, false))
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_transport);
criterion_main!(benches);
