//! Criterion bench: Pregel engine throughput — PageRank supersteps
//! (message-heavy), SSSP (sparse activation), thread scaling, and the
//! broadcast lane against per-edge unicast on a hub-heavy graph.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spinner_graph::generators::{barabasi_albert, watts_strogatz};
use spinner_graph::DirectedGraph;
use spinner_pregel::algorithms::{run_pagerank, run_sssp};
use spinner_pregel::program::Program;
use spinner_pregel::{Engine, EngineConfig, Placement, VertexContext};

fn graph() -> DirectedGraph {
    watts_strogatz(50_000, 16, 0.3, 3)
}

fn engine_cfg(threads: usize) -> EngineConfig {
    // PageRank/SSSP never broadcast, so the engine benches skip the lane's
    // load-time index build; bench_broadcast overrides the flag per arm.
    EngineConfig {
        num_threads: threads,
        max_supersteps: 10_000,
        seed: 1,
        broadcast_fabric: false,
        ..EngineConfig::default()
    }
}

fn bench_engine(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let edges = g.num_edges();
    let placement = Placement::hashed(n, 16, 5);

    let mut group = c.benchmark_group("pregel");
    group.sample_size(10);
    // 5 PageRank iterations move ~5x|E| messages.
    group.throughput(Throughput::Elements(5 * edges));
    group.bench_function("pagerank_x5_1thread", |b| {
        b.iter(|| run_pagerank(&g, &placement, engine_cfg(1), 5))
    });
    group.bench_function("pagerank_x5_8threads", |b| {
        b.iter(|| run_pagerank(&g, &placement, engine_cfg(8), 5))
    });
    group.throughput(Throughput::Elements(edges));
    group.bench_function("bfs_sssp", |b| b.iter(|| run_sssp(&g, &placement, engine_cfg(8), 0)));
    group.finish();
}

/// Announce-to-all-neighbours every superstep — Spinner's messaging
/// pattern, isolated: the broadcast lane ships one record per destination
/// worker while the unicast arm pays one per edge.
struct Announce;

impl Program for Announce {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        *ctx.value = ctx.value.wrapping_add(messages.iter().sum::<u64>());
        ctx.mail.broadcast(ctx.vertex as u64);
    }
    fn master(&self, ctx: &mut spinner_pregel::program::MasterContext<'_, ()>) {
        if ctx.superstep >= 8 {
            ctx.halt();
        }
    }
}

fn bench_broadcast(c: &mut Criterion) {
    // Preferential attachment at Tuenti-like density (mean degree ~64 over
    // 8 workers): hubs dominate the edge mass, the regime the worker-level
    // dedup compresses hardest (~8x fewer grid records per announcement).
    let g = barabasi_albert(20_000, 32, 7);
    let edges = g.num_edges();
    let placement = Placement::hashed(g.num_vertices(), 8, 5);

    let mut group = c.benchmark_group("pregel");
    group.sample_size(10);
    // 9 supersteps of announcements move ~9x|E| logical messages.
    group.throughput(Throughput::Elements(9 * edges));
    for (name, fabric) in [("broadcast_hub_unicast", false), ("broadcast_hub", true)] {
        // One engine per arm, built (and its fan-out index loaded) outside
        // the timing loop: the bench isolates the steady-state message
        // path, which is where the record dedup pays.
        let cfg = EngineConfig { broadcast_fabric: fabric, ..engine_cfg(8) };
        let mut engine =
            Engine::from_directed(Announce, &g, &placement, cfg, |_| 0, |_, _, _| ());
        engine.run(); // warm every fabric buffer
        group.bench_function(name, |b| b.iter(|| engine.run()));
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_broadcast);
criterion_main!(benches);
