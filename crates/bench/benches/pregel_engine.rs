//! Criterion bench: Pregel engine throughput — PageRank supersteps
//! (message-heavy), SSSP (sparse activation), and thread scaling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spinner_graph::generators::watts_strogatz;
use spinner_graph::DirectedGraph;
use spinner_pregel::algorithms::{run_pagerank, run_sssp};
use spinner_pregel::{EngineConfig, Placement};

fn graph() -> DirectedGraph {
    watts_strogatz(50_000, 16, 0.3, 3)
}

fn engine_cfg(threads: usize) -> EngineConfig {
    EngineConfig { num_threads: threads, max_supersteps: 10_000, seed: 1 }
}

fn bench_engine(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices();
    let edges = g.num_edges();
    let placement = Placement::hashed(n, 16, 5);

    let mut group = c.benchmark_group("pregel");
    group.sample_size(10);
    // 5 PageRank iterations move ~5x|E| messages.
    group.throughput(Throughput::Elements(5 * edges));
    group.bench_function("pagerank_x5_1thread", |b| {
        b.iter(|| run_pagerank(&g, &placement, engine_cfg(1), 5))
    });
    group.bench_function("pagerank_x5_8threads", |b| {
        b.iter(|| run_pagerank(&g, &placement, engine_cfg(8), 5))
    });
    group.throughput(Throughput::Elements(edges));
    group.bench_function("bfs_sssp", |b| b.iter(|| run_sssp(&g, &placement, engine_cfg(8), 0)));
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
