//! Criterion bench: synthetic generator and conversion throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::{
    barabasi_albert, erdos_renyi, planted_partition, rmat, watts_strogatz, RmatConfig,
    SbmConfig,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    let n: u32 = 100_000;
    group.throughput(Throughput::Elements(n as u64 * 10));

    group.bench_function("watts_strogatz", |b| b.iter(|| watts_strogatz(n, 10, 0.3, 1)));
    group.bench_function("erdos_renyi", |b| b.iter(|| erdos_renyi(n, n as u64 * 10, 1)));
    group.bench_function("barabasi_albert", |b| b.iter(|| barabasi_albert(n, 10, 1)));
    group.bench_function("rmat", |b| b.iter(|| rmat(RmatConfig::graph500(17, 8, 1))));
    group.bench_function("sbm", |b| {
        b.iter(|| {
            planted_partition(SbmConfig {
                n,
                communities: 100,
                internal_degree: 8.0,
                external_degree: 2.0,
                skew: None,
                seed: 1,
            })
        })
    });
    group.finish();

    let mut group = c.benchmark_group("conversion");
    group.sample_size(10);
    let d = rmat(RmatConfig::graph500(17, 8, 2));
    group.throughput(Throughput::Elements(d.num_edges()));
    group.bench_function("eq3_weighted_undirected", |b| b.iter(|| to_weighted_undirected(&d)));
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
