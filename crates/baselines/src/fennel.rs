//! Fennel streaming partitioning (Tsourakakis et al., WSDM 2014 — reference
//! \[28\] of the paper).
//!
//! Fennel places each arriving vertex on the partition maximising
//! `|N(v) ∩ P_i| − α·γ·|P_i|^(γ−1)`, interpolating between locality and an
//! additive size penalty, with a hard cap `|P_i| ≤ ν·n/k`. The paper's
//! Table I uses the authors' recommended `γ = 1.5`, `ν = 1.1` (which is why
//! Fennel's ρ column reads 1.10 across all k).

use crate::stream::{stream_order, StreamOrder};
use crate::Label;
use spinner_graph::rng::SplitMix64;
use spinner_graph::UndirectedGraph;

/// Fennel configuration.
#[derive(Debug, Clone)]
pub struct FennelConfig {
    /// Number of partitions.
    pub k: u32,
    /// Exponent γ of the size penalty (1.5 recommended).
    pub gamma: f64,
    /// Hard balance cap ν: no partition exceeds `ν·n/k` vertices.
    pub nu: f64,
    /// Arrival order.
    pub order: StreamOrder,
    /// Seed for ordering and tie-breaking.
    pub seed: u64,
}

impl FennelConfig {
    /// The paper-recommended configuration.
    pub fn new(k: u32) -> Self {
        Self { k, gamma: 1.5, nu: 1.1, order: StreamOrder::Random, seed: 1 }
    }
}

/// Runs Fennel over the weighted undirected graph (neighbour counts use the
/// Eq. 3 weights).
pub fn fennel_partition(g: &UndirectedGraph, cfg: &FennelConfig) -> Vec<Label> {
    let n = g.num_vertices();
    assert!(cfg.k >= 1);
    let k = cfg.k as usize;
    let m = g.total_weight() as f64 / 2.0; // undirected weighted edge count
                                           // α = m · k^(γ−1) / n^γ (Fennel §3, with the interpolation objective).
    let alpha = m * (k as f64).powf(cfg.gamma - 1.0) / (n as f64).powf(cfg.gamma);
    let capacity = (cfg.nu * n as f64 / k as f64).max(1.0);
    let order = stream_order(n, cfg.order, cfg.seed);
    let mut rng = SplitMix64::new(cfg.seed ^ 0xFE77E1);

    const UNASSIGNED: Label = Label::MAX;
    let mut labels = vec![UNASSIGNED; n as usize];
    let mut sizes = vec![0u64; k];
    let mut neighbor_weight = vec![0u64; k];

    for v in order {
        let (ts, ws) = g.neighbors(v);
        let mut touched: Vec<usize> = Vec::new();
        for (&t, &w) in ts.iter().zip(ws) {
            let l = labels[t as usize];
            if l != UNASSIGNED {
                if neighbor_weight[l as usize] == 0 {
                    touched.push(l as usize);
                }
                neighbor_weight[l as usize] += w as u64;
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        let mut n_best = 0u64;
        for i in 0..k {
            if sizes[i] as f64 >= capacity {
                continue;
            }
            let score = neighbor_weight[i] as f64
                - alpha * cfg.gamma * (sizes[i] as f64).powf(cfg.gamma - 1.0);
            if score > best_score {
                best_score = score;
                best = i;
                n_best = 1;
            } else if score == best_score {
                n_best += 1;
                if rng.next_bounded(n_best) == 0 {
                    best = i;
                }
            }
        }
        if best == usize::MAX {
            best = (0..k).min_by_key(|&i| sizes[i]).unwrap();
        }
        labels[v as usize] = best as Label;
        sizes[best] += 1;
        for &i in &touched {
            neighbor_weight[i] = 0;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::to_weighted_undirected;
    use spinner_graph::generators::{planted_partition, SbmConfig};

    fn community_graph() -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n: 4000,
            communities: 8,
            internal_degree: 8.0,
            external_degree: 1.0,
            skew: None,
            seed: 6,
        }))
    }

    #[test]
    fn finds_locality_and_respects_nu_cap() {
        let g = community_graph();
        let cfg = FennelConfig::new(8);
        let labels = fennel_partition(&g, &cfg);
        let phi = spinner_metrics::phi(&g, &labels);
        let hash = crate::hash::hash_partition(g.num_vertices(), 8, 1);
        assert!(phi > 2.0 * spinner_metrics::phi(&g, &hash), "phi {phi}");

        let mut sizes = vec![0u64; 8];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let cap = (1.1_f64 * 4000.0 / 8.0).ceil() as u64 + 1;
        assert!(sizes.iter().all(|&s| s <= cap), "{sizes:?}");
    }

    #[test]
    fn higher_gamma_prioritises_balance() {
        let g = community_graph();
        let loose = FennelConfig { gamma: 1.1, ..FennelConfig::new(8) };
        let tight = FennelConfig { gamma: 3.0, ..FennelConfig::new(8) };
        let spread = |labels: &[Label]| {
            let mut sizes = [0i64; 8];
            for &l in labels {
                sizes[l as usize] += 1;
            }
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap()
        };
        let s_loose = spread(&fennel_partition(&g, &loose));
        let s_tight = spread(&fennel_partition(&g, &tight));
        assert!(s_tight <= s_loose, "tight {s_tight} loose {s_loose}");
    }

    #[test]
    fn deterministic() {
        let g = community_graph();
        let cfg = FennelConfig::new(4);
        assert_eq!(fennel_partition(&g, &cfg), fennel_partition(&g, &cfg));
    }
}
