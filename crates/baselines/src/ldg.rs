//! Linear Deterministic Greedy streaming partitioning
//! (Stanton & Kleinberg, KDD 2012 — reference \[24\] of the paper).
//!
//! Each arriving vertex is placed on the partition maximising
//! `|N(v) ∩ P_i| · (1 − |P_i|/C)` where `|P_i|` is the partition's vertex
//! count and `C = n/k` its capacity. The multiplicative penalty keeps
//! partitions balanced on vertex count, which is why the paper's Table I
//! reports moderate edge-load ρ for this approach on skewed graphs.

use crate::stream::{stream_order, StreamOrder};
use crate::Label;
use spinner_graph::rng::SplitMix64;
use spinner_graph::UndirectedGraph;

/// LDG configuration.
#[derive(Debug, Clone)]
pub struct LdgConfig {
    /// Number of partitions.
    pub k: u32,
    /// Capacity slack: capacity is `(1 + slack) · n/k` vertices.
    pub slack: f64,
    /// Arrival order.
    pub order: StreamOrder,
    /// Seed for ordering and tie-breaking.
    pub seed: u64,
}

impl LdgConfig {
    /// Standard configuration: random order, 5% slack.
    pub fn new(k: u32) -> Self {
        Self { k, slack: 0.05, order: StreamOrder::Random, seed: 1 }
    }
}

/// Runs LDG over the weighted undirected graph. Edge weights participate in
/// the neighbour count so locality is measured in messages, like Spinner.
pub fn ldg_partition(g: &UndirectedGraph, cfg: &LdgConfig) -> Vec<Label> {
    let n = g.num_vertices();
    assert!(cfg.k >= 1);
    let k = cfg.k as usize;
    let capacity = ((1.0 + cfg.slack) * n as f64 / k as f64).max(1.0);
    let order = stream_order(n, cfg.order, cfg.seed);
    let mut rng = SplitMix64::new(cfg.seed ^ 0x1D6);

    const UNASSIGNED: Label = Label::MAX;
    let mut labels = vec![UNASSIGNED; n as usize];
    let mut sizes = vec![0u64; k];
    let mut neighbor_weight = vec![0u64; k];

    for v in order {
        // Weighted count of already-placed neighbours per partition.
        let (ts, ws) = g.neighbors(v);
        let mut touched: Vec<usize> = Vec::new();
        for (&t, &w) in ts.iter().zip(ws) {
            let l = labels[t as usize];
            if l != UNASSIGNED {
                if neighbor_weight[l as usize] == 0 {
                    touched.push(l as usize);
                }
                neighbor_weight[l as usize] += w as u64;
            }
        }
        let mut best = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        let mut n_best = 0u64;
        for i in 0..k {
            if sizes[i] as f64 >= capacity {
                continue;
            }
            let score = neighbor_weight[i] as f64 * (1.0 - sizes[i] as f64 / capacity);
            if score > best_score {
                best_score = score;
                best = i;
                n_best = 1;
            } else if score == best_score {
                // Reservoir-sample among ties (LDG breaks ties by least
                // loaded; with the multiplicative penalty equal scores are
                // typically equal-size partitions, so random is equivalent).
                n_best += 1;
                if rng.next_bounded(n_best) == 0 {
                    best = i;
                }
            }
        }
        // All partitions at capacity can only happen with tiny slack and
        // adversarial rounding; fall back to the smallest.
        if best == usize::MAX {
            best = (0..k).min_by_key(|&i| sizes[i]).unwrap();
        }
        labels[v as usize] = best as Label;
        sizes[best] += 1;
        for &i in &touched {
            neighbor_weight[i] = 0;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::to_weighted_undirected;
    use spinner_graph::generators::{planted_partition, SbmConfig};

    fn community_graph() -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n: 4000,
            communities: 8,
            internal_degree: 8.0,
            external_degree: 1.0,
            skew: None,
            seed: 4,
        }))
    }

    #[test]
    fn beats_hash_on_locality_and_respects_vertex_balance() {
        let g = community_graph();
        let cfg = LdgConfig::new(8);
        let labels = ldg_partition(&g, &cfg);
        let phi = spinner_metrics::phi(&g, &labels);
        let hash = crate::hash::hash_partition(g.num_vertices(), 8, 1);
        let phi_hash = spinner_metrics::phi(&g, &hash);
        assert!(phi > 2.0 * phi_hash, "ldg {phi} vs hash {phi_hash}");

        let mut sizes = vec![0u64; 8];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let cap = (1.05 * 4000.0 / 8.0) as u64 + 1;
        assert!(sizes.iter().all(|&s| s <= cap), "{sizes:?}");
    }

    #[test]
    fn all_vertices_assigned() {
        let g = community_graph();
        let labels = ldg_partition(&g, &LdgConfig::new(5));
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn deterministic() {
        let g = community_graph();
        let cfg = LdgConfig::new(4);
        assert_eq!(ldg_partition(&g, &cfg), ldg_partition(&g, &cfg));
    }

    #[test]
    fn k_one_puts_everything_in_partition_zero() {
        let g = community_graph();
        let labels = ldg_partition(&g, &LdgConfig::new(1));
        assert!(labels.iter().all(|&l| l == 0));
    }
}
