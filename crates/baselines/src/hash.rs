//! Hash partitioning: the lightweight default of large-scale graph systems
//! ("systems often resort to lightweight solutions, such as hash
//! partitioning, despite the poor locality that it offers", §I).

use crate::Label;
use spinner_graph::rng::mix3;
use spinner_graph::VertexId;

/// Assigns `label(v) = hash(v) mod k`, mirroring Giraph's default placement.
pub fn hash_partition(num_vertices: VertexId, k: u32, seed: u64) -> Vec<Label> {
    assert!(k >= 1);
    (0..num_vertices).map(|v| (mix3(seed, v as u64, 0x4A54) % k as u64) as Label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::to_weighted_undirected;
    use spinner_graph::generators::{planted_partition, SbmConfig};

    #[test]
    fn covers_all_partitions_roughly_evenly() {
        let labels = hash_partition(10_000, 16, 1);
        let mut counts = vec![0u32; 16];
        for &l in &labels {
            counts[l as usize] += 1;
        }
        for &c in &counts {
            assert!((500..750).contains(&c), "count {c}");
        }
    }

    #[test]
    fn phi_is_about_one_over_k() {
        let g = to_weighted_undirected(&planted_partition(SbmConfig {
            n: 5000,
            communities: 10,
            internal_degree: 8.0,
            external_degree: 2.0,
            skew: None,
            seed: 2,
        }));
        for k in [2u32, 8, 32] {
            let labels = hash_partition(5000, k, 7);
            let phi = spinner_metrics::phi(&g, &labels);
            let expect = 1.0 / k as f64;
            assert!(
                (phi - expect).abs() < 0.35 * expect + 0.02,
                "k={k}: phi {phi} vs {expect}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hash_partition(100, 4, 3), hash_partition(100, 4, 3));
        assert_ne!(hash_partition(100, 4, 3), hash_partition(100, 4, 4));
    }
}
