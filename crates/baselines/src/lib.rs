//! Baseline partitioners from the Spinner paper's evaluation (Table I and
//! the hash-partitioning comparisons), reimplemented from their original
//! papers:
//!
//! - [`hash`]: hash partitioning, the de-facto standard Spinner aims to
//!   replace.
//! - [`ldg`]: Stanton & Kleinberg's Linear Deterministic Greedy streaming
//!   partitioner \[24\].
//! - [`fennel`]: Tsourakakis et al.'s Fennel streaming partitioner \[28\].
//! - [`multilevel`]: a sequential multilevel partitioner in the METIS
//!   tradition \[12\] (heavy-edge matching coarsening, balanced initial
//!   assignment, FM-style boundary refinement), with vertex weights set to
//!   weighted degree so that balance is on edges like Spinner's.
//! - [`wang`]: the approach of Wang et al. \[30\]: LPA-based coarsening,
//!   multilevel partitioning of the coarse graph, projection back —
//!   *vertex*-balanced, which is why it shows high edge-load ρ in Table I.
//!
//! All partitioners take the weighted undirected graph of Eq. 3 and return a
//! dense label vector, so results are directly comparable with
//! `spinner-core` through `spinner-metrics`.

pub mod fennel;
pub mod hash;
pub mod ldg;
pub mod multilevel;
pub mod stream;
pub mod wang;

pub use fennel::{fennel_partition, FennelConfig};
pub use hash::hash_partition;
pub use ldg::{ldg_partition, LdgConfig};
pub use multilevel::{multilevel_partition, MultilevelConfig};
pub use wang::{wang_partition, WangConfig};

/// A partition label, matching `spinner_core::Label`.
pub type Label = u32;
