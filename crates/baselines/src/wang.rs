//! Wang et al.'s partitioning approach ("How to Partition a Billion-Node
//! Graph", ICDE 2014 — reference \[30\] of the paper).
//!
//! Pipeline: (1) coarsen the graph with size-capped label propagation
//! (vertices adopt the most common label among neighbours, but a "community"
//! may not exceed a vertex-count cap); (2) partition the coarse
//! community graph with a high-quality offline method (here: our multilevel
//! partitioner); (3) project back.
//!
//! Crucially, the method balances *vertex counts*, not edges — which is why
//! the paper's Table I shows it with high edge-load ρ on the skewed Twitter
//! graph ("because Wang et al. balances on the number of vertices, not
//! edges, it produces partitionings with high values of ρ").

use crate::multilevel::{partition_work_graph, MultilevelConfig, WorkGraph};
use crate::Label;
use spinner_graph::rng::SplitMix64;
use spinner_graph::UndirectedGraph;

/// Wang-style configuration.
#[derive(Debug, Clone)]
pub struct WangConfig {
    /// Number of partitions.
    pub k: u32,
    /// LPA coarsening rounds.
    pub lpa_rounds: u32,
    /// Community vertex-count cap as a multiple of `n / (k · granularity)`;
    /// larger granularity produces more, smaller communities.
    pub granularity: u32,
    /// Seed.
    pub seed: u64,
}

impl WangConfig {
    /// Defaults approximating the original paper's settings.
    pub fn new(k: u32) -> Self {
        Self { k, lpa_rounds: 5, granularity: 8, seed: 1 }
    }
}

/// Runs the Wang-style pipeline.
pub fn wang_partition(g: &UndirectedGraph, cfg: &WangConfig) -> Vec<Label> {
    let n = g.num_vertices() as usize;
    assert!(cfg.k >= 1);
    if n == 0 {
        return Vec::new();
    }
    // --- Stage 1: size-capped LPA coarsening (vertex-count capped). ---
    let cap = (n as f64 / (cfg.k as f64 * cfg.granularity as f64)).ceil().max(1.0) as u64;
    let mut community: Vec<u32> = (0..n as u32).collect();
    let mut comm_size: Vec<u64> = vec![1; n];
    let mut counts: Vec<u64> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed ^ 0x3A26);

    for _round in 0..cfg.lpa_rounds {
        let mut moves = 0usize;
        for v in 0..n as u32 {
            let (ts, ws) = g.neighbors(v);
            if ts.is_empty() {
                continue;
            }
            for (&t, &w) in ts.iter().zip(ws) {
                let c = community[t as usize];
                if counts[c as usize] == 0 {
                    touched.push(c);
                }
                counts[c as usize] += w as u64;
            }
            let current = community[v as usize];
            let mut best = current;
            let mut best_count = counts[current as usize];
            let mut ties = 1u64;
            for &c in &touched {
                if c == current {
                    continue;
                }
                // Respect the community size cap.
                if comm_size[c as usize] >= cap {
                    continue;
                }
                let cc = counts[c as usize];
                if cc > best_count {
                    best = c;
                    best_count = cc;
                    ties = 1;
                } else if cc == best_count && best != current {
                    ties += 1;
                    if rng.next_bounded(ties) == 0 {
                        best = c;
                    }
                }
            }
            for &c in &touched {
                counts[c as usize] = 0;
            }
            touched.clear();
            if best != current {
                community[v as usize] = best;
                comm_size[current as usize] -= 1;
                comm_size[best as usize] += 1;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }

    // Compact community ids.
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut map = vec![0u32; n];
    for v in 0..n {
        let c = community[v] as usize;
        if remap[c] == u32::MAX {
            remap[c] = next;
            next += 1;
        }
        map[v] = remap[c];
    }

    // --- Stage 2: multilevel partitioning of the community graph with
    //     vertex-count weights (the method's vertex balance). ---
    let fine = WorkGraph::from_undirected_unit_weights(g);
    let coarse = fine.contract(&map, next as usize);
    let ml_cfg = MultilevelConfig {
        k: cfg.k,
        balance: 1.05,
        coarsen_to: 30,
        refine_passes: 8,
        seed: cfg.seed,
        vertex_balance: true,
    };
    let coarse_labels = partition_work_graph(coarse, &ml_cfg);

    // --- Stage 3: projection. ---
    (0..n).map(|v| coarse_labels[map[v] as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::to_weighted_undirected;
    use spinner_graph::generators::{planted_partition, rmat, RmatConfig, SbmConfig};

    fn community_graph() -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n: 4000,
            communities: 8,
            internal_degree: 8.0,
            external_degree: 1.0,
            skew: None,
            seed: 10,
        }))
    }

    #[test]
    fn finds_locality_with_vertex_balance() {
        let g = community_graph();
        let labels = wang_partition(&g, &WangConfig::new(8));
        let phi = spinner_metrics::phi(&g, &labels);
        assert!(phi > 0.4, "phi {phi}");
        // Vertex counts are balanced...
        let mut sizes = vec![0u64; 8];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let ideal = 4000.0 / 8.0;
        assert!(sizes.iter().all(|&s| (s as f64) < 1.25 * ideal), "sizes {sizes:?}");
    }

    #[test]
    fn edge_rho_higher_than_edge_balanced_methods_on_skewed_graph() {
        let g = to_weighted_undirected(&rmat(RmatConfig::graph500(11, 10, 3)));
        let wang = wang_partition(&g, &WangConfig::new(8));
        let ml = crate::multilevel_partition(&g, &MultilevelConfig::new(8));
        let rho_wang = spinner_metrics::rho(&g, &wang, 8);
        let rho_ml = spinner_metrics::rho(&g, &ml, 8);
        // The paper's Table I effect: vertex balance => poor edge balance on
        // hub-dominated graphs.
        assert!(rho_wang > rho_ml, "wang {rho_wang} vs multilevel {rho_ml}");
    }

    #[test]
    fn all_labels_in_range_and_deterministic() {
        let g = community_graph();
        let cfg = WangConfig::new(5);
        let a = wang_partition(&g, &cfg);
        let b = wang_partition(&g, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| l < 5));
    }
}
