//! Streaming order for the one-pass partitioners.
//!
//! Streaming partitioners are sensitive to the order in which vertices
//! arrive; random order is the standard evaluation setting of both the LDG
//! and Fennel papers.

use spinner_graph::rng::SplitMix64;
use spinner_graph::VertexId;

/// Vertex arrival order for a streaming partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOrder {
    /// Vertices arrive in id order (adversarially good for generators that
    /// emit contiguous communities).
    Sequential,
    /// Uniformly random permutation (the standard evaluation setting).
    Random,
}

/// Materialises the arrival order.
pub fn stream_order(n: VertexId, order: StreamOrder, seed: u64) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..n).collect();
    if order == StreamOrder::Random {
        // Fisher-Yates with the deterministic generator.
        let mut rng = SplitMix64::new(seed ^ 0x57AEA);
        for i in (1..ids.len()).rev() {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            ids.swap(i, j);
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_identity() {
        assert_eq!(stream_order(5, StreamOrder::Sequential, 9), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_is_a_permutation() {
        let order = stream_order(1000, StreamOrder::Random, 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(order, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(
            stream_order(100, StreamOrder::Random, 5),
            stream_order(100, StreamOrder::Random, 5)
        );
        assert_ne!(
            stream_order(100, StreamOrder::Random, 5),
            stream_order(100, StreamOrder::Random, 6)
        );
    }
}
