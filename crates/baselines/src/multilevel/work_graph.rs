//! The mutable weighted graph the multilevel pipeline operates on.

use spinner_graph::UndirectedGraph;

/// An adjacency-list weighted graph with vertex weights; cheap to contract.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    /// Vertex weights (load contribution; degree-based for edge balance).
    pub vwgt: Vec<u64>,
    /// Adjacency: `(neighbor, edge_weight)`, deduplicated, no self-loops.
    pub adj: Vec<Vec<(u32, u64)>>,
}

impl WorkGraph {
    /// Builds from an undirected graph with vertex weight = weighted degree
    /// (balance on edges, like Spinner/ρ).
    pub fn from_undirected(g: &UndirectedGraph) -> Self {
        Self::from_undirected_with(g, |v| g.weighted_degree(v).max(1))
    }

    /// Builds with unit vertex weights (balance on vertex counts, like Wang
    /// et al.).
    pub fn from_undirected_unit_weights(g: &UndirectedGraph) -> Self {
        Self::from_undirected_with(g, |_| 1)
    }

    fn from_undirected_with(g: &UndirectedGraph, weight: impl Fn(u32) -> u64) -> Self {
        let n = g.num_vertices() as usize;
        let mut adj = Vec::with_capacity(n);
        let mut vwgt = Vec::with_capacity(n);
        for v in g.vertices() {
            let (ts, ws) = g.neighbors(v);
            adj.push(ts.iter().zip(ws).map(|(&t, &w)| (t, w as u64)).collect::<Vec<_>>());
            vwgt.push(weight(v));
        }
        Self { vwgt, adj }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Contracts the graph given a fine→coarse vertex map with `coarse_n`
    /// coarse vertices: vertex weights add up, parallel edges merge their
    /// weights, intra-cluster edges vanish.
    pub fn contract(&self, map: &[u32], coarse_n: usize) -> WorkGraph {
        let mut vwgt = vec![0u64; coarse_n];
        for (v, &c) in map.iter().enumerate() {
            vwgt[c as usize] += self.vwgt[v];
        }
        // Merge adjacency through a scratch accumulator per coarse vertex.
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); coarse_n];
        let mut acc: Vec<u64> = vec![0; coarse_n];
        let mut touched: Vec<u32> = Vec::new();
        // Group fine vertices by coarse id for cache-friendly accumulation.
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); coarse_n];
        for (v, &c) in map.iter().enumerate() {
            members[c as usize].push(v as u32);
        }
        for (c, verts) in members.iter().enumerate() {
            for &v in verts {
                for &(t, w) in &self.adj[v as usize] {
                    let ct = map[t as usize];
                    if ct as usize == c {
                        continue; // interior edge disappears
                    }
                    if acc[ct as usize] == 0 {
                        touched.push(ct);
                    }
                    acc[ct as usize] += w;
                }
            }
            touched.sort_unstable();
            let list: Vec<(u32, u64)> =
                touched.iter().map(|&ct| (ct, acc[ct as usize])).collect();
            for &ct in &touched {
                acc[ct as usize] = 0;
            }
            touched.clear();
            adj[c] = list;
        }
        WorkGraph { vwgt, adj }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    fn path4() -> WorkGraph {
        let g = from_undirected_edges(
            &GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3)]).build(),
        );
        WorkGraph::from_undirected(&g)
    }

    #[test]
    fn vertex_weights_are_degrees() {
        let wg = path4();
        assert_eq!(wg.vwgt, vec![1, 2, 2, 1]);
        assert_eq!(wg.total_weight(), 6);
    }

    #[test]
    fn contraction_merges_weights_and_drops_interior_edges() {
        let wg = path4();
        // Contract {0,1} -> 0 and {2,3} -> 1.
        let coarse = wg.contract(&[0, 0, 1, 1], 2);
        assert_eq!(coarse.vwgt, vec![3, 3]);
        assert_eq!(coarse.adj[0], vec![(1, 1)]);
        assert_eq!(coarse.adj[1], vec![(0, 1)]);
    }

    #[test]
    fn contraction_accumulates_parallel_edges() {
        // Square 0-1-2-3-0; contract {0,1} and {2,3}: two parallel edges
        // between the clusters merge into weight 2.
        let g = from_undirected_edges(
            &GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build(),
        );
        let wg = WorkGraph::from_undirected(&g);
        let coarse = wg.contract(&[0, 0, 1, 1], 2);
        assert_eq!(coarse.adj[0], vec![(1, 2)]);
        assert_eq!(coarse.vwgt, vec![4, 4]);
    }

    #[test]
    fn unit_weights_mode() {
        let g =
            from_undirected_edges(&GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build());
        let wg = WorkGraph::from_undirected_unit_weights(&g);
        assert_eq!(wg.vwgt, vec![1, 1, 1]);
    }
}
