//! Heavy-edge matching coarsening.
//!
//! Vertices are visited in random order; each unmatched vertex is matched
//! with the unmatched neighbour connected by the heaviest edge (HEM), then
//! matched pairs are contracted. HEM preserves cut structure well because
//! heavy edges — which should never be cut — vanish into coarse vertices.

use super::work_graph::WorkGraph;
use spinner_graph::rng::SplitMix64;

/// One round of heavy-edge matching + contraction. Returns the coarse graph
/// and the fine→coarse map.
pub fn coarsen_once(g: &WorkGraph, seed: u64) -> (WorkGraph, Vec<u32>) {
    let n = g.num_vertices();
    const UNMATCHED: u32 = u32::MAX;
    let mut matched = vec![UNMATCHED; n];

    // Random visit order for matching quality (and determinism per seed).
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = SplitMix64::new(seed ^ 0xC0A25E);
    for i in (1..n).rev() {
        let j = rng.next_bounded(i as u64 + 1) as usize;
        order.swap(i, j);
    }

    for &v in &order {
        if matched[v as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(u32, u64)> = None;
        for &(t, w) in &g.adj[v as usize] {
            if matched[t as usize] == UNMATCHED && t != v {
                match best {
                    Some((_, bw)) if bw >= w => {}
                    _ => best = Some((t, w)),
                }
            }
        }
        match best {
            Some((t, _)) => {
                matched[v as usize] = t;
                matched[t as usize] = v;
            }
            None => matched[v as usize] = v, // stays single
        }
    }

    // Assign coarse ids: one per matched pair / singleton.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = matched[v as usize];
        map[v as usize] = next;
        if m != v {
            map[m as usize] = next;
        }
        next += 1;
    }
    let coarse = g.contract(&map, next as usize);
    (coarse, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    fn work_graph(n: u32, edges: &[(u32, u32)]) -> WorkGraph {
        WorkGraph::from_undirected(&from_undirected_edges(
            &GraphBuilder::new(n).add_edges(edges.iter().copied()).build(),
        ))
    }

    #[test]
    fn matching_roughly_halves_a_cycle() {
        let edges: Vec<(u32, u32)> = (0..100).map(|i| (i, (i + 1) % 100)).collect();
        let g = work_graph(100, &edges);
        let (coarse, map) = coarsen_once(&g, 1);
        assert!(coarse.num_vertices() <= 60, "coarse n {}", coarse.num_vertices());
        assert!(coarse.num_vertices() >= 50);
        // Map covers all coarse ids.
        let max = *map.iter().max().unwrap() as usize;
        assert_eq!(max + 1, coarse.num_vertices());
    }

    #[test]
    fn total_vertex_weight_is_preserved() {
        let edges: Vec<(u32, u32)> =
            (0..50).flat_map(|i| [(i, (i + 1) % 50), (i, (i + 7) % 50)]).collect();
        let g = work_graph(50, &edges);
        let before = g.total_weight();
        let (coarse, _) = coarsen_once(&g, 3);
        assert_eq!(coarse.total_weight(), before);
    }

    #[test]
    fn heavy_edges_are_contracted_first() {
        // Two reciprocal (weight-2) pairs 0<->1 and 2<->3 cross-linked by
        // weight-1 edges. Whatever the visit order, every vertex's heaviest
        // unmatched neighbour is its reciprocal partner, so HEM must
        // contract exactly those pairs.
        let d = GraphBuilder::new(4)
            .add_edges([(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)])
            .build();
        let u = spinner_graph::conversion::to_weighted_undirected(&d);
        let g = WorkGraph::from_undirected(&u);
        for seed in 0..10 {
            let (_, map) = coarsen_once(&g, seed);
            assert_eq!(map[0], map[1], "heavy pair 0-1 should contract (seed {seed})");
            assert_eq!(map[2], map[3], "heavy pair 2-3 should contract (seed {seed})");
        }
    }

    #[test]
    fn isolated_vertices_stay_single() {
        let g = work_graph(3, &[(0, 1)]);
        let (coarse, map) = coarsen_once(&g, 7);
        assert_eq!(coarse.num_vertices(), 2);
        assert_eq!(map[0], map[1]);
        assert_ne!(map[2], map[0]);
    }
}
