//! A sequential multilevel k-way partitioner in the METIS tradition
//! (Karypis & Kumar — reference \[12\] of the paper).
//!
//! Three classic stages:
//!
//! 1. **Coarsening** ([`coarsen`]): repeated heavy-edge matching contracts
//!    the graph until it is small enough to partition directly.
//! 2. **Initial partitioning** ([`initial`]): balanced greedy assignment of
//!    the coarsest graph.
//! 3. **Uncoarsening + refinement** ([`refine`]): the partition is projected
//!    back level by level, with FM-style boundary refinement at each level.
//!
//! Vertex weights default to weighted degree so balance is on *edges*,
//! matching Spinner's objective and the paper's ρ metric (the Wang baseline
//! reuses the machinery with unit vertex weights for vertex balance).
//!
//! This is the "golden standard" comparator of Table I: strongest locality,
//! tight balance, but inherently sequential and offline.

mod coarsen;
mod initial;
mod refine;
mod work_graph;

pub use work_graph::WorkGraph;

use crate::Label;
use spinner_graph::UndirectedGraph;

/// Multilevel partitioner configuration.
#[derive(Debug, Clone)]
pub struct MultilevelConfig {
    /// Number of partitions.
    pub k: u32,
    /// Balance constraint: no partition exceeds `balance · (total/k)` vertex
    /// weight (METIS default ~1.03).
    pub balance: f64,
    /// Stop coarsening when at most `coarsen_to · k` vertices remain (or the
    /// graph stops shrinking).
    pub coarsen_to: usize,
    /// FM refinement passes per level.
    pub refine_passes: u32,
    /// Seed for matching order and tie-breaks.
    pub seed: u64,
    /// Balance vertices instead of edges (used by the Wang-style baseline).
    pub vertex_balance: bool,
}

impl MultilevelConfig {
    /// METIS-flavoured defaults, balancing on edges.
    pub fn new(k: u32) -> Self {
        Self {
            k,
            balance: 1.03,
            coarsen_to: 30,
            refine_passes: 8,
            seed: 1,
            vertex_balance: false,
        }
    }
}

/// Partitions the graph with the full multilevel pipeline.
pub fn multilevel_partition(g: &UndirectedGraph, cfg: &MultilevelConfig) -> Vec<Label> {
    assert!(cfg.k >= 1);
    let base = if cfg.vertex_balance {
        WorkGraph::from_undirected_unit_weights(g)
    } else {
        WorkGraph::from_undirected(g)
    };
    partition_work_graph(base, cfg)
}

/// Partitions an explicit [`WorkGraph`] (entry point for the Wang baseline,
/// which contracts communities first).
pub fn partition_work_graph(base: WorkGraph, cfg: &MultilevelConfig) -> Vec<Label> {
    // Coarsening phase: keep each level's graph plus the fine→coarse map.
    let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new();
    let mut current = base;
    let target = (cfg.coarsen_to * cfg.k as usize).max(32);
    let mut round = 0u64;
    while current.num_vertices() > target {
        let (coarse, map) = coarsen::coarsen_once(&current, cfg.seed ^ round);
        // Stop if the matching barely shrank the graph (few matchable edges).
        if coarse.num_vertices() as f64 > 0.95 * current.num_vertices() as f64 {
            levels.push((current, map.clone()));
            current = coarse;
            break;
        }
        levels.push((current, map));
        current = coarse;
        round += 1;
    }

    // Initial partitioning of the coarsest level.
    let mut labels = initial::initial_partition(&current, cfg);
    refine::refine(&current, &mut labels, cfg);

    // Uncoarsening: project and refine level by level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_labels = vec![0 as Label; fine.num_vertices()];
        for (v, l) in fine_labels.iter_mut().enumerate() {
            *l = labels[map[v] as usize];
        }
        labels = fine_labels;
        refine::refine(&fine, &mut labels, cfg);
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::to_weighted_undirected;
    use spinner_graph::generators::{planted_partition, SbmConfig};

    fn community_graph(n: u32, communities: u32) -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n,
            communities,
            internal_degree: 8.0,
            external_degree: 1.0,
            skew: None,
            seed: 8,
        }))
    }

    #[test]
    fn strong_locality_and_balance_on_community_graph() {
        let g = community_graph(4000, 8);
        let labels = multilevel_partition(&g, &MultilevelConfig::new(8));
        let phi = spinner_metrics::phi(&g, &labels);
        let rho = spinner_metrics::rho(&g, &labels, 8);
        assert!(phi > 0.75, "phi {phi}");
        assert!(rho < 1.10, "rho {rho}");
    }

    #[test]
    fn beats_streaming_baselines_on_locality() {
        let g = community_graph(3000, 6);
        let ml = multilevel_partition(&g, &MultilevelConfig::new(6));
        let ldg = crate::ldg_partition(&g, &crate::LdgConfig::new(6));
        let phi_ml = spinner_metrics::phi(&g, &ml);
        let phi_ldg = spinner_metrics::phi(&g, &ldg);
        assert!(phi_ml >= phi_ldg - 0.02, "ml {phi_ml} vs ldg {phi_ldg}");
    }

    #[test]
    fn handles_small_graphs_without_coarsening() {
        let g = community_graph(300, 2);
        let labels = multilevel_partition(&g, &MultilevelConfig::new(2));
        assert!(labels.iter().all(|&l| l < 2));
        let rho = spinner_metrics::rho(&g, &labels, 2);
        assert!(rho < 1.2, "rho {rho}");
    }

    #[test]
    fn k_one_trivial() {
        let g = community_graph(200, 2);
        let labels = multilevel_partition(&g, &MultilevelConfig::new(1));
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn deterministic() {
        let g = community_graph(1000, 4);
        let cfg = MultilevelConfig::new(4);
        assert_eq!(multilevel_partition(&g, &cfg), multilevel_partition(&g, &cfg));
    }
}
