//! Initial partitioning of the coarsest graph.
//!
//! Greedy graph growing: each partition in turn is seeded with the heaviest
//! unassigned vertex and grows along its strongest connections (max-gain
//! frontier) until it reaches its weight share. Leftovers go to the lightest
//! partition. Refinement cleans up afterwards, so simplicity beats
//! sophistication here.

use super::work_graph::WorkGraph;
use super::MultilevelConfig;
use crate::Label;
use std::collections::BinaryHeap;

const UNASSIGNED: Label = Label::MAX;

/// Produces a balanced initial assignment of the coarsest graph.
pub fn initial_partition(g: &WorkGraph, cfg: &MultilevelConfig) -> Vec<Label> {
    let n = g.num_vertices();
    let k = cfg.k as usize;
    let total = g.total_weight();
    let share = total as f64 / k as f64;

    let mut labels = vec![UNASSIGNED; n];
    let mut loads = vec![0u64; k];

    // Heaviest-first seed order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.vwgt[v as usize]));
    let mut seed_cursor = 0usize;

    // Connection weight towards the region currently being grown, plus a
    // lazy-deletion max-heap of (gain, vertex) candidates.
    let mut gain = vec![0u64; n];
    let mut touched: Vec<u32> = Vec::new();

    for part in 0..k {
        // Find the heaviest still-unassigned seed.
        while seed_cursor < n && labels[order[seed_cursor] as usize] != UNASSIGNED {
            seed_cursor += 1;
        }
        let Some(&seed) = order.get(seed_cursor) else {
            break;
        };

        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::new();
        let assign = |v: u32,
                      labels: &mut Vec<Label>,
                      loads: &mut Vec<u64>,
                      heap: &mut BinaryHeap<(u64, u32)>,
                      gain: &mut Vec<u64>,
                      touched: &mut Vec<u32>| {
            labels[v as usize] = part as Label;
            loads[part] += g.vwgt[v as usize];
            for &(t, w) in &g.adj[v as usize] {
                if labels[t as usize] == UNASSIGNED {
                    if gain[t as usize] == 0 {
                        touched.push(t);
                    }
                    gain[t as usize] += w;
                    heap.push((gain[t as usize], t));
                }
            }
        };
        assign(seed, &mut labels, &mut loads, &mut heap, &mut gain, &mut touched);

        while (loads[part] as f64) < share {
            // Pop until a live entry (lazy deletion).
            let Some((gval, v)) = heap.pop() else {
                break;
            };
            if labels[v as usize] != UNASSIGNED || gain[v as usize] != gval {
                continue;
            }
            assign(v, &mut labels, &mut loads, &mut heap, &mut gain, &mut touched);
        }
        // Reset gains for the next region.
        for &t in &touched {
            gain[t as usize] = 0;
        }
        touched.clear();
    }

    // Leftovers (disconnected bits, or everything if k regions filled up
    // early): lightest partition first, heaviest vertices first.
    for &v in &order {
        if labels[v as usize] == UNASSIGNED {
            let lightest = (0..k).min_by_key(|&i| loads[i]).unwrap();
            labels[v as usize] = lightest as Label;
            loads[lightest] += g.vwgt[v as usize];
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    fn work_graph(n: u32, edges: &[(u32, u32)]) -> WorkGraph {
        WorkGraph::from_undirected(&from_undirected_edges(
            &GraphBuilder::new(n).add_edges(edges.iter().copied()).build(),
        ))
    }

    #[test]
    fn two_cliques_split_cleanly_after_refinement() {
        // Cliques {0..4} and {5..9} joined by one bridge. Region growing
        // may pick the bridge on an early tie; the initial+refine contract
        // must still separate the cliques.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((4, 5));
        let g = work_graph(10, &edges);
        let cfg = MultilevelConfig::new(2);
        let mut labels = initial_partition(&g, &cfg);
        super::super::refine::refine(&g, &mut labels, &cfg);
        // Each clique should be monochromatic.
        assert!(labels[0..5].iter().all(|&l| l == labels[0]), "{labels:?}");
        assert!(labels[5..10].iter().all(|&l| l == labels[5]), "{labels:?}");
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn all_vertices_assigned_and_loads_close() {
        let edges: Vec<(u32, u32)> =
            (0..200).flat_map(|i| [(i, (i + 1) % 200), (i, (i + 5) % 200)]).collect();
        let g = work_graph(200, &edges);
        let cfg = MultilevelConfig::new(4);
        let labels = initial_partition(&g, &cfg);
        assert!(labels.iter().all(|&l| l < 4));
        let mut loads = vec![0u64; 4];
        for (v, &l) in labels.iter().enumerate() {
            loads[l as usize] += g.vwgt[v];
        }
        let ideal = g.total_weight() as f64 / 4.0;
        for &l in &loads {
            assert!((l as f64) < 1.5 * ideal, "loads {loads:?}");
        }
    }

    #[test]
    fn handles_disconnected_graph() {
        let g = work_graph(6, &[(0, 1), (2, 3)]);
        let labels = initial_partition(&g, &MultilevelConfig::new(3));
        assert!(labels.iter().all(|&l| l < 3));
    }
}
