//! FM-style boundary refinement with best-prefix rollback.
//!
//! Each pass sweeps the vertices once, tentatively moving each at most once
//! to its best-gain admissible partition. Moves may temporarily overshoot
//! the balance cap (up to a relaxation factor) — that is what lets FM escape
//! states where only a *pair* of moves improves the cut. At the end of the
//! pass the best prefix of the move sequence is kept (judged by feasibility
//! first, then cumulative gain, then peak load) and the rest is rolled back.

use super::work_graph::WorkGraph;
use super::MultilevelConfig;
use crate::Label;

/// How far a tentative move may overshoot the balance cap within a pass.
const RELAXATION: f64 = 1.3;

/// Runs up to `cfg.refine_passes` FM passes in place.
pub fn refine(g: &WorkGraph, labels: &mut [Label], cfg: &MultilevelConfig) {
    let n = g.num_vertices();
    let k = cfg.k as usize;
    if k <= 1 || n == 0 {
        return;
    }
    let total = g.total_weight();
    let max_load = (cfg.balance * total as f64 / k as f64).max(1.0);
    let relax_cap = max_load * RELAXATION;

    let mut loads = vec![0u64; k];
    for (v, &l) in labels.iter().enumerate() {
        loads[l as usize] += g.vwgt[v];
    }

    let mut conn = vec![0u64; k];
    let mut touched: Vec<Label> = Vec::new();
    let mut moved = vec![false; n];

    for _ in 0..cfg.refine_passes {
        moved.iter_mut().for_each(|m| *m = false);
        // The tentative move log and the per-prefix score.
        let mut log: Vec<(usize, usize, usize)> = Vec::new(); // (v, from, to)
        let mut cum_gain: i64 = 0;
        let score_of = |loads: &[u64], gain: i64| -> (bool, i64, i64) {
            let max = *loads.iter().max().unwrap();
            ((max as f64) <= max_load, gain, -(max as i64))
        };
        let empty_score = score_of(&loads, 0);
        let mut best_score = empty_score;
        let mut best_prefix = 0usize;

        for v in 0..n {
            if moved[v] || g.adj[v].is_empty() {
                continue;
            }
            let current = labels[v] as usize;
            debug_assert!(touched.iter().all(|&l| conn[l as usize] == 0));
            let mut internal = 0u64;
            for &(t, w) in &g.adj[v] {
                let lt = labels[t as usize] as usize;
                if lt == current {
                    internal += w;
                } else {
                    if conn[lt] == 0 {
                        touched.push(lt as Label);
                    }
                    conn[lt] += w;
                }
            }
            let w_v = g.vwgt[v];
            let over_cap = loads[current] as f64 > max_load;

            // Candidate targets: adjacent partitions, plus — when the source
            // is over the cap — the globally lightest one (the vertex may
            // have no boundary at all, like a spoke behind a hub).
            let lightest = if over_cap {
                (0..k).filter(|&i| i != current).min_by_key(|&i| loads[i])
            } else {
                None
            };
            let mut best: Option<(usize, i64)> = None;
            for cand in touched.iter().map(|&l| l as usize).chain(lightest) {
                if cand == current {
                    continue;
                }
                let target_after = loads[cand] + w_v;
                let fits_strict = (target_after as f64) <= max_load;
                let rebalances = over_cap && target_after < loads[current];
                // Overshooting the strict cap (up to the relaxation) is only
                // allowed for vertices escaping an over-cap partition — the
                // pair-swap pattern the rollback exists for. Without the
                // source-side condition, positive-gain moves pile into
                // already-full partitions and the pass never reaches a
                // feasible prefix.
                let relaxed_escape = over_cap && (target_after as f64) <= relax_cap;
                if !fits_strict && !rebalances && !relaxed_escape {
                    continue;
                }
                let gain = conn[cand] as i64 - internal as i64;
                let admissible = gain > 0
                    || (gain == 0 && loads[current] > target_after)
                    || (gain < 0 && rebalances);
                if !admissible {
                    continue;
                }
                let better = match best {
                    Some((bt, bg)) => gain > bg || (gain == bg && loads[cand] < loads[bt]),
                    None => true,
                };
                if better {
                    best = Some((cand, gain));
                }
            }
            for &lt in &touched {
                conn[lt as usize] = 0;
            }
            touched.clear();

            if let Some((target, gain)) = best {
                labels[v] = target as Label;
                loads[current] -= w_v;
                loads[target] += w_v;
                moved[v] = true;
                cum_gain += gain;
                log.push((v, current, target));
                let s = score_of(&loads, cum_gain);
                if s > best_score {
                    best_score = s;
                    best_prefix = log.len();
                }
            }
        }

        // Roll back everything after the best prefix.
        for &(v, from, to) in log[best_prefix..].iter().rev() {
            labels[v] = from as Label;
            loads[to] -= g.vwgt[v];
            loads[from] += g.vwgt[v];
        }
        if best_prefix == 0 || best_score <= empty_score {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    fn work_graph(n: u32, edges: &[(u32, u32)]) -> WorkGraph {
        WorkGraph::from_undirected(&from_undirected_edges(
            &GraphBuilder::new(n).add_edges(edges.iter().copied()).build(),
        ))
    }

    /// Two triangles bridged by one edge; a deliberately bad split must be
    /// repaired by refinement.
    #[test]
    fn repairs_bad_cut() {
        let g = work_graph(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let mut labels = vec![1, 0, 0, 1, 1, 1];
        refine(&g, &mut labels, &MultilevelConfig::new(2));
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
        assert_ne!(labels[0], labels[3]);
    }

    /// The star needs non-boundary rebalancing moves: spokes sharing the
    /// hub's partition have no adjacent alternative partition.
    #[test]
    fn respects_balance_constraint() {
        let edges: Vec<(u32, u32)> = (1..9).map(|i| (0u32, i)).collect();
        let g = work_graph(9, &edges);
        let mut labels: Vec<Label> = (0..9).map(|v| (v % 2) as Label).collect();
        let cfg = MultilevelConfig::new(2);
        refine(&g, &mut labels, &cfg);
        let mut loads = vec![0u64; 2];
        for (v, &l) in labels.iter().enumerate() {
            loads[l as usize] += g.vwgt[v];
        }
        let max_load = (cfg.balance * g.total_weight() as f64 / 2.0) as u64;
        assert!(loads.iter().all(|&l| l <= max_load + 1), "{loads:?}");
    }

    /// A cut that only a *pair* of moves can repair (the FM rollback case):
    /// moving either vertex alone violates balance, moving both improves
    /// cut and balance.
    #[test]
    fn escapes_single_move_deadlock() {
        // Cliques {0..4} and {5..9} with bridge 4-5, mislabelled so that
        // v4 sits with the wrong clique.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((4, 5));
        let g = work_graph(10, &edges);
        let mut labels = vec![1, 1, 1, 1, 0, 0, 1, 0, 0, 0];
        refine(&g, &mut labels, &MultilevelConfig::new(2));
        assert!(labels[0..5].iter().all(|&l| l == labels[0]), "{labels:?}");
        assert!(labels[5..10].iter().all(|&l| l == labels[5]), "{labels:?}");
    }

    #[test]
    fn noop_on_k_equal_one() {
        let g = work_graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut labels = vec![0; 4];
        refine(&g, &mut labels, &MultilevelConfig::new(1));
        assert_eq!(labels, vec![0; 4]);
    }
}
