//! Spinner configuration.

use spinner_pregel::{RetryConfig, TransportKind, WireFormat};

/// What a partition's load counts (§II-A: "although our approach is general,
/// here we will focus on balancing partitions on the number of edges they
/// contain" — both options are implemented).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceObjective {
    /// Balance weighted-degree mass (messages) — the paper's default.
    #[default]
    Edges,
    /// Balance vertex counts (the objective of Wang et al. [30]).
    Vertices,
}

/// Which vertices restart migrations upon incremental adaptation (§III-D
/// describes both strategies; the paper opts for `All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartScope {
    /// Every vertex participates ("increases the likelihood that the
    /// algorithm jumps out of a local optimum") — the paper's choice.
    #[default]
    All,
    /// Only vertices affected by the change (plus any vertex later woken by
    /// a neighbour's migration) participate — "minimizes the amount of
    /// computation to adapt".
    AffectedOnly,
}

/// Tunable parameters of the Spinner algorithm.
///
/// The paper's evaluation settings (§V-A) are the defaults: `c = 1.05`,
/// `ε = 0.001`, `w = 5`. The ablation switches (`balance_penalty`,
/// `probabilistic_migration`, `async_worker_loads`, `in_engine_conversion`)
/// all default to the paper's design and exist for the ablation experiments
/// called out in DESIGN.md.
#[derive(Debug, Clone)]
pub struct SpinnerConfig {
    /// Number of partitions `k`.
    pub k: u32,
    /// Additional capacity constant `c > 1` (Eq. 5). Bounds unbalance
    /// (`ρ ≤ c` with high probability) and trades balance for convergence
    /// speed (Fig. 5).
    pub c: f64,
    /// Halting threshold ε: minimum per-vertex-normalised score improvement
    /// counted as progress.
    pub epsilon: f64,
    /// Halting window w: iterations without progress before halting.
    pub window: u32,
    /// Hard cap on LPA iterations.
    pub max_iterations: u32,
    /// Ignore the ε/w halting heuristic and run to `max_iterations`
    /// (used by Fig. 4, which plots the full evolution).
    pub ignore_halting: bool,
    /// Seed for label initialisation, tie-breaking, and migration draws.
    pub seed: u64,
    /// Number of logical Pregel workers hosting the computation.
    pub num_workers: usize,
    /// Number of OS threads executing the logical workers.
    pub num_threads: usize,
    /// §IV-A4 asynchronous per-worker load counters (ablation switch).
    pub async_worker_loads: bool,
    /// Eq. 8 balance penalty; disabling yields plain (unbalanced) LPA
    /// (ablation switch).
    pub balance_penalty: bool,
    /// Eq. 14 probabilistic migrations; disabling migrates every candidate
    /// greedily (ablation switch).
    pub probabilistic_migration: bool,
    /// Perform the directed→undirected conversion as two supersteps inside
    /// the engine (NeighborPropagation/NeighborDiscovery, §IV-A1) instead of
    /// offline. Only affects [`crate::partition_directed`].
    pub in_engine_conversion: bool,
    /// What to balance: edge load (paper default) or vertex counts.
    pub objective: BalanceObjective,
    /// Optional per-partition capacity weights for heterogeneous clusters
    /// (length `k`, positive): partition `l` gets capacity
    /// `c · total · w_l / Σw`. `None` means the paper's homogeneous setup.
    pub capacity_weights: Option<Vec<f64>>,
    /// Restart scope for incremental adaptation (§III-D).
    pub restart_scope: RestartScope,
    /// Label-driven placement feedback for streaming sessions (§V-F: "we
    /// plug a hash function that uses only the l_j field"). `Some(t)`:
    /// whenever a window converges with a remote-message share above `t`,
    /// the session migrates every vertex onto the worker owning its
    /// computed label (balanced greedy packing,
    /// `Placement::from_labels_balanced`) before the next window, so
    /// subsequent re-convergences exchange mostly worker-local messages.
    /// `None` (the default) keeps the initial hash placement for the whole
    /// stream. Labels are unaffected either way; with
    /// `async_worker_loads = false` they are bit-identical.
    pub placement_feedback: Option<f64>,
    /// Ship label announcements through the engine's deduplicating
    /// broadcast lane (one record per `(vertex, destination worker)` pair
    /// instead of one per crossing edge; §IV-A2's broadcast is Spinner's
    /// only message). Results — labels, history, φ/ρ, iteration counts —
    /// are bit-identical either way; only the physical record traffic
    /// (`sent_remote_records` vs the logical `sent_remote`) changes, so
    /// `false` is the per-edge verification arm the `exp-broadcast`
    /// experiment runs against. Default `true`.
    pub broadcast_fabric: bool,
    /// Evaluate all `k` labels per vertex, as the paper's implementation
    /// does ("the complexity of the heuristic executed by each vertex is
    /// proportional to the number of partitions k", §V-B). The default
    /// `false` uses an exact optimisation: only labels adjacent to the
    /// vertex plus the minimum-penalty label can maximise Eq. 8, so the
    /// scan is O(deg) amortised. Both modes find the same maximum score;
    /// they can only differ in tie-breaks among equally-penalised
    /// non-adjacent labels.
    pub exhaustive_candidate_scan: bool,
    /// Frontier-seeded delta windows for streaming sessions: after a graph
    /// delta, the session seeds the engine with the converged labels,
    /// neighbour-label histograms, and partition loads, parks every vertex
    /// outside the delta's frontier (the delta-touched vertices plus their
    /// direct neighbours — exactly the vertices whose histograms or scores
    /// the delta can change), and restarts in the score phase under
    /// [`RestartScope::AffectedOnly`]. Superstep cost then scales with the
    /// churn instead of |V|: parked vertices only re-enter when a
    /// neighbour's migration messages them. `false` (the default, and the
    /// baseline-faithful arm) re-runs each window densely from the
    /// converged labels. Resize and worker-loss windows always run densely
    /// — their changes are global. Labels can differ from the dense arm
    /// (fewer vertices reconsider their label), so this is quality-gated in
    /// `exp-stream`, not bit-compared.
    pub frontier_windows: bool,
    /// Work stealing in the engine's pooled superstep loop (see
    /// [`spinner_pregel::engine::EngineConfig::work_stealing`]). Results
    /// are bit-identical either way; `false` is the static-schedule arm.
    pub work_stealing: bool,
    /// Preferred-chunk granularity for the pooled scheduler; `0` keeps the
    /// static schedule's contiguous blocks (see
    /// [`spinner_pregel::engine::EngineConfig::steal_chunk`]).
    pub steal_chunk: usize,
    /// Drive compute by a dense per-worker vertex scan instead of the
    /// maintained active list (the verification arm; bit-identical, see
    /// [`spinner_pregel::engine::EngineConfig::dense_scan`]).
    pub dense_scan: bool,
    /// Message transport between logical workers: the default
    /// [`TransportKind::Direct`] moves outbox buffers by pointer swap
    /// (never serialises), [`TransportKind::Ring`] pushes encoded frames
    /// through in-memory ring channels — the serialisation arm a
    /// distributed deployment would run. Results are bit-identical across
    /// transports; only the wire counters change.
    pub transport: TransportKind,
    /// Frame encoding on a serialising transport (ignored on the direct
    /// path): [`WireFormat::Compact`] (default) uses delta+varint ids and
    /// payload-specialised values, [`WireFormat::Raw`] fixed-width
    /// records — the size-comparison arm.
    pub wire_format: WireFormat,
    /// Sender-side combiner folding on a serialising transport: fold
    /// same-destination records through the program's combiner before
    /// framing (the exact fold the receiver would apply, so results are
    /// unchanged). Default `true`; `false` is the verification arm.
    pub sender_fold: bool,
    /// Retry/timeout budgets for the transport reliability layer (ignored
    /// on the direct path). `transport_retry.reliable` — on by default —
    /// wraps the serialising transport in per-lane sequencing with
    /// cumulative-ack retransmission, so dropped/duplicated/reordered/
    /// corrupted frames are masked and a dead lane surfaces as a typed
    /// error the stream session escalates into worker-loss recovery.
    pub transport_retry: RetryConfig,
}

impl SpinnerConfig {
    /// The paper's default configuration for `k` partitions.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "need at least one partition");
        Self {
            k,
            c: 1.05,
            epsilon: 0.001,
            window: 5,
            max_iterations: 300,
            ignore_halting: false,
            seed: 1,
            num_workers: 16,
            num_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            async_worker_loads: true,
            balance_penalty: true,
            probabilistic_migration: true,
            in_engine_conversion: false,
            objective: BalanceObjective::default(),
            capacity_weights: None,
            restart_scope: RestartScope::default(),
            placement_feedback: None,
            broadcast_fabric: true,
            exhaustive_candidate_scan: false,
            frontier_windows: false,
            work_stealing: true,
            steal_chunk: 0,
            dense_scan: false,
            transport: TransportKind::default(),
            wire_format: WireFormat::default(),
            sender_fold: true,
            transport_retry: RetryConfig::default(),
        }
    }

    /// Builder-style heterogeneous-capacity override. `weights[l]` is the
    /// relative share of partition `l` (e.g. machine memory sizes).
    pub fn with_capacity_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.k as usize, "need one weight per partition");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        self.capacity_weights = Some(weights);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style capacity-constant override.
    pub fn with_c(mut self, c: f64) -> Self {
        assert!(c > 1.0, "c must exceed 1 (Eq. 5)");
        self.c = c;
        self
    }

    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.num_workers = workers;
        self
    }

    /// Builder-style broadcast-lane override (the per-edge unicast arm is
    /// the verification baseline; see [`Self::broadcast_fabric`]).
    pub fn with_broadcast_fabric(mut self, enabled: bool) -> Self {
        self.broadcast_fabric = enabled;
        self
    }

    /// Builder-style frontier-window override (delta windows seed a
    /// frontier and park the rest; see [`Self::frontier_windows`]).
    pub fn with_frontier_windows(mut self, enabled: bool) -> Self {
        self.frontier_windows = enabled;
        self
    }

    /// Builder-style work-stealing override (`false` pins the static
    /// schedule; see [`Self::work_stealing`]).
    pub fn with_work_stealing(mut self, enabled: bool) -> Self {
        self.work_stealing = enabled;
        self
    }

    /// Builder-style steal-chunk override (see [`Self::steal_chunk`]).
    pub fn with_steal_chunk(mut self, chunk: usize) -> Self {
        self.steal_chunk = chunk;
        self
    }

    /// Builder-style dense-scan override (the active-set verification arm;
    /// see [`Self::dense_scan`]).
    pub fn with_dense_scan(mut self, enabled: bool) -> Self {
        self.dense_scan = enabled;
        self
    }

    /// Builder-style transport override (see [`Self::transport`]).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style wire-format override (see [`Self::wire_format`]).
    pub fn with_wire_format(mut self, format: WireFormat) -> Self {
        self.wire_format = format;
        self
    }

    /// Builder-style sender-fold override (`false` frames every outbox
    /// record unfolded; see [`Self::sender_fold`]).
    pub fn with_sender_fold(mut self, enabled: bool) -> Self {
        self.sender_fold = enabled;
        self
    }

    /// Builder-style transport-retry override (see
    /// [`Self::transport_retry`]).
    pub fn with_transport_retry(mut self, retry: RetryConfig) -> Self {
        self.transport_retry = retry;
        self
    }

    /// Builder-style placement-feedback override: re-place vertices by
    /// computed label whenever a window's remote-message share exceeds
    /// `threshold` (a fraction in `[0, 1)`; 0 re-places after every
    /// window that sent any remote message).
    pub fn with_placement_feedback(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&threshold),
            "placement-feedback threshold is a share in [0, 1)"
        );
        self.placement_feedback = Some(threshold);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SpinnerConfig::new(32);
        assert_eq!(cfg.k, 32);
        assert!((cfg.c - 1.05).abs() < 1e-12);
        assert!((cfg.epsilon - 0.001).abs() < 1e-12);
        assert_eq!(cfg.window, 5);
        assert!(cfg.balance_penalty && cfg.probabilistic_migration);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        SpinnerConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "c must exceed 1")]
    fn c_below_one_rejected() {
        let _ = SpinnerConfig::new(2).with_c(0.9);
    }

    #[test]
    fn broadcast_fabric_defaults_on() {
        assert!(SpinnerConfig::new(4).broadcast_fabric);
        assert!(!SpinnerConfig::new(4).with_broadcast_fabric(false).broadcast_fabric);
    }

    #[test]
    fn scheduler_knobs_default_to_fast_arms() {
        let cfg = SpinnerConfig::new(4);
        assert!(!cfg.frontier_windows, "frontier windows are opt-in");
        assert!(cfg.work_stealing, "stealing is the default schedule");
        assert_eq!(cfg.steal_chunk, 0, "auto chunking by default");
        assert!(!cfg.dense_scan, "active-set driver is the default");
        let cfg = cfg
            .with_frontier_windows(true)
            .with_work_stealing(false)
            .with_steal_chunk(3)
            .with_dense_scan(true);
        assert!(cfg.frontier_windows && !cfg.work_stealing && cfg.dense_scan);
        assert_eq!(cfg.steal_chunk, 3);
    }

    #[test]
    fn fabric_knobs_default_to_the_direct_path() {
        let cfg = SpinnerConfig::new(4);
        assert_eq!(cfg.transport, TransportKind::Direct);
        assert_eq!(cfg.wire_format, WireFormat::Compact);
        assert!(cfg.sender_fold, "fold is on whenever a wire path runs");
        let cfg = cfg
            .with_transport(TransportKind::Ring)
            .with_wire_format(WireFormat::Raw)
            .with_sender_fold(false);
        assert_eq!(cfg.transport, TransportKind::Ring);
        assert_eq!(cfg.wire_format, WireFormat::Raw);
        assert!(!cfg.sender_fold);
    }

    #[test]
    fn transport_retry_defaults_to_the_reliable_layer() {
        let cfg = SpinnerConfig::new(4);
        assert!(cfg.transport_retry.reliable, "reliability layer is on by default");
        assert_eq!(cfg.transport_retry, RetryConfig::default());
        let retry = RetryConfig { max_retransmits: 2, ..RetryConfig::default() };
        let cfg = cfg.with_transport_retry(retry);
        assert_eq!(cfg.transport_retry.max_retransmits, 2);
    }

    #[test]
    fn placement_feedback_defaults_off() {
        assert_eq!(SpinnerConfig::new(4).placement_feedback, None);
        let cfg = SpinnerConfig::new(4).with_placement_feedback(0.5);
        assert_eq!(cfg.placement_feedback, Some(0.5));
    }

    #[test]
    #[should_panic(expected = "share in [0, 1)")]
    fn placement_feedback_rejects_full_share() {
        let _ = SpinnerConfig::new(4).with_placement_feedback(1.0);
    }
}
