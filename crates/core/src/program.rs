//! The Spinner vertex program (paper §IV), expressed against the Pregel
//! engine: phases, score maximisation, and decentralised migrations.

use crate::config::{BalanceObjective, RestartScope, SpinnerConfig};
use crate::driver::IterationStats;
use crate::state::{
    EdgeState, GlobalState, Label, MigrationMsg, Phase, VertexState, WorkerState, NO_LABEL,
};
use spinner_graph::rng::vertex_stream;
use spinner_pregel::aggregate::{AggOp, AggregatorSpec};
use spinner_pregel::program::{MasterContext, Program};
use spinner_pregel::{VertexContext, WorkerId};

/// Aggregator: persistent partition loads b(l) (VecSumI64, length k).
pub const AGG_LOADS: usize = 0;
/// Aggregator: candidate load m(l) per label for Eq. 14 (VecSumI64).
pub const AGG_CANDIDATES: usize = 1;
/// Aggregator: global score Σ_v score''(v, α(v)) (Eq. 10), accumulated in
/// fixed point (see [`SCORE_SCALE`]).
pub const AGG_SCORE: usize = 2;

/// Fixed-point scale for the global score aggregation. Per-vertex scores
/// are rounded to `1/SCORE_SCALE` (2⁻²⁰ ≈ 10⁻⁶) and summed as integers, so
/// the total — unlike an `f64` sum — is independent of summation order and
/// therefore bit-identical across any vertex placement, worker count, or
/// thread count. The quantisation sits three orders of magnitude below the
/// ε = 10⁻³ per-vertex halting threshold. Overflow bound: |score''(v)| ≤
/// 1 + k/c (the worst penalty is a partition holding all load, k/c), so
/// the sum stays within `i64::MAX` while `n · (1 + k/c) < 2⁴³ ≈ 8.8·10¹²`
/// — with the engine's u32 vertex ids (n < 2³²), safe for any `k/c` up to
/// ~2000 even at the maximum vertex count.
pub const SCORE_SCALE: f64 = (1u64 << 20) as f64;

/// A per-vertex score contribution in fixed point.
#[inline]
fn score_fixed(score: f64) -> i64 {
    (score * SCORE_SCALE).round() as i64
}
/// Aggregator: Σ_v (local incident weight) = 2·(local edge weight) (SumI64).
pub const AGG_LOCAL_WEIGHT: usize = 3;
/// Aggregator: number of migrations this superstep (SumI64).
pub const AGG_MIGRATIONS: usize = 4;

/// The Spinner Pregel program. Immutable during a run; all evolving state
/// lives in vertex values, edge values, and [`GlobalState`].
pub struct SpinnerProgram {
    /// Algorithm parameters.
    pub cfg: SpinnerConfig,
    /// Phase to start from: `NeighborPropagation` for in-engine conversion
    /// of a directed graph, `Initialize` otherwise.
    pub start_phase: Phase,
}

impl SpinnerProgram {
    /// Deterministic per-vertex randomness, keyed by *logical* step rather
    /// than raw superstep so that runs with and without the two conversion
    /// supersteps make identical draws.
    fn logical_rng(
        &self,
        vertex: u32,
        global: &GlobalState,
        salt: u64,
    ) -> spinner_graph::rng::SplitMix64 {
        let step = (global.iteration as u64) << 3 | salt;
        vertex_stream(self.cfg.seed, vertex as u64, step)
    }

    /// The load a vertex contributes to its partition under the configured
    /// balance objective.
    #[inline]
    fn load_of(&self, degw: u64) -> u64 {
        match self.cfg.objective {
            BalanceObjective::Edges => degw,
            BalanceObjective::Vertices => 1,
        }
    }

    fn compute_scores(&self, ctx: &mut VertexContext<'_, Self>, messages: &[MigrationMsg]) {
        let w = &mut *ctx.worker;
        // (i) Fold migration announcements into the cached edge labels and
        // the vertex's label histogram. Neighbour labels change only through
        // these messages, so the histogram stays exact without a
        // per-iteration O(deg) edge re-scan. Under heavy churn (many
        // announcements against a wide histogram — the first iterations, or
        // a freshly built histogram) per-message maintenance costs
        // O(messages x entries); a dense rebuild through the k-sized
        // scratch is O(deg + entries), so switch adaptively. Both paths
        // produce the same histogram (entry order is irrelevant).
        let hist_len = ctx.value.label_weights.len();
        let heavy = !messages.is_empty()
            && messages.len() * (hist_len + messages.len() / 2) > ctx.edges.len();
        if heavy {
            for &(sender, label) in messages {
                debug_assert!(label != NO_LABEL);
                if let Some(i) = ctx.edges.index_of(sender) {
                    ctx.edges.values[i].neighbor_label = label;
                }
            }
            let hist = &mut ctx.value.label_weights;
            hist.clear();
            for ev in ctx.edges.values.iter() {
                let l = ev.neighbor_label;
                if l != NO_LABEL {
                    if w.counts[l as usize] == 0 {
                        hist.push((l, 0));
                    }
                    w.counts[l as usize] += ev.weight as u64;
                }
            }
            for (l, cnt) in hist.iter_mut() {
                *cnt = w.counts[*l as usize] as u32;
                w.counts[*l as usize] = 0;
            }
        } else {
            for &(sender, label) in messages {
                if let Some(i) = ctx.edges.index_of(sender) {
                    let edge = &mut ctx.edges.values[i];
                    let old = edge.neighbor_label;
                    edge.neighbor_label = label;
                    ctx.value.shift_label_weight(old, label, edge.weight as u32);
                }
            }
        }

        let g = ctx.global;
        let current = ctx.value.label;
        let degw = ctx.value.degree;
        debug_assert!(current < g.k);
        #[cfg(debug_assertions)]
        Self::assert_histogram_in_sync(ctx.edges.values, ctx.value, ctx.vertex);

        // Resolve the least-loaded label before borrowing the load slice
        // (any label with zero adjacent weight scores -π(l), so only the
        // min-load label can win among the non-adjacent ones).
        let exhaustive = self.cfg.exhaustive_candidate_scan;
        // The exhaustive scan borrows the dense scratch while the score
        // closure below borrows the rest of the worker state.
        let mut exhaustive_counts =
            if exhaustive { std::mem::take(&mut w.counts) } else { Vec::new() };
        let min_label = if self.cfg.balance_penalty { w.min_load_label() } else { current };
        let loads: &[i64] = if self.cfg.async_worker_loads { &w.local_loads } else { &g.loads };
        // Under the async view the worker's cached penalties equal
        // `loads[l] as f64 / capacities[l]` bit-for-bit whenever C_l > 0,
        // halving the divisions in the candidate scan.
        let penalties: Option<&[f64]> =
            if self.cfg.async_worker_loads { Some(w.penalties()) } else { None };
        let score = |neighbor_weight: u64, l: usize| -> f64 {
            let locality = if degw > 0 { neighbor_weight as f64 / degw as f64 } else { 0.0 };
            if !self.cfg.balance_penalty {
                return locality;
            }
            let cap = g.capacities[l];
            let penalty = match penalties {
                Some(p) if cap > 0.0 => p[l],
                _ => loads[l] as f64 / cap,
            };
            locality - penalty
        };
        let count_current = ctx.value.label_weight(current) as u64;
        let current_score = score(count_current, current as usize);

        // (iii) Best label among the touched ones plus the globally
        // least-loaded one (or all k labels in the paper-faithful
        // exhaustive mode — provably the same result).
        let mut best_score = current_score;
        let mut best: Label = current;
        // Random but order-independent tie-breaking: among equally-scored
        // labels the one with the smallest per-(vertex, iteration, label)
        // hash priority wins, so the exhaustive and optimised candidate
        // scans agree despite enumerating candidates in different orders.
        // The seed is derived lazily — ties are rare, and hashing one per
        // vertex per superstep is measurable on the hot path.
        let vertex = ctx.vertex;
        let mut tie_seed: Option<u64> = None;
        let priority = |l: Label, tie_seed: &mut Option<u64>| {
            let seed =
                *tie_seed.get_or_insert_with(|| self.logical_rng(vertex, g, 1).next_u64());
            spinner_graph::rng::mix3(seed, l as u64, 0xBEA7)
        };
        // `None` = not yet hashed for the incumbent `best` (lazy, like the
        // seed); `Some` once a tie forced the comparison.
        let mut best_priority: Option<u64> = None;
        let histogram = &ctx.value.label_weights;
        // Sound fast-path prune: score(l) = cnt/degw - π(l) is bounded above
        // by cnt * inv_up - π_min, where inv_up >= 1/degw even after
        // rounding (two ulps of slack) and π_min = π(min_label) is the
        // smallest cached penalty. A label whose bound is strictly below the
        // incumbent best score can neither win nor tie, so skipping the
        // exact score cannot change the selected label.
        let prune = self.cfg.balance_penalty
            && self.cfg.async_worker_loads
            && degw > 0
            && w.caps_positive();
        let (inv_up, min_penalty) = if prune {
            let inv = 1.0 / degw as f64;
            let pen = penalties.expect("async penalties")[min_label as usize];
            (f64::from_bits(inv.to_bits() + 2), pen)
        } else {
            (0.0, 0.0)
        };
        let mut consider = |l: Label, neighbor_weight: u64| {
            if prune && neighbor_weight as f64 * inv_up - min_penalty < best_score {
                return;
            }
            if l == current {
                return;
            }
            let s = score(neighbor_weight, l as usize);
            // Break ties randomly but prefer the current label (§III-A):
            // `current` started as the incumbent best and an equal score
            // never displaces it; among other tied labels the hash priority
            // decides.
            if s > best_score {
                best_score = s;
                best = l;
                best_priority = None;
            } else if s == best_score && best != current {
                let incumbent = *best_priority.get_or_insert_with(|| {
                    let b = best;
                    priority(b, &mut tie_seed)
                });
                let p = priority(l, &mut tie_seed);
                if p < incumbent {
                    best = l;
                    best_priority = Some(p);
                }
            }
        };
        if exhaustive {
            // Dense scratch keeps the paper-faithful mode O(k + len) per
            // vertex; 0..k is not sorted by weight, so prune per label but
            // never stop early.
            for &(l, cnt) in histogram {
                exhaustive_counts[l as usize] = cnt as u64;
            }
            for l in 0..g.k {
                consider(l, exhaustive_counts[l as usize]);
            }
            for &(l, _) in histogram {
                exhaustive_counts[l as usize] = 0;
            }
        } else {
            let mut min_label_weight = None;
            for &(l, cnt) in histogram {
                if l == min_label {
                    min_label_weight = Some(cnt);
                }
                consider(l, cnt as u64);
            }
            if min_label != current && min_label_weight.is_none() {
                consider(min_label, 0);
            }
        }
        if exhaustive {
            w.counts = exhaustive_counts;
        }

        // (iv) Aggregate this vertex's contribution to score(G) and φ.
        ctx.agg.add_i64(AGG_SCORE, score_fixed(current_score));
        ctx.agg.add_i64(AGG_LOCAL_WEIGHT, count_current as i64);

        // (v) Candidacy: flag and update the async worker view. With
        // `async_worker_loads` disabled the worker-local view must stay the
        // superstep-start global snapshot — updating it would leak intra-
        // superstep information into the min-penalty scan, making the
        // ablation arm depend on how vertices are spread over workers.
        // Skipping the update keeps the async=off arm fully synchronous and
        // its results invariant to the logical worker count.
        if best != current {
            let load = self.load_of(degw);
            ctx.value.candidate = best;
            ctx.agg.add_vec_i64(AGG_CANDIDATES, best as usize, load as i64);
            if self.cfg.async_worker_loads {
                w.apply_candidacy(current, best, load);
            }
        } else {
            ctx.value.candidate = NO_LABEL;
        }
    }

    /// Debug-only: recomputes the label histogram and cached degree from
    /// the edge list and asserts they match the incremental state.
    #[cfg(debug_assertions)]
    fn assert_histogram_in_sync(edge_values: &[EdgeState], value: &VertexState, vertex: u32) {
        let mut expect: Vec<(Label, u32)> = Vec::new();
        let mut degw = 0u64;
        for ev in edge_values.iter() {
            degw += ev.weight as u64;
            if ev.neighbor_label != NO_LABEL {
                match expect.iter_mut().find(|(l, _)| *l == ev.neighbor_label) {
                    Some(entry) => entry.1 += ev.weight as u32,
                    None => expect.push((ev.neighbor_label, ev.weight as u32)),
                }
            }
        }
        expect.sort_unstable();
        let mut cached = value.label_weights.clone();
        cached.sort_unstable();
        assert_eq!(expect, cached, "label histogram out of sync for vertex {vertex}");
        assert_eq!(degw, value.degree, "cached degree out of sync for vertex {vertex}");
    }

    fn compute_migrations(&self, ctx: &mut VertexContext<'_, Self>) {
        let candidate = ctx.value.candidate;
        if candidate == NO_LABEL {
            // Under the affected-only restart strategy, settled bystanders
            // go to sleep until a neighbour's migration wakes them.
            if self.cfg.restart_scope == RestartScope::AffectedOnly && !ctx.value.affected {
                ctx.vote_to_halt();
            }
            return;
        }
        ctx.value.candidate = NO_LABEL;
        let p = ctx.global.migration_prob[candidate as usize];
        let mut rng = self.logical_rng(ctx.vertex, ctx.global, 2);
        if rng.next_f64() >= p {
            return; // Deferred; retries next iteration (stays awake).
        }
        let old = ctx.value.label;
        let load = self.load_of(ctx.value.degree) as i64;
        ctx.value.label = candidate;
        ctx.value.affected = true; // A mover keeps optimising.
        ctx.agg.add_vec_i64(AGG_LOADS, old as usize, -load);
        ctx.agg.add_vec_i64(AGG_LOADS, candidate as usize, load);
        ctx.agg.add_i64(AGG_MIGRATIONS, 1);
        // Announce to all neighbours through the deduplicating broadcast
        // lane: one record per destination worker instead of one per edge
        // (§IV-A2 — the payload is identical for every neighbour, so no
        // per-edge send is needed).
        let announce: MigrationMsg = (ctx.vertex, candidate);
        ctx.mail.broadcast(announce);
    }

    fn master_scores(&self, ctx: &mut MasterContext<'_, GlobalState>) {
        let k = ctx.global.k as usize;
        let loads = ctx.read(AGG_LOADS).as_vec_i64().to_vec();
        let m = ctx.read(AGG_CANDIDATES).as_vec_i64().to_vec();
        let score = ctx.read(AGG_SCORE).as_i64() as f64 / SCORE_SCALE;
        let local_weight = ctx.read(AGG_LOCAL_WEIGHT).as_i64();

        // Migration probabilities p(l) = r(l)/m(l), clamped to [0, 1]
        // (Eq. 14). r(l) ≤ 0 means the partition is at/over capacity: no
        // migrations into it this iteration.
        for l in 0..k {
            let r = ctx.global.capacities[l] - loads[l] as f64;
            ctx.global.migration_prob[l] = if !self.cfg.probabilistic_migration {
                1.0
            } else if m[l] <= 0 || r <= 0.0 {
                0.0
            } else {
                (r / m[l] as f64).min(1.0)
            };
        }

        // Iteration metrics (pushed to history after the migration step).
        let total = ctx.global.total_weight;
        let phi = if total > 0 { local_weight as f64 / total as f64 } else { 1.0 };
        let rho = rho_of(&loads, &ctx.global.capacities, self.cfg.c);
        ctx.global.pending = Some((phi, rho, score));

        // Halting heuristic: per-vertex-normalised improvement < ε for w
        // consecutive iterations (§III-C).
        let n = ctx.active.max(1) as f64;
        let improvement = (score - ctx.global.best_score) / n;
        if score > ctx.global.best_score {
            ctx.global.best_score = score;
        }
        if improvement < self.cfg.epsilon {
            ctx.global.no_improvement += 1;
        } else {
            ctx.global.no_improvement = 0;
        }
        let steady = ctx.global.no_improvement > self.cfg.window;
        if (steady && !self.cfg.ignore_halting)
            || ctx.global.iteration >= self.cfg.max_iterations
        {
            ctx.global.halted_steady = steady;
            self.push_history(ctx.global, 0);
            ctx.halt();
        } else {
            ctx.global.phase = Phase::ComputeMigrations;
        }
    }

    fn push_history(&self, g: &mut GlobalState, migrations: u64) {
        if let Some((phi, rho, score)) = g.pending.take() {
            g.history.push(IterationStats {
                iteration: g.iteration,
                phi,
                rho,
                score,
                migrations,
            });
        }
    }
}

/// Builds the [`GlobalState`] the master's `Initialize` step would have
/// produced from the given per-partition loads — the same total-weight,
/// capacity, and load math, phase set to `ComputeScores`. Used by
/// frontier-seeded windows that skip the Initialize superstep entirely:
/// vertex degrees, histograms, and the persistent loads aggregator are
/// seeded on the engine side, and this supplies the matching master state.
pub(crate) fn seeded_global(cfg: &SpinnerConfig, loads: Vec<i64>) -> GlobalState {
    let total: i64 = loads.iter().sum();
    let mut g = GlobalState::new(Phase::ComputeScores, cfg.k);
    g.total_weight = total as u64;
    g.capacities = match &cfg.capacity_weights {
        Some(weights) => {
            let sum: f64 = weights.iter().sum();
            weights.iter().map(|w| cfg.c * total as f64 * w / sum).collect()
        }
        None => vec![cfg.c * total as f64 / cfg.k as f64; cfg.k as usize],
    };
    g.loads = loads;
    g
}

/// Maximum normalized load: each partition's load relative to its ideal
/// share `C_l / c` (reduces to `max b / (total/k)` in the homogeneous case).
fn rho_of(loads: &[i64], capacities: &[f64], c: f64) -> f64 {
    loads
        .iter()
        .zip(capacities)
        .map(|(&b, &cap)| if cap > 0.0 { b as f64 * c / cap } else { 1.0 })
        .fold(1.0, f64::max)
}

impl Program for SpinnerProgram {
    type V = VertexState;
    type E = EdgeState;
    type M = MigrationMsg;
    type G = GlobalState;
    type WorkerState = WorkerState;

    fn init_global(&self) -> GlobalState {
        GlobalState::new(self.start_phase, self.cfg.k)
    }

    fn init_worker(&self, global: &GlobalState, _worker: WorkerId) -> WorkerState {
        WorkerState::new(&global.loads, &global.capacities)
    }

    fn reset_worker(
        &self,
        state: &mut WorkerState,
        global: &GlobalState,
        _worker: WorkerId,
    ) -> bool {
        state.reset(&global.loads, &global.capacities)
    }

    fn aggregators(&self) -> Vec<AggregatorSpec> {
        let k = self.cfg.k as usize;
        vec![
            AggregatorSpec::persistent("loads", AggOp::VecSumI64, k),
            AggregatorSpec::regular("candidates", AggOp::VecSumI64, k),
            AggregatorSpec::regular("score", AggOp::SumI64, 0),
            AggregatorSpec::regular("local-weight", AggOp::SumI64, 0),
            AggregatorSpec::regular("migrations", AggOp::SumI64, 0),
        ]
    }

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[MigrationMsg]) {
        match ctx.global.phase {
            Phase::NeighborPropagation => {
                // Send our id along the (directed) out-edges — same payload
                // everywhere, so the broadcast lane applies (its fan-out
                // index is the adjacency transpose, valid for directed
                // graphs too). The NeighborDiscovery mutations that follow
                // close the lane for the rest of the conversion run.
                let me = ctx.vertex;
                ctx.mail.broadcast((me, NO_LABEL));
            }
            Phase::NeighborDiscovery => {
                // For each in-neighbour: reciprocal edge -> weight 2,
                // otherwise create the reverse edge with weight 1 (Eq. 3).
                for &(sender, _) in messages {
                    match ctx.edges.index_of(sender) {
                        Some(i) => ctx.edges.values[i].weight = 2,
                        None => ctx.add_edge(
                            sender,
                            EdgeState { weight: 1, neighbor_label: NO_LABEL },
                        ),
                    }
                }
            }
            Phase::Initialize => {
                // Weighted degree over the (now undirected) adjacency;
                // aggregate the initial load and announce the label.
                let degw: u64 = ctx.edges.values.iter().map(|e| e.weight as u64).sum();
                ctx.value.degree = degw;
                let label = ctx.value.label;
                debug_assert!(label < ctx.global.k);
                ctx.agg.add_vec_i64(AGG_LOADS, label as usize, self.load_of(degw) as i64);
                let announce: MigrationMsg = (ctx.vertex, label);
                ctx.mail.broadcast(announce);
            }
            Phase::ComputeScores => self.compute_scores(ctx, messages),
            Phase::ComputeMigrations => self.compute_migrations(ctx),
        }
    }

    fn master(&self, ctx: &mut MasterContext<'_, GlobalState>) {
        match ctx.global.phase {
            Phase::NeighborPropagation => ctx.global.phase = Phase::NeighborDiscovery,
            Phase::NeighborDiscovery => ctx.global.phase = Phase::Initialize,
            Phase::Initialize => {
                let loads = ctx.read(AGG_LOADS).as_vec_i64().to_vec();
                let total: i64 = loads.iter().sum();
                ctx.global.total_weight = total as u64;
                // Capacities: homogeneous C = c*total/k, or proportional to
                // the configured heterogeneous weights.
                ctx.global.capacities = match &self.cfg.capacity_weights {
                    Some(weights) => {
                        let sum: f64 = weights.iter().sum();
                        weights.iter().map(|w| self.cfg.c * total as f64 * w / sum).collect()
                    }
                    None => {
                        vec![self.cfg.c * total as f64 / self.cfg.k as f64; self.cfg.k as usize]
                    }
                };
                ctx.global.loads = loads;
                ctx.global.phase = Phase::ComputeScores;
            }
            Phase::ComputeScores => self.master_scores(ctx),
            Phase::ComputeMigrations => {
                let migrations = ctx.read(AGG_MIGRATIONS).as_i64() as u64;
                ctx.global.loads = ctx.read(AGG_LOADS).as_vec_i64().to_vec();
                self.push_history(ctx.global, migrations);
                ctx.global.iteration += 1;
                ctx.global.phase = Phase::ComputeScores;
            }
        }
    }
}
