//! Streaming dynamic-graph driver: a session that keeps engine and
//! partition state warm across an ordered sequence of graph and cluster
//! changes, re-converging incrementally after each window.
//!
//! The one-shot entry points ([`crate::adapt`], [`crate::elastic`]) rebuild
//! the whole Pregel engine per call. A [`StreamSession`] instead holds one
//! engine for its lifetime and re-targets it at every window through the
//! fabric-preserving warm reset, so a long stream of deltas performs no
//! steady-state message-path allocation after the first window while
//! producing **bit-identical results** to the cold-start driver functions.
//!
//! Windows are [`StreamEvent`]s: a [`GraphDelta`] (edge additions/removals,
//! vertex arrivals — §III-D incremental repartitioning) or a partition-count
//! change (§III-E elastic repartitioning). Both unify on the same warm-start
//! path; only the label initialisation differs.
//!
//! With [`SpinnerConfig::placement_feedback`] enabled the session also
//! closes the paper's §V-F loop: when a window converges with a remote-
//! message share above the threshold, the engine's vertex state migrates in
//! place onto workers chosen by computed label (balanced greedy packing),
//! so later windows run with label-aligned locality — most messages then
//! take the fabric's lock-free local fast path instead of the cross-worker
//! grid. Labels are unaffected; with `async_worker_loads = false` they are
//! bit-identical to a feedback-free run.

use crate::config::{BalanceObjective, RestartScope, SpinnerConfig};
use crate::driver::{
    delta_affected, elastic_labels, engine_config, incremental_labels, loss_labels,
    random_labels, result_from_engine, PartitionResult,
};
use crate::program::{seeded_global, SpinnerProgram, AGG_LOADS};
use crate::state::{EdgeState, Label, Phase, VertexState, NO_LABEL};
use spinner_graph::conversion::from_undirected_edges;
use spinner_graph::mutation::apply_delta;
use spinner_graph::{DirectedGraph, GraphDelta, UndirectedGraph, VertexId};
use spinner_pregel::engine::Engine;
use spinner_pregel::{
    AggValue, HaltReason, Placement, TransportFaultPlan, TransportStats, WorkerId,
};

/// One window of a dynamic-graph stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// The graph changed: apply the delta and adapt the previous
    /// partitioning incrementally (§III-D).
    Delta(GraphDelta),
    /// The cluster changed: repartition elastically to `k` partitions
    /// (§III-E, Eq. 11). The graph is untouched.
    Resize {
        /// The new partition count.
        k: u32,
    },
    /// A worker failed and its partition state was lost (the paper's §V
    /// failure scenario). The vertices the engine hosted on that worker are
    /// reseeded with balanced labels, restarted as the only affected set,
    /// and re-converged warm; the window then re-places all vertices by
    /// computed label onto the worker slot's replacement. The graph and
    /// `k` are untouched — only labels and placement recover.
    WorkerLoss {
        /// The worker slot whose hosted state was lost.
        worker: WorkerId,
    },
}

/// The raw measurements of one [`WindowReport`], with public fields.
///
/// This is the construction / serialization surface of the report:
/// [`WindowReport`] itself keeps its fields private behind read accessors
/// (so derived statistics like [`WindowReport::local_share`] and plain
/// measurements present one uniform method-call surface), while `Parts`
/// is the plain-old-data form used to build one
/// ([`WindowReport::from_parts`]) or take one apart
/// ([`WindowReport::to_parts`]) — e.g. for the binary window log kept by
/// `spinner_serving`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReportParts {
    /// Window index (0 is the bootstrap partitioning).
    pub window: u32,
    /// Partition count in effect for this window.
    pub k: u32,
    /// Vertices after the window's delta.
    pub num_vertices: VertexId,
    /// Undirected edges after the window's delta.
    pub num_edges: u64,
    /// Final ratio of local edges φ.
    pub phi: f64,
    /// Final maximum normalized load ρ.
    pub rho: f64,
    /// Fraction of the vertices that existed *before* the window whose label
    /// changed while re-converging (1.0 for the bootstrap window).
    pub migration_fraction: f64,
    /// LPA iterations to re-converge.
    pub iterations: u32,
    /// Pregel supersteps executed.
    pub supersteps: u64,
    /// Messages exchanged while re-converging.
    pub messages: u64,
    /// Messages (logical deliveries) that stayed on their worker.
    pub sent_local: u64,
    /// Messages (logical deliveries) that crossed workers.
    pub sent_remote: u64,
    /// Physical records pushed into the worker-local fast-path queue.
    pub sent_local_records: u64,
    /// Physical records pushed across workers.
    pub sent_remote_records: u64,
    /// Vertices migrated by label-driven placement feedback.
    pub placement_moved: u64,
    /// Vertex compute invocations across the window's supersteps — the
    /// active-set scheduler's cost measure: a dense window computes close
    /// to `supersteps x num_vertices`; a frontier-seeded window only the
    /// churn (see [`WindowReport::active_fraction`]).
    pub computed: u64,
    /// Wall-clock nanoseconds of the window's run.
    pub wall_ns: u64,
    /// Message-fabric buffer growth events during the window.
    pub fabric_reallocs: u64,
    /// Vertices whose hosted state was lost to a failed worker and reseeded
    /// this window (non-zero only for [`StreamEvent::WorkerLoss`] windows —
    /// the recovery-cost denominator: compare against
    /// `migration_fraction × num_vertices` to see how much of the lost set
    /// actually ended up migrating).
    pub lost_vertices: u64,
    /// Encoded frame bytes moved through the message transport (0 on the
    /// default direct in-memory path, which never serialises).
    pub wire_bytes: u64,
    /// Encoded frames moved through the message transport.
    pub wire_frames: u64,
    /// Outbox records eliminated by sender-side combiner folding before
    /// framing (0 on the direct path or with folding disabled).
    pub wire_folded: u64,
    /// Frames re-published by the reliable transport layer after a detected
    /// loss or corruption (0 on the direct path, and on a clean wire).
    pub retransmits: u64,
    /// Peak number of transport lanes that entered the `Degraded` health
    /// state during the window (they recovered — traffic got through).
    pub lanes_degraded: u64,
    /// Transport lanes declared `Dead` during the window. Each death was
    /// escalated into worker-loss recovery before the window completed, so
    /// a non-zero count always pairs with a recovery
    /// ([`WindowReport::is_recovery`]).
    pub lanes_dead: u64,
}

/// Per-window convergence, quality, and cost accounting — one point of a
/// Fig. 7-style trajectory.
///
/// Every measurement is read through an accessor method of the same name —
/// fields are private, so raw values (`report.messages()`) and derived
/// statistics ([`Self::local_share`], [`Self::remote_dedup`]) present one
/// uniform surface, and layers above (e.g. `spinner_serving`, which pairs a
/// report with its routing epoch and snapshot sizes) can extend it without
/// mixing fields and methods. To construct or serialize a report, go
/// through [`WindowReportParts`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    parts: WindowReportParts,
}

impl WindowReport {
    /// Builds a report from its raw measurements.
    pub fn from_parts(parts: WindowReportParts) -> Self {
        Self { parts }
    }

    /// The raw measurements, cloned out (inverse of [`Self::from_parts`]).
    pub fn to_parts(&self) -> WindowReportParts {
        self.parts.clone()
    }

    /// Window index (0 is the bootstrap partitioning).
    pub fn window(&self) -> u32 {
        self.parts.window
    }

    /// Partition count in effect for this window.
    pub fn k(&self) -> u32 {
        self.parts.k
    }

    /// Vertices after the window's delta.
    pub fn num_vertices(&self) -> VertexId {
        self.parts.num_vertices
    }

    /// Undirected edges after the window's delta.
    pub fn num_edges(&self) -> u64 {
        self.parts.num_edges
    }

    /// Final ratio of local edges φ.
    pub fn phi(&self) -> f64 {
        self.parts.phi
    }

    /// Final maximum normalized load ρ.
    pub fn rho(&self) -> f64 {
        self.parts.rho
    }

    /// Fraction of the vertices that existed *before* the window whose label
    /// changed while re-converging (1.0 for the bootstrap window).
    pub fn migration_fraction(&self) -> f64 {
        self.parts.migration_fraction
    }

    /// LPA iterations to re-converge.
    pub fn iterations(&self) -> u32 {
        self.parts.iterations
    }

    /// Pregel supersteps executed.
    pub fn supersteps(&self) -> u64 {
        self.parts.supersteps
    }

    /// Messages exchanged while re-converging.
    pub fn messages(&self) -> u64 {
        self.parts.messages
    }

    /// Messages (logical deliveries) that stayed on their worker (served by
    /// the fabric's locality fast path). Logical counts are
    /// lane-independent, so [`Self::local_share`] is comparable across the
    /// unicast and broadcast arms.
    pub fn sent_local(&self) -> u64 {
        self.parts.sent_local
    }

    /// Messages (logical deliveries) that crossed workers.
    pub fn sent_remote(&self) -> u64 {
        self.parts.sent_remote
    }

    /// Physical records pushed into the worker-local fast-path queue (one
    /// per broadcast; equals [`Self::sent_local`] under the per-edge unicast
    /// arm).
    pub fn sent_local_records(&self) -> u64 {
        self.parts.sent_local_records
    }

    /// Physical records pushed across workers — the wire traffic a
    /// distributed deployment would serialise for this window (one per
    /// `(sender, destination worker)` pair under the broadcast lane; equals
    /// [`Self::sent_remote`] under unicast).
    pub fn sent_remote_records(&self) -> u64 {
        self.parts.sent_remote_records
    }

    /// Vertices migrated onto a different worker by label-driven placement
    /// feedback *after* this window converged (0 when feedback is disabled
    /// or the remote share stayed under the threshold).
    pub fn placement_moved(&self) -> u64 {
        self.parts.placement_moved
    }

    /// Vertex compute invocations across the window's supersteps.
    pub fn computed(&self) -> u64 {
        self.parts.computed
    }

    /// Mean fraction of the graph computed per superstep — `computed /
    /// (supersteps x num_vertices)`, 0.0 for an empty denominator. Close to
    /// 1 for dense windows (every non-halted vertex every superstep), and
    /// « 1 for frontier-seeded delta windows, whose cost scales with churn.
    pub fn active_fraction(&self) -> f64 {
        let denom = self.parts.supersteps * self.parts.num_vertices as u64;
        if denom == 0 {
            0.0
        } else {
            self.parts.computed as f64 / denom as f64
        }
    }

    /// Wall-clock nanoseconds of the window's run.
    pub fn wall_ns(&self) -> u64 {
        self.parts.wall_ns
    }

    /// Message-fabric buffer growth events during the window (see
    /// `WorkerMetrics::fabric_reallocs`); 0 from window 2 on when the warm
    /// engine absorbs the stream.
    pub fn fabric_reallocs(&self) -> u64 {
        self.parts.fabric_reallocs
    }

    /// Vertices reseeded because a failed worker lost their state (non-zero
    /// only for [`StreamEvent::WorkerLoss`] recovery windows).
    pub fn lost_vertices(&self) -> u64 {
        self.parts.lost_vertices
    }

    /// True when this window recovered from a worker loss.
    pub fn is_recovery(&self) -> bool {
        self.parts.lost_vertices > 0
    }

    /// Encoded frame bytes moved through the message transport during the
    /// window (0 on the default direct in-memory path).
    pub fn wire_bytes(&self) -> u64 {
        self.parts.wire_bytes
    }

    /// Encoded frames moved through the message transport.
    pub fn wire_frames(&self) -> u64 {
        self.parts.wire_frames
    }

    /// Outbox records eliminated by sender-side combiner folding before
    /// framing.
    pub fn wire_folded(&self) -> u64 {
        self.parts.wire_folded
    }

    /// Share of this window's messages that stayed worker-local (1.0 for a
    /// window that exchanged none).
    pub fn local_share(&self) -> f64 {
        if self.parts.messages == 0 {
            1.0
        } else {
            self.parts.sent_local as f64 / self.parts.messages as f64
        }
    }

    /// Remote dedup ratio of this window: logical cross-worker deliveries
    /// per physical grid record (1.0 under unicast or with no remote
    /// traffic) — the broadcast lane's compression factor.
    pub fn remote_dedup(&self) -> f64 {
        if self.parts.sent_remote_records == 0 {
            1.0
        } else {
            self.parts.sent_remote as f64 / self.parts.sent_remote_records as f64
        }
    }

    /// Frames re-published by the reliable transport layer after a detected
    /// loss or corruption.
    pub fn retransmits(&self) -> u64 {
        self.parts.retransmits
    }

    /// Peak number of transport lanes that entered `Degraded` health during
    /// the window.
    pub fn lanes_degraded(&self) -> u64 {
        self.parts.lanes_degraded
    }

    /// Transport lanes declared `Dead` during the window (each one was
    /// escalated into worker-loss recovery).
    pub fn lanes_dead(&self) -> u64 {
        self.parts.lanes_dead
    }

    /// Retransmitted frames per encoded frame — the reliable layer's
    /// delivery overhead for this window (0.0 for a clean wire or the
    /// direct path).
    pub fn retransmit_ratio(&self) -> f64 {
        if self.parts.wire_frames == 0 {
            0.0
        } else {
            self.parts.retransmits as f64 / self.parts.wire_frames as f64
        }
    }
}

/// A warm streaming session over an evolving graph.
///
/// ```
/// use spinner_core::{SpinnerConfig, StreamEvent, StreamSession};
/// use spinner_graph::generators::{planted_partition, SbmConfig};
/// use spinner_graph::GraphDelta;
///
/// let base = planted_partition(SbmConfig {
///     n: 600, communities: 4, internal_degree: 6.0, external_degree: 1.0,
///     skew: None, seed: 7,
/// });
/// let mut cfg = SpinnerConfig::new(4);
/// cfg.num_workers = 4;
/// let mut session = StreamSession::new(base, cfg);
/// let report =
///     session.apply(StreamEvent::Delta(GraphDelta::additions(vec![(0, 300)])));
/// assert!(report.migration_fraction() < 0.5);
/// assert_eq!(session.windows().len(), 2); // bootstrap + one delta window
/// ```
pub struct StreamSession {
    cfg: SpinnerConfig,
    /// The evolving directed edge list (deltas apply here).
    graph: DirectedGraph,
    /// The current undirected view the partitioner runs on.
    undirected: UndirectedGraph,
    labels: Vec<Label>,
    engine: Engine<SpinnerProgram>,
    windows: Vec<WindowReport>,
    /// Label → worker map installed by the latest placement-feedback
    /// migration (`None` until feedback first triggers: vertices then sit
    /// on the bootstrap hash placement). Kept as the label-level map — not
    /// a per-vertex [`Placement`] — so vertices appended by later deltas
    /// are placed consistently with their initial label.
    label_to_worker: Option<Vec<WorkerId>>,
    /// The placement the warm engine is *currently* hosted on: the one
    /// installed by the latest warm reset, or by the latest feedback
    /// migration if that ran afterwards. Tracked explicitly because it is
    /// not derivable from the final labels — the window's reset placement
    /// was computed from the window's *initial* labels — and the serving
    /// layer must publish exactly what the engine hosts.
    placement: Placement,
}

impl StreamSession {
    /// Bootstraps a session: partitions `graph` from scratch (window 0) and
    /// keeps the engine warm for the stream. The directed edge list is
    /// treated as undirected friendships (the Tuenti/§V-C setting).
    ///
    /// With [`SpinnerConfig::placement_feedback`] set, every window —
    /// including this bootstrap — is followed by the label-driven placement
    /// check: if the window's remote-message share exceeded the threshold,
    /// all vertex state migrates onto workers chosen by computed label
    /// (paper §V-F) before the next window runs.
    pub fn new(graph: DirectedGraph, cfg: SpinnerConfig) -> Self {
        let undirected = from_undirected_edges(&graph);
        let labels = random_labels(undirected.num_vertices(), cfg.k, cfg.seed);
        let program = SpinnerProgram { cfg: cfg.clone(), start_phase: Phase::Initialize };
        let placement =
            Placement::hashed(undirected.num_vertices(), cfg.num_workers, cfg.seed ^ 0x70C);
        let mut engine = Engine::from_undirected(
            program,
            &undirected,
            &placement,
            engine_config(&cfg),
            |v| VertexState::new(labels[v as usize], true),
            |_, _, w| EdgeState { weight: w, neighbor_label: NO_LABEL },
        );
        let summary = engine.run();
        let result = result_from_engine(&cfg, &engine, &summary, Some(&undirected));
        let mut session = Self {
            cfg,
            graph,
            undirected,
            labels: result.labels.clone(),
            engine,
            windows: Vec::new(),
            label_to_worker: None,
            placement,
        };
        let placement_moved = session.feedback_replace(&result);
        session.windows.push(WindowReport::from_parts(WindowReportParts {
            window: 0,
            k: session.cfg.k,
            num_vertices: session.undirected.num_vertices(),
            num_edges: session.undirected.num_edges(),
            phi: result.quality.phi,
            rho: result.quality.rho,
            migration_fraction: 1.0,
            iterations: result.iterations,
            supersteps: result.supersteps,
            messages: result.totals.messages,
            sent_local: result.totals.local_messages(),
            sent_remote: result.totals.remote_messages,
            sent_local_records: result.totals.local_records,
            sent_remote_records: result.totals.remote_records,
            placement_moved,
            computed: result.totals.computed,
            wall_ns: result.wall_ns,
            fabric_reallocs: fabric_reallocs(&summary),
            lost_vertices: 0,
            wire_bytes: result.totals.wire_bytes,
            wire_frames: result.totals.wire_frames,
            wire_folded: result.totals.wire_folded,
            retransmits: result.totals.retransmits,
            lanes_degraded: session.engine.transport_health_counts().0,
            lanes_dead: 0,
        }));
        session
    }

    /// Rebuilds a session from a [`SessionState`] snapshot without
    /// re-partitioning: the engine is constructed directly on the saved
    /// labels and hosted on the saved placement, so the next
    /// [`Self::apply`] behaves bit-identically to the session the state was
    /// taken from (the warm reset reloads topology and labels either way;
    /// what matters is that graph, labels, feedback map, and `k` match).
    ///
    /// This is the cross-process extension of the warm reset: a restarted
    /// process resumes serving and streaming from persisted state instead
    /// of paying a full bootstrap partitioning. `spinner_serving` layers a
    /// binary snapshot + write-ahead-log codec on top of this.
    pub fn from_state(state: SessionState) -> Self {
        let SessionState { cfg, graph, labels, placement, label_assignment, windows } = state;
        assert!(!windows.is_empty(), "session state must contain the bootstrap window");
        let undirected = from_undirected_edges(&graph);
        assert_eq!(
            labels.len(),
            undirected.num_vertices() as usize,
            "labels do not cover the graph"
        );
        let placement = Placement::explicit(placement, cfg.num_workers);
        assert_eq!(placement.num_vertices(), undirected.num_vertices());
        let program = SpinnerProgram { cfg: cfg.clone(), start_phase: Phase::Initialize };
        let engine = Engine::from_undirected(
            program,
            &undirected,
            &placement,
            engine_config(&cfg),
            |v| VertexState::new(labels[v as usize], true),
            |_, _, w| EdgeState { weight: w, neighbor_label: NO_LABEL },
        );
        Self {
            cfg,
            graph,
            undirected,
            labels,
            engine,
            windows,
            label_to_worker: label_assignment,
            placement,
        }
    }

    /// Snapshots everything a restarted process needs to continue this
    /// session via [`Self::from_state`]. The undirected view and the engine
    /// are deliberately absent: both are derived deterministically from the
    /// directed graph, labels, and placement.
    pub fn state(&self) -> SessionState {
        SessionState {
            cfg: self.cfg.clone(),
            graph: self.graph.clone(),
            labels: self.labels.clone(),
            placement: self.placement.as_slice().to_vec(),
            label_assignment: self.label_to_worker.clone(),
            windows: self.windows.clone(),
        }
    }

    /// Applies the next stream window and re-converges, warm. Returns the
    /// window's report (also appended to [`Self::windows`]).
    ///
    /// The result is bit-identical to what the cold-start driver would
    /// produce for the same state: [`crate::adapt_with_delta`] for
    /// [`StreamEvent::Delta`], [`crate::elastic`] for
    /// [`StreamEvent::Resize`].
    pub fn apply(&mut self, event: StreamEvent) -> &WindowReport {
        let old_n = self.labels.len();
        let mut lost_flags: Vec<bool> = Vec::new();
        let labels = match &event {
            StreamEvent::Delta(delta) => {
                self.graph = apply_delta(&self.graph, delta);
                self.undirected = from_undirected_edges(&self.graph);
                incremental_labels(&self.undirected, &self.labels, self.cfg.k)
            }
            StreamEvent::Resize { k } => {
                assert!(*k >= 1, "need at least one partition");
                let labels = elastic_labels(&self.labels, self.cfg.k, *k, self.cfg.seed);
                self.cfg.k = *k;
                labels
            }
            StreamEvent::WorkerLoss { worker } => {
                assert!(
                    usize::from(*worker) < self.cfg.num_workers,
                    "lost worker {worker} out of range for {} workers",
                    self.cfg.num_workers
                );
                lost_flags = self.placement.as_slice().iter().map(|&w| w == *worker).collect();
                loss_labels(&self.undirected, &self.labels, &lost_flags, self.cfg.k)
            }
        };
        let lost_vertices = lost_flags.iter().filter(|&&f| f).count() as u64;
        // Which vertices restart migrations (only consulted under
        // `RestartScope::AffectedOnly`; empty marks everyone affected).
        let affected = match &event {
            StreamEvent::Delta(delta)
                if self.cfg.restart_scope == RestartScope::AffectedOnly =>
            {
                delta_affected(self.undirected.num_vertices(), old_n as VertexId, delta)
            }
            // Recovery windows always restart only the lost vertices,
            // regardless of the configured scope: recovery cost must scale
            // with the lost fraction, not the graph (survivors still adapt
            // passively — they recompute scores as neighbors move).
            StreamEvent::WorkerLoss { .. } => std::mem::take(&mut lost_flags),
            _ => Vec::new(),
        };

        // Frontier-seeded delta windows (opt-in): instead of replaying the
        // Initialize warm-up densely, seed the engine with everything that
        // warm-up would recompute — labels, weighted degrees, neighbour-
        // label histograms, edge label caches, partition loads (both the
        // master's view and the persistent aggregator the migration phase
        // folds into) — and park every vertex outside the delta's frontier.
        // The frontier is the delta-touched vertices plus their direct
        // neighbours: touched vertices can re-score against changed
        // adjacency, and their neighbours are exactly the vertices whose
        // histograms or load penalties the delta (or a touched vertex's
        // first migration) can change. Anything farther only reacts to
        // migration announcements, which wake parked vertices through the
        // normal message path. Resize and worker-loss windows stay dense:
        // their perturbation is global.
        let frontier = match &event {
            StreamEvent::Delta(delta) if self.cfg.frontier_windows => {
                let touched =
                    delta_affected(self.undirected.num_vertices(), old_n as VertexId, delta);
                Some(expand_frontier(&self.undirected, touched))
            }
            _ => None,
        };

        let placement = self.placement_for(&labels);
        if let Some(frontier) = &frontier {
            let mut pcfg = self.cfg.clone();
            // Parked bystanders must stay parked once they settle again —
            // the existing affected-only halt in ComputeMigrations does
            // exactly that, with `affected` seeded from the frontier.
            pcfg.restart_scope = RestartScope::AffectedOnly;
            let program = SpinnerProgram { cfg: pcfg, start_phase: Phase::ComputeScores };
            let und = &self.undirected;
            let objective = self.cfg.objective;
            let mut loads = vec![0i64; self.cfg.k as usize];
            for (v, &l) in labels.iter().enumerate() {
                let load = match objective {
                    BalanceObjective::Edges => {
                        und.neighbors(v as VertexId).1.iter().map(|&w| w as i64).sum()
                    }
                    BalanceObjective::Vertices => 1,
                };
                loads[l as usize] += load;
            }
            self.engine.warm_reset_undirected_seeded(
                program,
                und,
                &placement,
                |v| {
                    let vi = v as usize;
                    let (ts, ws) = und.neighbors(v);
                    let mut degree = 0u64;
                    let mut hist: Vec<(Label, u32)> = Vec::new();
                    for (&t, &w) in ts.iter().zip(ws) {
                        degree += w as u64;
                        let l = labels[t as usize];
                        match hist.iter_mut().find(|(hl, _)| *hl == l) {
                            Some(entry) => entry.1 += w as u32,
                            None => hist.push((l, w as u32)),
                        }
                    }
                    let state = VertexState {
                        label: labels[vi],
                        degree,
                        candidate: NO_LABEL,
                        affected: frontier[vi],
                        label_weights: hist,
                    };
                    (state, !frontier[vi])
                },
                |_, dst, w| EdgeState { weight: w, neighbor_label: labels[dst as usize] },
            );
            // The migration phase folds load deltas into the *persistent*
            // loads aggregator and the master re-reads it each iteration,
            // so the aggregator snapshot must be seeded alongside the
            // global state — identity there would collapse the loads to
            // just the migration deltas.
            self.engine.set_aggregate(AGG_LOADS, AggValue::VecI64(loads.clone()));
            self.engine.set_global(seeded_global(&self.cfg, loads));
        } else {
            let program =
                SpinnerProgram { cfg: self.cfg.clone(), start_phase: Phase::Initialize };
            self.engine.warm_reset_undirected(
                program,
                &self.undirected,
                &placement,
                |v| {
                    VertexState::new(
                        labels[v as usize],
                        affected.get(v as usize).copied().unwrap_or(true),
                    )
                },
                |_, _, w| EdgeState { weight: w, neighbor_label: NO_LABEL },
            );
        }
        self.placement = placement;
        let mut summary = self.engine.run();

        // Lane-health escalation: when the transport declares a lane dead
        // (retry budget exhausted or take deadline hit), the engine aborts
        // the run with a typed [`HaltReason::TransportFailed`] instead of
        // hanging. The session treats the failing lane's *sender* as a lost
        // worker — its outbound state is unreachable, which is
        // operationally the same as the worker being gone — and drives the
        // exact [`StreamEvent::WorkerLoss`] recovery path: reseed the
        // vertices it hosted, dense warm reset restarting only those, and
        // re-run. [`Engine::run`] resets the transport on entry (the
        // replacement worker connects fresh), and scripted fault plans keep
        // their per-lane frame clocks across resets (consumed faults stay
        // consumed), so the loop terminates on any finite plan. Failed
        // attempts' metrics are kept and prepended below so the window
        // accounts every frame that actually moved.
        let mut transport_lost = 0u64;
        let mut lanes_degraded = 0u64;
        let mut lanes_dead = 0u64;
        let mut failed_metrics = Vec::new();
        let mut escalation_labels: Option<Vec<Label>> = None;
        while let HaltReason::TransportFailed(err) = summary.halt {
            let (degraded, dead) = self.engine.transport_health_counts();
            lanes_degraded = lanes_degraded.max(degraded);
            lanes_dead += dead.max(1);
            failed_metrics.append(&mut summary.metrics);
            let lost_worker = err.sender() as WorkerId;
            let flags: Vec<bool> =
                self.placement.as_slice().iter().map(|&w| w == lost_worker).collect();
            transport_lost += flags.iter().filter(|&&f| f).count() as u64;
            let seed = escalation_labels.as_deref().unwrap_or(&labels);
            let relabeled = loss_labels(&self.undirected, seed, &flags, self.cfg.k);
            let placement = self.placement_for(&relabeled);
            let program =
                SpinnerProgram { cfg: self.cfg.clone(), start_phase: Phase::Initialize };
            self.engine.warm_reset_undirected(
                program,
                &self.undirected,
                &placement,
                |v| VertexState::new(relabeled[v as usize], flags[v as usize]),
                |_, _, w| EdgeState { weight: w, neighbor_label: NO_LABEL },
            );
            self.placement = placement;
            escalation_labels = Some(relabeled);
            summary = self.engine.run();
        }
        if !failed_metrics.is_empty() {
            failed_metrics.append(&mut summary.metrics);
            summary.metrics = failed_metrics;
        }
        let (degraded, dead) = self.engine.transport_health_counts();
        let lanes_degraded = lanes_degraded.max(degraded);
        let lanes_dead = lanes_dead + dead;
        let lost_vertices = lost_vertices + transport_lost;

        let result =
            result_from_engine(&self.cfg, &self.engine, &summary, Some(&self.undirected));

        let moved =
            self.labels.iter().zip(&result.labels).filter(|&(&old, &new)| old != new).count();
        let migration_fraction = if old_n > 0 { moved as f64 / old_n as f64 } else { 1.0 };
        self.labels = result.labels.clone();
        let recovering = matches!(&event, StreamEvent::WorkerLoss { .. }) || transport_lost > 0;
        let placement_moved =
            if recovering { self.recovery_replace() } else { self.feedback_replace(&result) };
        self.windows.push(WindowReport::from_parts(WindowReportParts {
            window: self.windows.len() as u32,
            k: self.cfg.k,
            num_vertices: self.undirected.num_vertices(),
            num_edges: self.undirected.num_edges(),
            phi: result.quality.phi,
            rho: result.quality.rho,
            migration_fraction,
            iterations: result.iterations,
            supersteps: result.supersteps,
            messages: result.totals.messages,
            sent_local: result.totals.local_messages(),
            sent_remote: result.totals.remote_messages,
            sent_local_records: result.totals.local_records,
            sent_remote_records: result.totals.remote_records,
            placement_moved,
            computed: result.totals.computed,
            wall_ns: result.wall_ns,
            fabric_reallocs: fabric_reallocs(&summary),
            lost_vertices,
            wire_bytes: result.totals.wire_bytes,
            wire_frames: result.totals.wire_frames,
            wire_folded: result.totals.wire_folded,
            retransmits: result.totals.retransmits,
            lanes_degraded,
            lanes_dead,
        }));
        self.windows.last().expect("window just pushed")
    }

    /// Installs a scripted transport fault plan on the engine, rebuilding
    /// the transport stack ([`spinner_pregel::FaultyTransport`] under the
    /// reliable layer when [`SpinnerConfig::transport_retry`] leaves it on).
    /// No-op on the default direct in-memory transport — chaos needs a
    /// wire. Fault plans are transient chaos apparatus: they are never
    /// persisted into [`SessionState`].
    pub fn inject_transport_faults(&mut self, plan: TransportFaultPlan) {
        self.engine.inject_transport_faults(plan);
    }

    /// `(injected, remaining)` counts from the installed fault plan —
    /// `(0, 0)` when no plan is installed.
    pub fn transport_chaos_counts(&self) -> (u64, u64) {
        self.engine.transport_chaos_counts()
    }

    /// Receive-side reliability counters summed over every lane of the
    /// engine's transport (all-zero on the direct path or a clean wire).
    pub fn transport_recv_stats(&self) -> TransportStats {
        self.engine.transport_recv_stats()
    }

    /// The placement for a window starting from `labels`: hash placement
    /// until feedback first triggers, the label-driven map afterwards
    /// (labels beyond the map — partitions added by an elastic resize —
    /// fall back to the modulo wrap until the next feedback migration).
    fn placement_for(&self, labels: &[Label]) -> Placement {
        match &self.label_to_worker {
            Some(assignment) => {
                Placement::from_label_assignment(labels, assignment, self.cfg.num_workers)
            }
            None => Placement::hashed(
                labels.len() as VertexId,
                self.cfg.num_workers,
                self.cfg.seed ^ 0x70C,
            ),
        }
    }

    /// Label-driven placement feedback (§V-F): when the window that just
    /// converged pushed more than the configured share of its messages
    /// across workers, migrate every vertex onto the worker owning its
    /// computed label — balanced greedy packing, so `k > num_workers` does
    /// not pile large labels onto one worker — reusing the engine's
    /// fabric-preserving migration. Returns the number of vertices that
    /// changed worker (0 when feedback is off or locality was good enough).
    ///
    /// The migration runs eagerly through [`Engine::replace`] — one
    /// O(V + E) topology pass, a small constant fraction of the window's
    /// multi-superstep re-convergence — so the warm engine is genuinely
    /// hosted on the placement the session reports from this point on,
    /// rather than the session merely *planning* a placement for the next
    /// warm reset. (A pure bookkeeping alternative — diffing the new
    /// placement against the engine's worker map — would produce the same
    /// `moved` count and the same next-window behaviour, since the warm
    /// reset reloads topology anyway; re-hosting for real is what keeps
    /// "the engine's layout" and "the session's placement" the same thing,
    /// with the migration itself exercised and accounted, not simulated.)
    /// When the threshold keeps firing on an unchanged placement,
    /// `Engine::replace` detects `moved == 0` in O(V) and skips the
    /// rebuild.
    fn feedback_replace(&mut self, result: &PartitionResult) -> u64 {
        let Some(threshold) = self.cfg.placement_feedback else { return 0 };
        let remote_share = 1.0 - result.totals.local_share();
        if remote_share <= threshold {
            return 0;
        }
        self.replace_by_label()
    }

    /// A [`StreamEvent::WorkerLoss`] window's final step: re-place every
    /// vertex by computed label unconditionally (no feedback threshold —
    /// recovery must land the reseeded vertices on deliberate, balanced
    /// workers, not wherever the reset placement put them). Installs the
    /// label → worker map even when feedback is off, so later windows keep
    /// the recovered, label-aligned placement.
    fn recovery_replace(&mut self) -> u64 {
        self.replace_by_label()
    }

    /// Migrates the engine onto the balanced by-label placement for the
    /// current labels, installing the label → worker map. Returns how many
    /// vertices changed worker.
    fn replace_by_label(&mut self) -> u64 {
        let assignment =
            Placement::balanced_label_assignment(&self.labels, self.cfg.num_workers);
        let placement =
            Placement::from_label_assignment(&self.labels, &assignment, self.cfg.num_workers);
        let stats = self.engine.replace(&placement);
        self.placement = placement;
        self.label_to_worker = Some(assignment);
        stats.moved
    }

    /// Runs a whole stream of events, returning the final report.
    pub fn run_stream(
        &mut self,
        events: impl IntoIterator<Item = StreamEvent>,
    ) -> &WindowReport {
        for event in events {
            self.apply(event);
        }
        self.windows.last().expect("bootstrap window always present")
    }

    /// The current labelling.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The current partition count.
    pub fn k(&self) -> u32 {
        self.cfg.k
    }

    /// The session configuration (k tracks [`StreamEvent::Resize`] events).
    pub fn config(&self) -> &SpinnerConfig {
        &self.cfg
    }

    /// The evolving directed edge list.
    pub fn graph(&self) -> &DirectedGraph {
        &self.graph
    }

    /// The current undirected view.
    pub fn undirected(&self) -> &UndirectedGraph {
        &self.undirected
    }

    /// All window reports so far (index 0 is the bootstrap).
    pub fn windows(&self) -> &[WindowReport] {
        &self.windows
    }

    /// The partition quality the last window converged to.
    pub fn last(&self) -> &WindowReport {
        self.windows.last().expect("bootstrap window always present")
    }

    /// The label → worker map installed by the latest placement-feedback
    /// migration, if feedback has triggered yet.
    pub fn label_assignment(&self) -> Option<&[WorkerId]> {
        self.label_to_worker.as_deref()
    }

    /// The placement the warm engine is currently hosted on — what a
    /// serving layer should publish for vertex → worker routing. Updated by
    /// every window's warm reset and by each placement-feedback migration.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }
}

/// A self-contained snapshot of a [`StreamSession`] — everything
/// [`StreamSession::from_state`] needs to continue the stream (and serve
/// lookups) bit-identically in another process. Produced by
/// [`StreamSession::state`]; `spinner_serving` defines the binary on-disk
/// encoding.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The session configuration; `k` reflects any [`StreamEvent::Resize`]
    /// already applied.
    pub cfg: SpinnerConfig,
    /// The evolving directed edge list as of the snapshot.
    pub graph: DirectedGraph,
    /// The current labelling (one label per vertex).
    pub labels: Vec<Label>,
    /// The worker hosting each vertex — the engine's live placement.
    pub placement: Vec<WorkerId>,
    /// The label → worker map installed by the latest placement-feedback
    /// migration, if any.
    pub label_assignment: Option<Vec<WorkerId>>,
    /// All window reports so far (index 0 is the bootstrap).
    pub windows: Vec<WindowReport>,
}

/// A delta window's frontier: the touched flags widened by one hop. A
/// touched vertex's direct neighbours see their label histograms or load
/// penalties change (or receive its first migration announcement before any
/// message could wake them), so one hop is exactly the set whose next score
/// can differ; everything farther is reachable only through migration
/// announcements, which wake parked vertices through the normal path.
fn expand_frontier(graph: &UndirectedGraph, touched: Vec<bool>) -> Vec<bool> {
    let mut out = touched.clone();
    for (v, &t) in touched.iter().enumerate() {
        if t {
            for &n in graph.neighbors(v as VertexId).0 {
                out[n as usize] = true;
            }
        }
    }
    out
}

/// Total message-fabric growth events across a run.
fn fabric_reallocs(summary: &spinner_pregel::RunSummary) -> u64 {
    summary.metrics.iter().flat_map(|s| s.per_worker.iter().map(|w| w.fabric_reallocs)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{adapt_with_delta, elastic, partition};
    use spinner_graph::generators::{planted_partition, SbmConfig};
    use spinner_graph::mutation::{sample_new_edges, sample_removed_edges};
    use spinner_graph::{DeltaStream, DeltaStreamConfig};

    fn base(n: u32, seed: u64) -> DirectedGraph {
        planted_partition(SbmConfig {
            n,
            communities: 6,
            internal_degree: 8.0,
            external_degree: 1.5,
            skew: None,
            seed,
        })
    }

    fn cfg(k: u32) -> SpinnerConfig {
        let mut cfg = SpinnerConfig::new(k).with_seed(42);
        cfg.num_workers = 4;
        cfg.max_iterations = 60;
        cfg
    }

    #[test]
    fn warm_delta_window_matches_cold_adapt() {
        let g0 = base(2000, 3);
        let cfg = cfg(6);
        let mut session = StreamSession::new(g0.clone(), cfg.clone());
        let cold_initial = partition(&from_undirected_edges(&g0), &cfg);
        assert_eq!(session.labels(), cold_initial.labels.as_slice());

        let delta = GraphDelta {
            added_edges: sample_new_edges(&g0, 120, 0.8, 9),
            removed_edges: sample_removed_edges(&g0, 40, 11),
            new_vertices: 0,
        };
        let g1 = apply_delta(&g0, &delta);
        let cold =
            adapt_with_delta(&from_undirected_edges(&g1), &cold_initial.labels, &delta, &cfg);
        session.apply(StreamEvent::Delta(delta));
        assert_eq!(session.labels(), cold.labels.as_slice(), "warm adapt diverged from cold");
        let w = session.last();
        assert_eq!(w.iterations(), cold.iterations);
        assert!((w.phi() - cold.quality.phi).abs() < 1e-15);
        assert!((w.rho() - cold.quality.rho).abs() < 1e-15);
    }

    #[test]
    fn warm_resize_window_matches_cold_elastic() {
        let g0 = base(1500, 5);
        let c6 = cfg(6);
        let mut session = StreamSession::new(g0.clone(), c6.clone());
        let initial = session.labels().to_vec();

        let undirected = from_undirected_edges(&g0);
        let grown = elastic(&undirected, &initial, 6, &cfg(8));
        session.apply(StreamEvent::Resize { k: 8 });
        assert_eq!(session.k(), 8);
        assert_eq!(session.labels(), grown.labels.as_slice(), "warm elastic diverged");
    }

    #[test]
    fn multi_window_stream_stays_warm_and_balanced() {
        let g0 = base(2500, 7);
        let cfg = cfg(6);
        let mut session = StreamSession::new(g0.clone(), cfg.clone());
        let stream = DeltaStream::new(
            g0,
            DeltaStreamConfig { windows: 5, seed: 17, ..DeltaStreamConfig::default() },
        );
        for delta in stream {
            let report = session.apply(StreamEvent::Delta(delta));
            assert!(report.migration_fraction() < 0.5, "window moved too much");
            assert!(report.rho() < cfg.c + 0.25, "rho {}", report.rho());
        }
        assert_eq!(session.windows().len(), 6);
        // Windows >= 2 run entirely inside warmed buffers.
        for w in &session.windows()[2..] {
            assert_eq!(w.fabric_reallocs(), 0, "window {} grew the fabric", w.window());
        }
        // Labels cover the grown vertex set.
        assert_eq!(session.labels().len(), session.undirected().num_vertices() as usize);
        assert!(session.labels().iter().all(|&l| l < session.k()));
    }

    /// The §V-F feedback loop: with the synchronous load view, re-placing
    /// vertices by computed label must leave every label bit-identical while
    /// strictly raising the worker-local message share of later windows.
    #[test]
    fn placement_feedback_improves_locality_but_not_labels() {
        let g0 = base(2000, 29);
        let mut plain_cfg = cfg(6);
        plain_cfg.async_worker_loads = false;
        let feedback_cfg = plain_cfg.clone().with_placement_feedback(0.5);

        let mut plain = StreamSession::new(g0.clone(), plain_cfg);
        let mut fed = StreamSession::new(g0.clone(), feedback_cfg);
        // Hash placement over 4 workers leaves ~3/4 of messages remote, so
        // the bootstrap window must trigger the migration.
        assert!(fed.last().placement_moved() > 0, "feedback did not trigger");
        assert!(fed.label_assignment().is_some());
        assert_eq!(plain.labels(), fed.labels());

        let stream = DeltaStream::new(
            g0,
            DeltaStreamConfig { windows: 3, seed: 31, ..DeltaStreamConfig::default() },
        );
        for delta in stream {
            plain.apply(StreamEvent::Delta(delta.clone()));
            fed.apply(StreamEvent::Delta(delta));
            let (p, f) = (plain.last(), fed.last());
            assert_eq!(plain.labels(), fed.labels(), "feedback changed the label space");
            assert_eq!(p.messages(), f.messages(), "feedback changed message volume");
            assert!(
                f.local_share() > p.local_share(),
                "window {}: label placement {:.3} <= hash {:.3}",
                f.window(),
                f.local_share(),
                p.local_share()
            );
        }
    }

    /// `state()` → `from_state()` round-trips mid-stream: the restored
    /// session must continue the stream bit-identically to the original —
    /// labels, reports (modulo wall-clock), placement, and feedback map.
    #[test]
    fn from_state_continues_bit_identically() {
        let g0 = base(1800, 19);
        let cfg = cfg(6).with_placement_feedback(0.5);
        let mut original = StreamSession::new(g0.clone(), cfg);
        let mut stream = DeltaStream::new(
            g0,
            DeltaStreamConfig { windows: 6, seed: 37, ..DeltaStreamConfig::default() },
        );
        // Advance two windows (plus a resize) before snapshotting.
        original.apply(StreamEvent::Delta(stream.next().expect("window")));
        original.apply(StreamEvent::Resize { k: 8 });

        let mut restored = StreamSession::from_state(original.state());
        assert_eq!(restored.labels(), original.labels());
        assert_eq!(restored.k(), original.k());
        assert_eq!(restored.placement(), original.placement());
        assert_eq!(restored.label_assignment(), original.label_assignment());
        assert_eq!(restored.windows().len(), original.windows().len());

        for event in [
            StreamEvent::Delta(stream.next().expect("window")),
            StreamEvent::Resize { k: 5 },
            StreamEvent::Delta(stream.next().expect("window")),
        ] {
            original.apply(event.clone());
            restored.apply(event);
            assert_eq!(restored.labels(), original.labels(), "restored session diverged");
            assert_eq!(restored.placement(), original.placement());
            let (o, r) = (original.last(), restored.last());
            assert_eq!(r.window(), o.window());
            assert_eq!(r.iterations(), o.iterations());
            assert_eq!(r.phi().to_bits(), o.phi().to_bits());
            assert_eq!(r.rho().to_bits(), o.rho().to_bits());
            assert_eq!(r.messages(), o.messages());
            assert_eq!(r.placement_moved(), o.placement_moved());
        }
    }

    /// Worker-loss recovery: reseeding + affected-only re-convergence must
    /// keep label migration proportional to the lost fraction (not the
    /// graph), land a valid labelling, and be deterministic across a
    /// `state()`/`from_state()` process boundary.
    #[test]
    fn worker_loss_recovery_is_scoped_and_deterministic() {
        let g0 = base(2500, 11);
        let cfg = cfg(6).with_placement_feedback(0.5);
        let mut session = StreamSession::new(g0, cfg);
        session.apply(StreamEvent::Delta(GraphDelta::additions(vec![(0, 1200), (3, 900)])));
        let mut twin = StreamSession::from_state(session.state());
        let phi_before = session.last().phi();
        let n = session.labels().len();

        let lost_worker: WorkerId = 2;
        let hosted =
            session.placement().as_slice().iter().filter(|&&w| w == lost_worker).count() as u64;
        assert!(hosted > 0, "test worker hosts nothing");

        let report = session.apply(StreamEvent::WorkerLoss { worker: lost_worker }).clone();
        assert_eq!(report.lost_vertices(), hosted);
        assert!(report.is_recovery());
        let moved = (report.migration_fraction() * n as f64).round() as u64;
        assert!(moved < 2 * hosted, "recovery moved {moved} labels for {hosted} lost vertices");
        assert!(moved < n as u64 / 2, "recovery approached a scratch repartition");
        assert!(
            report.phi() > phi_before - 0.1,
            "recovery φ {} collapsed from {phi_before}",
            report.phi()
        );
        assert!(session.labels().iter().all(|&l| l < session.k()));

        // Same loss applied to the restored twin: bit-identical recovery
        // (modulo wall-clock).
        twin.apply(StreamEvent::WorkerLoss { worker: lost_worker });
        assert_eq!(twin.labels(), session.labels());
        assert_eq!(twin.placement(), session.placement());
        let mut a = twin.last().to_parts();
        let mut b = report.to_parts();
        a.wall_ns = 0;
        b.wall_ns = 0;
        assert_eq!(a, b);
    }

    /// A loss window installs the label → worker map even on a session
    /// without placement feedback: the reseeded vertices must land on
    /// deliberate workers (hash placement scatters each label across all
    /// workers, so the by-label re-place genuinely migrates here), and
    /// later windows keep the recovered placement.
    #[test]
    fn worker_loss_replaces_even_without_feedback() {
        let g0 = base(1200, 17);
        let mut session = StreamSession::new(g0, cfg(4));
        assert!(session.label_assignment().is_none());
        let report = session.apply(StreamEvent::WorkerLoss { worker: 0 }).clone();
        assert!(session.label_assignment().is_some(), "loss must install the label map");
        assert!(report.is_recovery());
        assert!(report.placement_moved() > 0, "hash → by-label re-place must migrate");
    }

    #[test]
    fn interleaved_deltas_and_resizes_unify() {
        let g0 = base(1200, 13);
        let mut session = StreamSession::new(g0.clone(), cfg(4));
        let mut stream = DeltaStream::new(
            g0,
            DeltaStreamConfig { windows: 4, seed: 23, ..DeltaStreamConfig::default() },
        );
        session.apply(StreamEvent::Delta(stream.next().expect("window")));
        session.apply(StreamEvent::Resize { k: 6 }); // grow mid-stream
        session.apply(StreamEvent::Delta(stream.next().expect("window")));
        session.apply(StreamEvent::Resize { k: 3 }); // shrink mid-stream
        session.apply(StreamEvent::Delta(stream.next().expect("window")));
        assert_eq!(session.k(), 3);
        assert!(session.labels().iter().all(|&l| l < 3));
        let loads = {
            let mut loads = vec![0u64; 3];
            for &l in session.labels() {
                loads[l as usize] += 1;
            }
            loads
        };
        assert!(loads.iter().all(|&l| l > 0), "empty partition after shrink: {loads:?}");
        assert_eq!(session.windows().len(), 6);
    }
}
