//! The paper's analytical results (Propositions 1–3), as executable models.
//!
//! - Propositions 1–2 analyse the k-dimensional *load vector*
//!   `x = [b(l_1) … b(l_k)]` whose evolution under migrations is modelled as
//!   `x_t = X_t · X_{t-1} ⋯ X_1 · x_0` with row-stochastic `X_t` (§III-C /
//!   Appendix A). By ergodicity of backward products, under B-connectivity
//!   the product converges to a rank-one matrix and all entries of `x_t`
//!   converge exponentially to a common value; with *symmetric* exchange
//!   (doubly-stochastic `X_t`, e.g. Metropolis weights) that common value is
//!   the even balancing `C = Σx/k`.
//! - Proposition 3 bounds the probability that the probabilistic migration
//!   step (Eq. 14) overshoots a partition's capacity, via Hoeffding's
//!   inequality.
//!
//! The tests in this module (and the property tests in the workspace)
//! validate the reproduced implementation against these results.

use spinner_graph::rng::SplitMix64;

/// The load-vector model of §III-C: `x_{t+1} = X_t · x_t` with
/// row-stochastic `X_t`.
#[derive(Debug, Clone)]
pub struct LoadVectorModel {
    /// Current load per partition.
    pub x: Vec<f64>,
}

impl LoadVectorModel {
    /// Starts from the given loads.
    pub fn new(x: Vec<f64>) -> Self {
        assert!(!x.is_empty());
        Self { x }
    }

    /// The even balancing value `C = Σx / k`.
    pub fn even_balancing(&self) -> f64 {
        self.x.iter().sum::<f64>() / self.x.len() as f64
    }

    /// `‖x − x*‖∞` where `x* = [C … C]` — the quantity bounded by Prop. 1.
    pub fn distance_to_even(&self) -> f64 {
        let c = self.even_balancing();
        self.x.iter().map(|&v| (v - c).abs()).fold(0.0, f64::max)
    }

    /// Spread `max x − min x`: the consensus disagreement, which converges
    /// to zero for any ergodic (not necessarily doubly-stochastic) product.
    pub fn spread(&self) -> f64 {
        let max = self.x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = self.x.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// One step `x ← M · x` (row-stochastic `M`: each partition's new load
    /// is a convex combination of current loads, the paper's model).
    pub fn step(&mut self, matrix: &[Vec<f64>]) {
        let k = self.x.len();
        assert_eq!(matrix.len(), k);
        let mut next = vec![0.0; k];
        for (i, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), k);
            debug_assert!(
                (row.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "row {i} is not stochastic"
            );
            for (j, &f) in row.iter().enumerate() {
                next[i] += f * self.x[j];
            }
        }
        self.x = next;
    }
}

/// A random row-stochastic matrix with full support: every partition keeps
/// `self_weight` of its value and mixes in random positive shares of every
/// other. Makes the partition-graph sequence B-connected with B = 1.
pub fn uniform_gossip_matrix(
    k: usize,
    self_weight: f64,
    rng: &mut SplitMix64,
) -> Vec<Vec<f64>> {
    assert!((0.0..1.0).contains(&self_weight));
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        let mut weights: Vec<f64> =
            (0..k).map(|j| if j == i { 0.0 } else { 0.1 + rng.next_f64() }).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w = (*w / total) * (1.0 - self_weight);
        }
        weights[i] = self_weight;
        m[i] = weights;
    }
    m
}

/// A doubly-stochastic exchange matrix from Metropolis weights on the given
/// undirected partition graph (symmetric load exchange): `M[i][j] =
/// 1/(1 + max(d_i, d_j))` for edges, diagonal takes the remainder. Symmetric
/// ⇒ doubly stochastic ⇒ the consensus value is the even balancing.
pub fn metropolis_matrix(k: usize, edges: &[(usize, usize)]) -> Vec<Vec<f64>> {
    let mut deg = vec![0usize; k];
    for &(a, b) in edges {
        assert!(a < k && b < k && a != b);
        deg[a] += 1;
        deg[b] += 1;
    }
    let mut m = vec![vec![0.0; k]; k];
    for &(a, b) in edges {
        let w = 1.0 / (1.0 + deg[a].max(deg[b]) as f64);
        m[a][b] += w;
        m[b][a] += w;
    }
    for (i, row) in m.iter_mut().enumerate() {
        let off: f64 = row.iter().sum::<f64>() - row[i];
        row[i] = 1.0 - off;
    }
    m
}

/// Proposition 3: upper bound on the probability that, after one
/// probabilistic migration step, the load of a partition exceeds its
/// capacity by `eps · r(l)`:
///
/// `Pr[b_{i+1}(l) ≥ C + ε·r(l)] ≤ exp(−2·|M(l)|·(ε·r(l)/(Δ−δ))²)`
///
/// where `|M(l)|` is the number of candidates, `r(l)` the remaining
/// capacity, and `δ, Δ` the min/max candidate degree.
/// **Note (reproduction finding).** This is the bound *as printed in the
/// paper*. Validating it by Monte-Carlo (see `exp-theory`) shows it is not a
/// correct upper bound for all parameter regimes: Hoeffding's inequality for
/// a sum of `|M|` variables with ranges `[0, deg_v]` puts the candidate
/// count in the *denominator* of the exponent
/// (`exp(−2t²/Σ deg_v²)`), whereas the paper multiplies by `|M|`. The
/// paper's qualitative claim (violation probability vanishes as candidates
/// grow, because `r(l)` grows with the candidate mass) survives under the
/// rigorous bound [`capacity_violation_bound_rigorous`].
pub fn capacity_violation_bound(
    candidates: u64,
    eps: f64,
    remaining_capacity: f64,
    min_degree: u64,
    max_degree: u64,
) -> f64 {
    assert!(max_degree >= min_degree);
    if candidates == 0 {
        return 0.0;
    }
    if max_degree == min_degree {
        // Zero-variance candidates: the realised load concentrates exactly;
        // any positive overshoot has probability bound 0 in the limit.
        return if eps > 0.0 { 0.0 } else { 1.0 };
    }
    let phi = (eps * remaining_capacity / (max_degree - min_degree) as f64).powi(2);
    (-2.0 * candidates as f64 * phi).exp().min(1.0)
}

/// The rigorous Hoeffding bound for the same event: each candidate `v`
/// contributes `X_v ∈ [0, deg_v]`, so
/// `Pr[X − E[X] ≥ ε·r] ≤ exp(−2(ε·r)² / Σ_v deg_v²)`.
pub fn capacity_violation_bound_rigorous(
    degrees: &[u64],
    eps: f64,
    remaining_capacity: f64,
) -> f64 {
    if degrees.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = degrees.iter().map(|&d| (d as f64) * (d as f64)).sum();
    if sum_sq == 0.0 {
        return if eps > 0.0 { 0.0 } else { 1.0 };
    }
    let t = eps * remaining_capacity;
    (-2.0 * t * t / sum_sq).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Proposition 1 with symmetric exchange: distance to the even balancing
    /// decays exponentially under a B-connected sequence.
    #[test]
    fn symmetric_exchange_converges_exponentially_to_even() {
        let mut rng = SplitMix64::new(5);
        let mut model = LoadVectorModel::new(vec![1000.0, 10.0, 10.0, 10.0, 10.0]);
        let initial = model.distance_to_even();
        let mut history = vec![initial];
        for t in 0..40 {
            // Random connected partition graph: a ring plus random chords.
            let mut edges: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
            if t % 2 == 0 {
                edges.push((rng.next_bounded(5) as usize, 0));
            }
            edges.retain(|&(a, b)| a != b);
            let m = metropolis_matrix(5, &edges);
            model.step(&m);
            history.push(model.distance_to_even());
        }
        assert!(
            history.last().unwrap() / initial < 1e-6,
            "ratio {}",
            history.last().unwrap() / initial
        );
        // Geometric envelope q·μ^t (Prop. 1's exponential form).
        let mu: f64 = 0.9;
        for (t, &d) in history.iter().enumerate() {
            assert!(
                d <= 2.0 * initial * mu.powi(t as i32) + 1e-9,
                "iteration {t}: distance {d}"
            );
        }
        // Doubly-stochastic steps conserve total load.
        assert!((model.x.iter().sum::<f64>() - 1040.0).abs() < 1e-6);
    }

    /// General (non-symmetric) B-connected products still reach consensus
    /// exponentially (Props. 1–2), though not necessarily the even value.
    #[test]
    fn row_stochastic_products_reach_consensus() {
        let mut rng = SplitMix64::new(7);
        let mut model = LoadVectorModel::new(vec![900.0, 50.0, 30.0, 20.0]);
        let initial = model.spread();
        for _ in 0..40 {
            let m = uniform_gossip_matrix(4, 0.5, &mut rng);
            model.step(&m);
        }
        assert!(model.spread() / initial < 1e-6, "spread {}", model.spread());
    }

    /// Proposition 2 flavour: disconnected blocks converge within
    /// themselves (to each block's average under symmetric exchange).
    #[test]
    fn disconnected_blocks_converge_separately() {
        let mut model = LoadVectorModel::new(vec![100.0, 0.0, 60.0, 20.0]);
        // Blocks {0,1} and {2,3} never exchange.
        let m = {
            let a = metropolis_matrix(2, &[(0, 1)]);
            vec![
                vec![a[0][0], a[0][1], 0.0, 0.0],
                vec![a[1][0], a[1][1], 0.0, 0.0],
                vec![0.0, 0.0, a[0][0], a[0][1]],
                vec![0.0, 0.0, a[1][0], a[1][1]],
            ]
        };
        for _ in 0..200 {
            model.step(&m);
        }
        assert!((model.x[0] - 50.0).abs() < 1e-6);
        assert!((model.x[1] - 50.0).abs() < 1e-6);
        assert!((model.x[2] - 40.0).abs() < 1e-6);
        assert!((model.x[3] - 40.0).abs() < 1e-6);
    }

    /// The paper's worked example below Prop. 3: |M(l)| = 200, δ = 1,
    /// Δ = 500; overshoot by 0.2·r(l) has probability < 0.2 and by 0.4·r(l)
    /// probability < 0.0016.
    #[test]
    fn paper_example_numbers() {
        let p02 = capacity_violation_bound(200, 0.2, 1000.0, 1, 500);
        let p04 = capacity_violation_bound(200, 0.4, 1000.0, 1, 500);
        assert!(p02 < 0.2, "p02 {p02}");
        assert!(p04 < 0.0016, "p04 {p04}");
        assert!(p04 < p02);
    }

    #[test]
    fn bound_monotone_in_candidates_and_eps() {
        let base = capacity_violation_bound(100, 0.2, 500.0, 1, 100);
        assert!(capacity_violation_bound(200, 0.2, 500.0, 1, 100) < base);
        assert!(capacity_violation_bound(100, 0.4, 500.0, 1, 100) < base);
        assert!(capacity_violation_bound(100, 0.2, 500.0, 1, 400) > base);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(capacity_violation_bound(0, 0.2, 100.0, 1, 10), 0.0);
        assert_eq!(capacity_violation_bound(10, 0.2, 100.0, 5, 5), 0.0);
        assert!(capacity_violation_bound(1, 1e-9, 1.0, 1, 1_000_000) <= 1.0);
    }

    #[test]
    fn metropolis_matrix_is_doubly_stochastic() {
        let m = metropolis_matrix(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        for (i, row_values) in m.iter().enumerate() {
            let row: f64 = row_values.iter().sum();
            let col: f64 = (0..4).map(|j| m[j][i]).sum();
            assert!((row - 1.0).abs() < 1e-12);
            assert!((col - 1.0).abs() < 1e-12);
        }
    }
}
