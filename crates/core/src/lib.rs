//! **Spinner**: scalable and adaptive k-way balanced graph partitioning via
//! label propagation, implemented as a Pregel program — a reproduction of
//! *Martella, Logothetis, Loukas, Siganos: "Spinner: Scalable Graph
//! Partitioning in the Cloud" (ICDE 2017)*.
//!
//! # Algorithm
//!
//! Spinner assigns one of `k` labels (partitions) to every vertex so that
//! edge locality is maximised while partitions stay balanced on edge load:
//!
//! 1. **K-way LPA** (Eq. 4): a vertex prefers the label most frequent among
//!    its neighbours, weighted by the Eq. 3 conversion weights so the score
//!    counts the messages a Pregel application would exchange.
//! 2. **Balance** (Eq. 8): the normalised locality score is penalised by
//!    `π(l) = b(l)/C` where `b(l)` is the partition's current load and
//!    `C = c·|E|/k` its capacity.
//! 3. **Decentralised migrations** (Eq. 14): candidates for a label `l`
//!    migrate with probability `r(l)/m(l)`, which keeps expected load within
//!    capacity without any coordination (Hoeffding bound, Prop. 3, in
//!    [`theory`]).
//! 4. **Asynchronous per-worker counters** (§IV-A4): within a superstep,
//!    vertices on the same logical worker observe each other's candidacies
//!    through worker-local load counters, speeding up convergence.
//! 5. **Halting** (Eq. 10): stop when the global score improves less than
//!    `ε` for `w` consecutive iterations.
//! 6. **Incremental & elastic repartitioning** (§III-D/E): restart from the
//!    previous assignment on graph changes; on partition-count changes move
//!    each vertex to a new partition with probability `n/(k+n)` (Eq. 11).
//!
//! # Quick start
//!
//! ```
//! use spinner_core::{partition, SpinnerConfig};
//! use spinner_graph::{generators, conversion};
//!
//! let directed = generators::planted_partition(generators::SbmConfig {
//!     n: 2000, communities: 8, internal_degree: 8.0, external_degree: 2.0,
//!     skew: None, seed: 7,
//! });
//! let graph = conversion::to_weighted_undirected(&directed);
//! let result = partition(&graph, &SpinnerConfig::new(8));
//! assert_eq!(result.labels.len(), 2000);
//! println!("phi = {:.2}, rho = {:.2}", result.quality.phi, result.quality.rho);
//! ```

pub mod config;
pub mod driver;
pub mod program;
pub mod state;
pub mod stream;
pub mod theory;

pub use config::SpinnerConfig;
pub use driver::{
    adapt, adapt_with_delta, elastic, partition, partition_directed, partition_with_placement,
    IterationStats, PartitionResult,
};
pub use state::{Label, NO_LABEL};
pub use stream::{SessionState, StreamEvent, StreamSession, WindowReport, WindowReportParts};
