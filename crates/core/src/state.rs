//! Vertex, edge, message, global, and worker state of the Spinner program.

use spinner_graph::VertexId;

/// A partition label (`0..k`).
pub type Label = u32;

/// Sentinel for "no label": unlabeled edges before the first propagation and
/// absent migration candidates.
pub const NO_LABEL: Label = Label::MAX;

/// Per-vertex state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexState {
    /// Current partition label α(v).
    pub label: Label,
    /// Weighted degree deg_w(v) (Eq. 3 weights). Computed during the
    /// Initialize superstep. Under the `Edges` objective this is also the
    /// vertex's load contribution; under `Vertices` the load is 1.
    pub degree: u64,
    /// The label this vertex is a candidate to migrate to (set in
    /// ComputeScores, consumed in ComputeMigrations), or [`NO_LABEL`].
    pub candidate: Label,
    /// Whether this vertex participates in migration restarts under
    /// [`crate::config::RestartScope::AffectedOnly`]; always `true` for the
    /// paper's full-restart strategy.
    pub affected: bool,
}

/// Per-edge state: the Eq. 3 weight and the cached label of the neighbour at
/// the other endpoint ("each vertex stores the label of a neighbor in the
/// value of the edge that connects them", §IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeState {
    /// w(u, v) ∈ {1, 2}.
    pub weight: u8,
    /// Last label announced by the neighbour, or [`NO_LABEL`].
    pub neighbor_label: Label,
}

/// Message: `(sender, sender's new label)`. The sender id locates the edge
/// whose cached label must be updated. During NeighborPropagation the label
/// field is [`NO_LABEL`] (only the sender id matters).
pub type MigrationMsg = (VertexId, Label);

/// The phases of Fig. 2, advanced by master compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Conversion 1/2: send the vertex id along out-edges.
    NeighborPropagation,
    /// Conversion 2/2: create/upgrade reverse edges (Eq. 3 weights).
    NeighborDiscovery,
    /// Aggregate initial loads and announce initial labels.
    Initialize,
    /// LPA iteration step 1: find each vertex's best label.
    ComputeScores,
    /// LPA iteration step 2: probabilistic migrations (Eq. 14).
    ComputeMigrations,
}

/// Master-owned global state, broadcast to vertices each superstep.
#[derive(Debug, Clone)]
pub struct GlobalState {
    /// Current phase.
    pub phase: Phase,
    /// Number of partitions.
    pub k: u32,
    /// Per-partition capacities C_l (Eq. 5: `c·|E|/k` for homogeneous
    /// systems; proportional to the configured weights otherwise), set after
    /// Initialize.
    pub capacities: Vec<f64>,
    /// Total edge weight Σ_l b(l) (= 2·|directed edges|).
    pub total_weight: u64,
    /// Current partition loads b(l) (from the persistent aggregator).
    pub loads: Vec<i64>,
    /// Migration probabilities p(l) = r(l)/m(l) for the next
    /// ComputeMigrations superstep (Eq. 14).
    pub migration_prob: Vec<f64>,
    /// LPA iteration counter (one iteration = scores + migrations).
    pub iteration: u32,
    /// Per-iteration φ/ρ/score history (the curves of Fig. 4).
    pub history: Vec<crate::driver::IterationStats>,
    /// Metrics of the latest ComputeScores superstep, pending the matching
    /// ComputeMigrations superstep before being pushed to `history`.
    pub pending: Option<(f64, f64, f64)>,
    /// Best score seen so far (halting heuristic).
    pub best_score: f64,
    /// Consecutive iterations with < ε normalised improvement.
    pub no_improvement: u32,
    /// Set when the ε/w steady-state condition triggered the halt.
    pub halted_steady: bool,
}

impl GlobalState {
    /// Initial state for a run starting at `phase` with `k` partitions.
    pub fn new(phase: Phase, k: u32) -> Self {
        Self {
            phase,
            k,
            capacities: vec![0.0; k as usize],
            total_weight: 0,
            loads: vec![0; k as usize],
            migration_prob: vec![0.0; k as usize],
            iteration: 0,
            history: Vec::new(),
            pending: None,
            best_score: f64::NEG_INFINITY,
            no_improvement: 0,
            halted_steady: false,
        }
    }
}

/// Worker-local scratch: the asynchronous load view of §IV-A4 plus reusable
/// per-vertex scoring buffers.
#[derive(Debug)]
pub struct WorkerState {
    /// Worker-local view of partition loads, updated as vertices on this
    /// worker become migration candidates within the superstep.
    pub local_loads: Vec<i64>,
    /// Per-partition capacities C_l (for penalty-minimum tracking).
    pub capacities: Vec<f64>,
    /// Scratch: per-label neighbour weight accumulator (k entries, cleared
    /// via `touched` so per-vertex cost stays O(deg)).
    pub counts: Vec<u64>,
    /// Scratch: labels touched by the current vertex.
    pub touched: Vec<Label>,
    /// Cached index of the minimum-penalty label.
    min_label: Label,
    min_dirty: bool,
}

impl WorkerState {
    /// Builds worker state from the current global loads and capacities.
    pub fn new(loads: &[i64], capacities: &[f64]) -> Self {
        Self {
            local_loads: loads.to_vec(),
            capacities: capacities.to_vec(),
            counts: vec![0; loads.len()],
            touched: Vec::with_capacity(64),
            min_label: 0,
            min_dirty: true,
        }
    }

    /// Penalty π(l) = b(l)/C_l under the worker-local view.
    #[inline]
    fn penalty(&self, l: usize) -> f64 {
        let cap = self.capacities[l];
        if cap > 0.0 {
            self.local_loads[l] as f64 / cap
        } else {
            f64::INFINITY
        }
    }

    /// Records a candidacy: the async view moves `load` from `old` to `new`
    /// so later vertices on this worker see it (§IV-A4).
    pub fn apply_candidacy(&mut self, old: Label, new: Label, load: u64) {
        self.local_loads[new as usize] += load as i64;
        self.local_loads[old as usize] -= load as i64;
        if new == self.min_label {
            self.min_dirty = true;
        } else if !self.min_dirty
            && self.penalty(old as usize) < self.penalty(self.min_label as usize)
        {
            self.min_label = old;
        }
    }

    /// The label with the smallest worker-local penalty π(l). Any label not
    /// adjacent to a vertex scores `-π(l)`, so only the minimum-penalty one
    /// can beat the adjacent candidates — evaluating it makes the candidate
    /// scan exact without an O(k) pass per vertex.
    pub fn min_load_label(&mut self) -> Label {
        if self.min_dirty {
            let mut best = 0usize;
            for l in 1..self.local_loads.len() {
                if self.penalty(l) < self.penalty(best) {
                    best = l;
                }
            }
            self.min_label = best as Label;
            self.min_dirty = false;
        }
        self.min_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAPS: [f64; 3] = [10.0, 10.0, 10.0];

    #[test]
    fn worker_state_tracks_minimum() {
        let mut w = WorkerState::new(&[10, 5, 8], &CAPS);
        assert_eq!(w.min_load_label(), 1);
        // Simulate candidacy 0 -> 1 with load 6.
        w.apply_candidacy(0, 1, 6);
        // loads now [4, 11, 8]
        assert_eq!(w.min_load_label(), 0);
        w.apply_candidacy(0, 2, 10);
        // loads now [-6, 11, 18]
        assert_eq!(w.min_load_label(), 0);
    }

    #[test]
    fn min_recomputed_when_minimum_gains_load() {
        let mut w = WorkerState::new(&[1, 2, 3], &CAPS);
        assert_eq!(w.min_load_label(), 0);
        w.apply_candidacy(2, 0, 5); // loads [6, 2, -2]
        assert_eq!(w.min_load_label(), 2);
    }

    #[test]
    fn heterogeneous_capacities_bias_the_minimum() {
        // Equal loads but partition 2 has double capacity => its penalty is
        // the smallest.
        let mut w = WorkerState::new(&[6, 6, 6], &[10.0, 10.0, 20.0]);
        assert_eq!(w.min_load_label(), 2);
    }

    #[test]
    fn global_state_initialises_cleanly() {
        let g = GlobalState::new(Phase::Initialize, 4);
        assert_eq!(g.loads, vec![0; 4]);
        assert_eq!(g.iteration, 0);
        assert!(!g.halted_steady);
    }
}
