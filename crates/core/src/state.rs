//! Vertex, edge, message, global, and worker state of the Spinner program.

use spinner_graph::VertexId;

/// A partition label (`0..k`).
pub type Label = u32;

/// Sentinel for "no label": unlabeled edges before the first propagation and
/// absent migration candidates.
pub const NO_LABEL: Label = Label::MAX;

/// Per-vertex state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexState {
    /// Current partition label α(v).
    pub label: Label,
    /// Weighted degree deg_w(v) (Eq. 3 weights). Computed during the
    /// Initialize superstep. Under the `Edges` objective this is also the
    /// vertex's load contribution; under `Vertices` the load is 1.
    pub degree: u64,
    /// The label this vertex is a candidate to migrate to (set in
    /// ComputeScores, consumed in ComputeMigrations), or [`NO_LABEL`].
    pub candidate: Label,
    /// Whether this vertex participates in migration restarts under
    /// [`crate::config::RestartScope::AffectedOnly`]; always `true` for the
    /// paper's full-restart strategy.
    pub affected: bool,
    /// Histogram of adjacent labels: summed edge weight per distinct
    /// neighbour label (entries are strictly positive; zeroed entries are
    /// removed). Maintained incrementally by the ComputeScores message fold
    /// — neighbour labels only change via migration announcements — so the
    /// per-iteration candidate scan is O(distinct labels), not O(degree).
    /// Entry order is arbitrary: candidate selection is order-independent
    /// by construction (hash-priority tie-breaking).
    pub label_weights: Vec<(Label, u32)>,
}

impl VertexState {
    /// Fresh state with the given initial label (degree and the label
    /// histogram fill in during the Initialize/ComputeScores supersteps).
    pub fn new(label: Label, affected: bool) -> Self {
        Self { label, degree: 0, candidate: NO_LABEL, affected, label_weights: Vec::new() }
    }

    /// Summed adjacent edge weight cached for `label` (0 when absent).
    #[inline]
    pub fn label_weight(&self, label: Label) -> u32 {
        self.label_weights.iter().find(|&&(l, _)| l == label).map_or(0, |&(_, c)| c)
    }

    /// Applies a neighbour's label change `old -> new` over an edge of the
    /// given weight, keeping the histogram's entries positive. Both entries
    /// are located in a single pass.
    #[inline]
    pub fn shift_label_weight(&mut self, old: Label, new: Label, weight: u32) {
        if old == new {
            return;
        }
        // usize::MAX = still searching; usize::MAX - 1 = not needed.
        const NONE: usize = usize::MAX;
        let mut old_i = if old == NO_LABEL { NONE - 1 } else { NONE };
        let mut new_i = if new == NO_LABEL { NONE - 1 } else { NONE };
        for (i, &(l, _)) in self.label_weights.iter().enumerate() {
            if l == new {
                new_i = i;
                if old_i != NONE {
                    break;
                }
            } else if l == old {
                old_i = i;
                if new_i != NONE {
                    break;
                }
            }
        }
        if new != NO_LABEL {
            if new_i < NONE - 1 {
                self.label_weights[new_i].1 += weight;
            } else {
                self.label_weights.push((new, weight));
            }
        }
        if old != NO_LABEL {
            debug_assert!(old_i < NONE - 1, "histogram entry for the previous neighbour label");
            let entry = &mut self.label_weights[old_i].1;
            debug_assert!(*entry >= weight);
            *entry -= weight;
            if *entry == 0 {
                self.label_weights.swap_remove(old_i);
            }
        }
    }
}

/// Per-edge state: the Eq. 3 weight and the cached label of the neighbour at
/// the other endpoint ("each vertex stores the label of a neighbor in the
/// value of the edge that connects them", §IV-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeState {
    /// w(u, v) ∈ {1, 2}.
    pub weight: u8,
    /// Last label announced by the neighbour, or [`NO_LABEL`].
    pub neighbor_label: Label,
}

/// Message: `(sender, sender's new label)`. The sender id locates the edge
/// whose cached label must be updated. During NeighborPropagation the label
/// field is [`NO_LABEL`] (only the sender id matters).
pub type MigrationMsg = (VertexId, Label);

/// The phases of Fig. 2, advanced by master compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Conversion 1/2: send the vertex id along out-edges.
    NeighborPropagation,
    /// Conversion 2/2: create/upgrade reverse edges (Eq. 3 weights).
    NeighborDiscovery,
    /// Aggregate initial loads and announce initial labels.
    Initialize,
    /// LPA iteration step 1: find each vertex's best label.
    ComputeScores,
    /// LPA iteration step 2: probabilistic migrations (Eq. 14).
    ComputeMigrations,
}

/// Master-owned global state, broadcast to vertices each superstep.
#[derive(Debug, Clone)]
pub struct GlobalState {
    /// Current phase.
    pub phase: Phase,
    /// Number of partitions.
    pub k: u32,
    /// Per-partition capacities C_l (Eq. 5: `c·|E|/k` for homogeneous
    /// systems; proportional to the configured weights otherwise), set after
    /// Initialize.
    pub capacities: Vec<f64>,
    /// Total edge weight Σ_l b(l) (= 2·|directed edges|).
    pub total_weight: u64,
    /// Current partition loads b(l) (from the persistent aggregator).
    pub loads: Vec<i64>,
    /// Migration probabilities p(l) = r(l)/m(l) for the next
    /// ComputeMigrations superstep (Eq. 14).
    pub migration_prob: Vec<f64>,
    /// LPA iteration counter (one iteration = scores + migrations).
    pub iteration: u32,
    /// Per-iteration φ/ρ/score history (the curves of Fig. 4).
    pub history: Vec<crate::driver::IterationStats>,
    /// Metrics of the latest ComputeScores superstep, pending the matching
    /// ComputeMigrations superstep before being pushed to `history`.
    pub pending: Option<(f64, f64, f64)>,
    /// Best score seen so far (halting heuristic).
    pub best_score: f64,
    /// Consecutive iterations with < ε normalised improvement.
    pub no_improvement: u32,
    /// Set when the ε/w steady-state condition triggered the halt.
    pub halted_steady: bool,
}

impl GlobalState {
    /// Initial state for a run starting at `phase` with `k` partitions.
    pub fn new(phase: Phase, k: u32) -> Self {
        Self {
            phase,
            k,
            capacities: vec![0.0; k as usize],
            total_weight: 0,
            loads: vec![0; k as usize],
            migration_prob: vec![0.0; k as usize],
            iteration: 0,
            history: Vec::new(),
            pending: None,
            best_score: f64::NEG_INFINITY,
            no_improvement: 0,
            halted_steady: false,
        }
    }
}

/// Worker-local scratch: the asynchronous load view of §IV-A4.
#[derive(Debug)]
pub struct WorkerState {
    /// Worker-local view of partition loads, updated as vertices on this
    /// worker become migration candidates within the superstep.
    pub local_loads: Vec<i64>,
    /// Per-partition capacities C_l (for penalty-minimum tracking).
    pub capacities: Vec<f64>,
    /// Dense per-label scratch for the exhaustive candidate scan (k
    /// entries, all zero between vertices; the per-vertex label histogram
    /// serves the optimised scan instead).
    pub counts: Vec<u64>,
    /// Cached penalties π(l) = b(l)/C_l, kept in sync with `local_loads`
    /// so the min scan and candidacy updates never re-divide.
    penalties: Vec<f64>,
    /// Whether every capacity is strictly positive (gates the candidate-
    /// scan prune, whose bound is unsound across zero capacities).
    caps_positive: bool,
    /// Cached index of the minimum-penalty label.
    min_label: Label,
    min_dirty: bool,
}

impl WorkerState {
    /// Builds worker state from the current global loads and capacities.
    pub fn new(loads: &[i64], capacities: &[f64]) -> Self {
        let mut state = Self {
            local_loads: loads.to_vec(),
            capacities: capacities.to_vec(),
            counts: vec![0; loads.len()],
            penalties: vec![0.0; loads.len()],
            caps_positive: capacities.iter().all(|&c| c > 0.0),
            min_label: 0,
            min_dirty: true,
        };
        state.refresh_penalties();
        state
    }

    /// Re-initialises in place from fresh loads/capacities, keeping every
    /// buffer (the per-superstep reset on the engine's hot path). Returns
    /// `false` when the shape changed and the caller must rebuild.
    pub fn reset(&mut self, loads: &[i64], capacities: &[f64]) -> bool {
        if self.local_loads.len() != loads.len() || self.capacities.len() != capacities.len() {
            return false;
        }
        self.local_loads.copy_from_slice(loads);
        self.capacities.copy_from_slice(capacities);
        self.counts.fill(0);
        self.caps_positive = capacities.iter().all(|&c| c > 0.0);
        self.refresh_penalties();
        self.min_label = 0;
        self.min_dirty = true;
        true
    }

    /// True when every capacity is strictly positive.
    #[inline]
    pub fn caps_positive(&self) -> bool {
        self.caps_positive
    }

    fn refresh_penalties(&mut self) {
        for l in 0..self.local_loads.len() {
            self.penalties[l] = Self::penalty_of(self.local_loads[l], self.capacities[l]);
        }
    }

    /// The cached penalties π(l) = b(l)/C_l (entries with `C_l <= 0` hold
    /// `f64::INFINITY`). Each entry is bit-identical to recomputing
    /// `local_loads[l] as f64 / capacities[l]` whenever `C_l > 0`, so score
    /// evaluation can read it instead of dividing.
    #[inline]
    pub fn penalties(&self) -> &[f64] {
        &self.penalties
    }

    /// Penalty π(l) = b(l)/C_l under the worker-local view.
    #[inline]
    fn penalty_of(load: i64, cap: f64) -> f64 {
        if cap > 0.0 {
            load as f64 / cap
        } else {
            f64::INFINITY
        }
    }

    /// Records a candidacy: the async view moves `load` from `old` to `new`
    /// so later vertices on this worker see it (§IV-A4).
    pub fn apply_candidacy(&mut self, old: Label, new: Label, load: u64) {
        self.local_loads[new as usize] += load as i64;
        self.local_loads[old as usize] -= load as i64;
        self.penalties[new as usize] =
            Self::penalty_of(self.local_loads[new as usize], self.capacities[new as usize]);
        self.penalties[old as usize] =
            Self::penalty_of(self.local_loads[old as usize], self.capacities[old as usize]);
        if new == self.min_label {
            self.min_dirty = true;
        } else if !self.min_dirty
            && self.penalties[old as usize] < self.penalties[self.min_label as usize]
        {
            self.min_label = old;
        }
    }

    /// The label with the smallest worker-local penalty π(l). Any label not
    /// adjacent to a vertex scores `-π(l)`, so only the minimum-penalty one
    /// can beat the adjacent candidates — evaluating it makes the candidate
    /// scan exact without an O(k) pass per vertex.
    pub fn min_load_label(&mut self) -> Label {
        if self.min_dirty {
            let mut best = 0usize;
            for l in 1..self.penalties.len() {
                if self.penalties[l] < self.penalties[best] {
                    best = l;
                }
            }
            self.min_label = best as Label;
            self.min_dirty = false;
        }
        self.min_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAPS: [f64; 3] = [10.0, 10.0, 10.0];

    #[test]
    fn worker_state_tracks_minimum() {
        let mut w = WorkerState::new(&[10, 5, 8], &CAPS);
        assert_eq!(w.min_load_label(), 1);
        // Simulate candidacy 0 -> 1 with load 6.
        w.apply_candidacy(0, 1, 6);
        // loads now [4, 11, 8]
        assert_eq!(w.min_load_label(), 0);
        w.apply_candidacy(0, 2, 10);
        // loads now [-6, 11, 18]
        assert_eq!(w.min_load_label(), 0);
    }

    #[test]
    fn min_recomputed_when_minimum_gains_load() {
        let mut w = WorkerState::new(&[1, 2, 3], &CAPS);
        assert_eq!(w.min_load_label(), 0);
        w.apply_candidacy(2, 0, 5); // loads [6, 2, -2]
        assert_eq!(w.min_load_label(), 2);
    }

    #[test]
    fn heterogeneous_capacities_bias_the_minimum() {
        // Equal loads but partition 2 has double capacity => its penalty is
        // the smallest.
        let mut w = WorkerState::new(&[6, 6, 6], &[10.0, 10.0, 20.0]);
        assert_eq!(w.min_load_label(), 2);
    }

    #[test]
    fn global_state_initialises_cleanly() {
        let g = GlobalState::new(Phase::Initialize, 4);
        assert_eq!(g.loads, vec![0; 4]);
        assert_eq!(g.iteration, 0);
        assert!(!g.halted_steady);
    }
}
