//! High-level Spinner API: partition from scratch, adapt to graph changes,
//! and adapt to partition-count changes.

use crate::config::SpinnerConfig;
use crate::program::SpinnerProgram;
use crate::state::{EdgeState, Label, Phase, VertexState, NO_LABEL};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::rng::{vertex_stream, SplitMix64};
use spinner_graph::GraphDelta;
use spinner_graph::{DirectedGraph, UndirectedGraph, VertexId};
use spinner_metrics::PartitionQuality;
use spinner_pregel::engine::{Engine, EngineConfig};
use spinner_pregel::metrics::RunTotals;
use spinner_pregel::Placement;

/// Per-iteration metrics (the curves of Fig. 4). φ/ρ/score are measured at
/// the ComputeScores superstep and therefore describe the state *entering*
/// the iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationStats {
    /// LPA iteration (0-based).
    pub iteration: u32,
    /// Ratio of local edges φ.
    pub phi: f64,
    /// Maximum normalized load ρ.
    pub rho: f64,
    /// Global score(G) (Eq. 10).
    pub score: f64,
    /// Vertices that migrated in this iteration's ComputeMigrations step.
    pub migrations: u64,
}

/// The outcome of a Spinner run.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Final label per vertex.
    pub labels: Vec<Label>,
    /// Number of partitions.
    pub k: u32,
    /// Exact final quality (recomputed from the labels, not the aggregators).
    pub quality: PartitionQuality,
    /// Per-iteration history.
    pub history: Vec<IterationStats>,
    /// LPA iterations executed.
    pub iterations: u32,
    /// Pregel supersteps executed (including conversion/initialisation).
    pub supersteps: u64,
    /// True when the ε/w steady-state heuristic triggered the halt.
    pub halted_steady: bool,
    /// Engine traffic/compute totals (messages are the network-cost proxy
    /// used by Figs. 7–8).
    pub totals: RunTotals,
    /// Wall-clock nanoseconds of the whole run.
    pub wall_ns: u64,
}

/// Partitions a weighted undirected graph from scratch with random initial
/// labels (§III-A).
pub fn partition(graph: &UndirectedGraph, cfg: &SpinnerConfig) -> PartitionResult {
    let labels = random_labels(graph.num_vertices(), cfg.k, cfg.seed);
    run_from_labels(graph, cfg, labels)
}

/// Like [`partition`], but hosting the computation on an explicit
/// vertex → worker [`Placement`] instead of the default hash placement
/// (`cfg.num_workers` is ignored in favour of the placement's worker
/// count). With the asynchronous per-worker load view disabled
/// (`cfg.async_worker_loads = false`) the result — labels, history, and
/// iteration counts — is bit-identical across *any* placement; the async
/// view is worker-topology-dependent by design (§IV-A4).
pub fn partition_with_placement(
    graph: &UndirectedGraph,
    cfg: &SpinnerConfig,
    placement: &Placement,
) -> PartitionResult {
    assert_eq!(
        placement.num_vertices(),
        graph.num_vertices(),
        "placement must cover the graph's vertex set"
    );
    let labels = random_labels(graph.num_vertices(), cfg.k, cfg.seed);
    run_placed(graph, cfg, labels, Vec::new(), placement)
}

/// Partitions a directed graph: converts it to the weighted undirected form
/// of Eq. 3 first — offline by default, or with the in-engine
/// NeighborPropagation/NeighborDiscovery supersteps when
/// `cfg.in_engine_conversion` is set (§IV-A1). Both paths produce identical
/// partitionings.
pub fn partition_directed(graph: &DirectedGraph, cfg: &SpinnerConfig) -> PartitionResult {
    if cfg.in_engine_conversion {
        let labels = random_labels(graph.num_vertices(), cfg.k, cfg.seed);
        run_in_engine_conversion(graph, cfg, labels)
    } else {
        partition(&to_weighted_undirected(graph), cfg)
    }
}

/// Adapts a previous partitioning to a changed graph (§III-D, incremental
/// label propagation). `previous` may cover fewer vertices than `graph`
/// (new vertices appended at the end); new vertices start in the least
/// loaded partition, then every vertex participates in migration.
pub fn adapt(
    graph: &UndirectedGraph,
    previous: &[Label],
    cfg: &SpinnerConfig,
) -> PartitionResult {
    assert!(
        previous.len() <= graph.num_vertices() as usize,
        "previous labelling covers more vertices than the graph has"
    );
    let labels = incremental_labels(graph, previous, cfg.k);
    // Without delta information only the appended vertices are known to be
    // affected (relevant under `RestartScope::AffectedOnly`).
    let affected = affected_flags(graph.num_vertices(), previous.len() as VertexId, &[]);
    run_from_labels_scoped(graph, cfg, labels, affected)
}

/// Like [`adapt`], but with the explicit [`GraphDelta`] that produced
/// `graph`, so the affected-only restart strategy (§III-D,
/// [`crate::config::RestartScope::AffectedOnly`]) knows which vertices the
/// change touched (endpoints of added/removed edges plus new vertices).
pub fn adapt_with_delta(
    graph: &UndirectedGraph,
    previous: &[Label],
    delta: &GraphDelta,
    cfg: &SpinnerConfig,
) -> PartitionResult {
    assert!(
        previous.len() <= graph.num_vertices() as usize,
        "previous labelling covers more vertices than the graph has"
    );
    let labels = incremental_labels(graph, previous, cfg.k);
    let affected = delta_affected(graph.num_vertices(), previous.len() as VertexId, delta);
    run_from_labels_scoped(graph, cfg, labels, affected)
}

/// The affected-vertex flags a [`GraphDelta`] induces: endpoints of every
/// added/removed edge plus all appended vertices. Shared by the one-shot
/// [`adapt_with_delta`] path and the streaming session so the two stay
/// bit-identical (the warm==cold guarantee is pinned by tests in
/// [`crate::stream`]).
pub(crate) fn delta_affected(n: VertexId, old_n: VertexId, delta: &GraphDelta) -> Vec<bool> {
    let touched: Vec<VertexId> = delta
        .added_edges
        .iter()
        .chain(&delta.removed_edges)
        .flat_map(|&(a, b)| [a, b])
        .collect();
    affected_flags(n, old_n, &touched)
}

pub(crate) fn affected_flags(n: VertexId, old_n: VertexId, touched: &[VertexId]) -> Vec<bool> {
    let mut affected = vec![false; n as usize];
    for v in old_n..n {
        affected[v as usize] = true;
    }
    for &v in touched {
        if (v as usize) < affected.len() {
            affected[v as usize] = true;
        }
    }
    affected
}

/// Adapts a previous `old_k`-way partitioning to `cfg.k` partitions
/// (§III-E, elastic label propagation): when adding `n = cfg.k - old_k`
/// partitions, each vertex moves to a random new partition with probability
/// `n/(k+n)` (Eq. 11); when removing, vertices of removed partitions
/// redistribute uniformly.
pub fn elastic(
    graph: &UndirectedGraph,
    previous: &[Label],
    old_k: u32,
    cfg: &SpinnerConfig,
) -> PartitionResult {
    assert_eq!(previous.len(), graph.num_vertices() as usize);
    let labels = elastic_labels(previous, old_k, cfg.k, cfg.seed);
    run_from_labels(graph, cfg, labels)
}

/// Random initial labels (scratch initialisation).
pub fn random_labels(n: VertexId, k: u32, seed: u64) -> Vec<Label> {
    (0..n)
        .map(|v| vertex_stream(seed, v as u64, 0x1417).next_bounded(k as u64) as Label)
        .collect()
}

/// Incremental initialisation (§III-D): keep old labels; send each new
/// vertex to the least-loaded partition at its arrival. The running minimum
/// lives in a binary heap keyed `(load, label)` — only the chosen
/// partition's load changes per appended vertex, so each step is one pop
/// and one push and bulk adaptation of large deltas is O(new · log k)
/// instead of O(new · k).
pub(crate) fn incremental_labels(
    graph: &UndirectedGraph,
    previous: &[Label],
    k: u32,
) -> Vec<Label> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = graph.num_vertices() as usize;
    let mut labels = Vec::with_capacity(n);
    let mut loads = vec![0i64; k as usize];
    for (v, &l) in previous.iter().enumerate() {
        assert!(l < k, "previous label {l} out of range for k={k}");
        loads[l as usize] += graph.weighted_degree(v as VertexId) as i64;
        labels.push(l);
    }
    // One entry per label, always current; `(load, label)` ordering matches
    // the previous min-scan's tie-break (smallest load, then smallest label).
    let mut heap: BinaryHeap<Reverse<(i64, Label)>> =
        (0..k).map(|l| Reverse((loads[l as usize], l))).collect();
    for v in previous.len()..n {
        let Reverse((load, least)) = heap.pop().expect("k >= 1 labels");
        labels.push(least);
        heap.push(Reverse((load + graph.weighted_degree(v as VertexId) as i64, least)));
    }
    labels
}

/// Partition-loss initialisation (failure recovery): every vertex flagged
/// in `lost` is treated as having lost its label state and is reseeded;
/// all other vertices keep their labels. Reseeding mirrors
/// [`incremental_labels`]'s least-loaded rule — partition loads are
/// computed from the *surviving* vertices only, then each lost vertex (in
/// id order) joins the least-loaded partition at that point — so recovery
/// starts from a balanced, deterministic assignment rather than random
/// labels, and the subsequent LPA re-convergence only has to repair
/// locality, not load.
pub(crate) fn loss_labels(
    graph: &UndirectedGraph,
    previous: &[Label],
    lost: &[bool],
    k: u32,
) -> Vec<Label> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    assert_eq!(previous.len(), lost.len(), "lost flags must cover the labelling");
    let mut labels = previous.to_vec();
    let mut loads = vec![0i64; k as usize];
    for (v, &l) in previous.iter().enumerate() {
        assert!(l < k, "previous label {l} out of range for k={k}");
        if !lost[v] {
            loads[l as usize] += graph.weighted_degree(v as VertexId) as i64;
        }
    }
    let mut heap: BinaryHeap<Reverse<(i64, Label)>> =
        (0..k).map(|l| Reverse((loads[l as usize], l))).collect();
    for (v, flag) in lost.iter().enumerate() {
        if !flag {
            continue;
        }
        let Reverse((load, least)) = heap.pop().expect("k >= 1 labels");
        labels[v] = least;
        heap.push(Reverse((load + graph.weighted_degree(v as VertexId) as i64, least)));
    }
    labels
}

/// Elastic initialisation (§III-E / Eq. 11).
pub(crate) fn elastic_labels(
    previous: &[Label],
    old_k: u32,
    new_k: u32,
    seed: u64,
) -> Vec<Label> {
    assert!(old_k >= 1 && new_k >= 1);
    previous
        .iter()
        .enumerate()
        .map(|(v, &l)| {
            assert!(l < old_k, "previous label {l} out of range for old_k={old_k}");
            let mut rng: SplitMix64 = vertex_stream(seed, v as u64, 0xE1A5);
            if new_k > old_k {
                let n_new = (new_k - old_k) as u64;
                // Migrate with p = n/(k+n) to a uniformly random new
                // partition.
                if rng.next_f64() < n_new as f64 / new_k as f64 {
                    old_k + rng.next_bounded(n_new) as Label
                } else {
                    l
                }
            } else if l >= new_k {
                // Partition removed: choose uniformly among the remaining.
                rng.next_bounded(new_k as u64) as Label
            } else {
                l
            }
        })
        .collect()
}

pub(crate) fn engine_config(cfg: &SpinnerConfig) -> EngineConfig {
    EngineConfig {
        num_threads: cfg.num_threads,
        // Two supersteps per iteration plus conversion/init slack.
        max_supersteps: 2 * cfg.max_iterations as u64 + 8,
        seed: cfg.seed,
        broadcast_fabric: cfg.broadcast_fabric,
        work_stealing: cfg.work_stealing,
        steal_chunk: cfg.steal_chunk,
        dense_scan: cfg.dense_scan,
        transport: cfg.transport,
        wire_format: cfg.wire_format,
        sender_fold: cfg.sender_fold,
        transport_retry: cfg.transport_retry,
        // Fault plans are transient chaos apparatus, injected through
        // `Engine::inject_transport_faults` / `StreamSession::
        // inject_transport_faults` — never part of a persisted config.
        transport_faults: None,
    }
}

/// Runs the main LPA loop starting from a complete label assignment on an
/// already-undirected graph.
fn run_from_labels(
    graph: &UndirectedGraph,
    cfg: &SpinnerConfig,
    labels: Vec<Label>,
) -> PartitionResult {
    run_from_labels_scoped(graph, cfg, labels, Vec::new())
}

/// `affected` marks the vertices that restart migrations under
/// `RestartScope::AffectedOnly`; an empty vector marks everyone affected.
fn run_from_labels_scoped(
    graph: &UndirectedGraph,
    cfg: &SpinnerConfig,
    labels: Vec<Label>,
    affected: Vec<bool>,
) -> PartitionResult {
    let placement = Placement::hashed(graph.num_vertices(), cfg.num_workers, cfg.seed ^ 0x70C);
    run_placed(graph, cfg, labels, affected, &placement)
}

/// The common tail of every undirected run: build the engine on the given
/// placement, run, extract.
fn run_placed(
    graph: &UndirectedGraph,
    cfg: &SpinnerConfig,
    labels: Vec<Label>,
    affected: Vec<bool>,
    placement: &Placement,
) -> PartitionResult {
    let program = SpinnerProgram { cfg: cfg.clone(), start_phase: Phase::Initialize };
    let mut engine = Engine::from_undirected(
        program,
        graph,
        placement,
        engine_config(cfg),
        |v| {
            VertexState::new(
                labels[v as usize],
                affected.get(v as usize).copied().unwrap_or(true),
            )
        },
        |_, _, w| EdgeState { weight: w, neighbor_label: NO_LABEL },
    );
    let summary = engine.run();
    finish(cfg, engine, summary, Some(graph))
}

/// Runs with in-engine conversion from a directed graph (faithful §IV-A1
/// path).
fn run_in_engine_conversion(
    graph: &DirectedGraph,
    cfg: &SpinnerConfig,
    labels: Vec<Label>,
) -> PartitionResult {
    let program = SpinnerProgram { cfg: cfg.clone(), start_phase: Phase::NeighborPropagation };
    let placement = Placement::hashed(graph.num_vertices(), cfg.num_workers, cfg.seed ^ 0x70C);
    let mut engine = Engine::from_directed(
        program,
        graph,
        &placement,
        engine_config(cfg),
        |v| VertexState::new(labels[v as usize], true),
        |_, _, _| EdgeState { weight: 1, neighbor_label: NO_LABEL },
    );
    let summary = engine.run();
    finish(cfg, engine, summary, None)
}

fn finish(
    cfg: &SpinnerConfig,
    engine: Engine<SpinnerProgram>,
    summary: spinner_pregel::RunSummary,
    graph: Option<&UndirectedGraph>,
) -> PartitionResult {
    result_from_engine(cfg, &engine, &summary, graph)
}

/// Extracts a [`PartitionResult`] from a finished engine without consuming
/// it — the streaming session keeps the engine warm for the next window.
pub(crate) fn result_from_engine(
    cfg: &SpinnerConfig,
    engine: &Engine<SpinnerProgram>,
    summary: &spinner_pregel::RunSummary,
    graph: Option<&UndirectedGraph>,
) -> PartitionResult {
    let labels: Vec<Label> = engine.collect_values().into_iter().map(|v| v.label).collect();
    let global = engine.global();
    // Exact final quality from the labels themselves. The engine's own
    // adjacency is authoritative for loads (covers in-engine conversion),
    // but φ/ρ recomputation needs the undirected graph; reconstruct loads
    // from the persistent aggregator instead to stay engine-agnostic.
    let loads: Vec<u64> = global.loads.iter().map(|&l| l.max(0) as u64).collect();
    let total: u64 = loads.iter().sum();
    let last = global.history.last();
    // rho relative to each partition's ideal share (C_l / c), which is
    // total/k in the homogeneous case.
    let rho = if total > 0 {
        loads
            .iter()
            .zip(&global.capacities)
            .map(|(&b, &cap)| if cap > 0.0 { b as f64 * cfg.c / cap } else { 1.0 })
            .fold(1.0, f64::max)
    } else {
        1.0
    };
    // Per-iteration aggregates only cover vertices that computed in that
    // superstep; under `RestartScope::AffectedOnly` most vertices sleep, so
    // the final phi is recomputed exactly from the labels when the graph is
    // at hand (the in-engine-conversion path keeps the aggregate value,
    // which is exact there because all vertices stay active).
    let phi = match graph {
        Some(g) => spinner_metrics::phi(g, &labels),
        None => last.map_or(1.0, |h| h.phi),
    };
    let quality = PartitionQuality { phi, rho, score: last.map_or(0.0, |h| h.score), loads };
    PartitionResult {
        labels,
        k: cfg.k,
        quality,
        history: global.history.clone(),
        iterations: global.iteration,
        supersteps: summary.supersteps,
        halted_steady: global.halted_steady,
        totals: summary.totals(),
        wall_ns: summary.wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::generators::{planted_partition, SbmConfig};

    fn community_graph(n: u32, communities: u32, seed: u64) -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n,
            communities,
            internal_degree: 8.0,
            external_degree: 1.5,
            skew: None,
            seed,
        }))
    }

    fn small_cfg(k: u32) -> SpinnerConfig {
        let mut cfg = SpinnerConfig::new(k);
        cfg.num_workers = 4;
        cfg.max_iterations = 60;
        cfg
    }

    #[test]
    fn recovers_locality_on_community_graph() {
        let g = community_graph(4000, 8, 3);
        let r = partition(&g, &small_cfg(8));
        assert!(r.quality.phi > 0.65, "phi {}", r.quality.phi);
        assert!(r.quality.rho < 1.15, "rho {}", r.quality.rho);
        assert!(r.iterations >= 5);
        // History φ must (weakly) trend upward from random (~1/k).
        let first = r.history.first().unwrap().phi;
        let last_phi = r.history.last().unwrap().phi;
        assert!(last_phi > first + 0.2, "phi {first} -> {last_phi}");
    }

    #[test]
    fn respects_capacity_bound() {
        let g = community_graph(3000, 6, 5);
        let cfg = small_cfg(6).with_c(1.10);
        let r = partition(&g, &cfg);
        // ρ ≤ c with high probability (§V-A1); allow slack for the
        // bounded-probability overshoot.
        assert!(r.quality.rho <= 1.10 + 0.05, "rho {}", r.quality.rho);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = community_graph(1500, 4, 7);
        let mut cfg1 = small_cfg(4);
        cfg1.num_threads = 1;
        let mut cfg8 = small_cfg(4);
        cfg8.num_threads = 8;
        let r1 = partition(&g, &cfg1);
        let r8 = partition(&g, &cfg8);
        assert_eq!(r1.labels, r8.labels);
        assert_eq!(r1.history.len(), r8.history.len());
    }

    #[test]
    fn k_equals_one_is_trivially_perfect() {
        let g = community_graph(500, 2, 9);
        let r = partition(&g, &small_cfg(1));
        assert!(r.labels.iter().all(|&l| l == 0));
        assert!((r.quality.phi - 1.0).abs() < 1e-9);
        assert!((r.quality.rho - 1.0).abs() < 1e-9);
    }

    #[test]
    fn in_engine_conversion_matches_offline() {
        let d = planted_partition(SbmConfig {
            n: 800,
            communities: 4,
            internal_degree: 6.0,
            external_degree: 1.0,
            skew: None,
            seed: 11,
        });
        let mut cfg = small_cfg(4);
        cfg.max_iterations = 20;
        cfg.ignore_halting = true;
        let offline = partition_directed(&d, &cfg);
        cfg.in_engine_conversion = true;
        let in_engine = partition_directed(&d, &cfg);
        assert_eq!(offline.labels, in_engine.labels);
        assert_eq!(offline.history.len(), in_engine.history.len());
        for (a, b) in offline.history.iter().zip(&in_engine.history) {
            assert!((a.phi - b.phi).abs() < 1e-12);
            assert!((a.score - b.score).abs() < 1e-9);
        }
    }

    #[test]
    fn adapt_moves_few_vertices() {
        let base = planted_partition(SbmConfig {
            n: 3000,
            communities: 6,
            internal_degree: 8.0,
            external_degree: 1.0,
            skew: None,
            seed: 13,
        });
        let g = to_weighted_undirected(&base);
        let cfg = small_cfg(6);
        let initial = partition(&g, &cfg);

        // Add 1% new edges and adapt.
        let new_edges = spinner_graph::mutation::sample_new_edges(&base, 240, 0.8, 17);
        let changed = spinner_graph::mutation::apply_delta(
            &base,
            &spinner_graph::GraphDelta::additions(new_edges),
        );
        let g2 = to_weighted_undirected(&changed);
        let adapted = adapt(&g2, &initial.labels, &cfg);
        let scratch = partition(&g2, &cfg.clone().with_seed(99));

        let d_adapt =
            spinner_metrics::partitioning_difference(&initial.labels, &adapted.labels);
        let d_scratch =
            spinner_metrics::partitioning_difference(&initial.labels, &scratch.labels);
        assert!(d_adapt < 0.35, "adaptive moved {d_adapt}");
        assert!(d_adapt < d_scratch, "adapt {d_adapt} vs scratch {d_scratch}");
        assert!(adapted.quality.phi > 0.6);
        // Adaptation converges in fewer iterations than repartitioning.
        assert!(adapted.iterations <= scratch.iterations);
    }

    #[test]
    fn elastic_grows_partitions() {
        let g = community_graph(2000, 8, 19);
        let cfg8 = small_cfg(8);
        let base = partition(&g, &cfg8);
        let cfg10 = small_cfg(10);
        let grown = elastic(&g, &base.labels, 8, &cfg10);
        assert_eq!(grown.k, 10);
        // All ten partitions must end up populated.
        assert!(grown.quality.loads.iter().all(|&l| l > 0));
        assert!(grown.quality.rho < 1.25, "rho {}", grown.quality.rho);
        let moved = spinner_metrics::partitioning_difference(&base.labels, &grown.labels);
        assert!(moved < 0.6, "moved {moved}");
    }

    #[test]
    fn elastic_shrinks_partitions() {
        let g = community_graph(2000, 8, 23);
        let base = partition(&g, &small_cfg(8));
        let shrunk = elastic(&g, &base.labels, 8, &small_cfg(6));
        assert_eq!(shrunk.k, 6);
        assert!(shrunk.labels.iter().all(|&l| l < 6));
        assert!(shrunk.quality.loads.iter().all(|&l| l > 0));
    }

    #[test]
    fn incremental_labels_fill_least_loaded() {
        let g = from_undirected_edges(
            &spinner_graph::GraphBuilder::new(4)
                .add_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
                .build(),
        );
        // Vertices 0,1 labelled 0; vertices 2,3 are new.
        let labels = incremental_labels(&g, &[0, 0], 2);
        assert_eq!(labels[2], 1);
        assert_eq!(labels[3], 1);
    }

    #[test]
    fn incremental_labels_heap_matches_naive_min_scan() {
        // The heap must reproduce the former O(k)-scan assignment exactly,
        // including its (smallest load, then smallest label) tie-break.
        let g = community_graph(1200, 5, 21);
        let k = 7u32;
        let previous: Vec<Label> = (0..500u32).map(|v| v % k).collect();
        let fast = incremental_labels(&g, &previous, k);

        let mut loads = vec![0i64; k as usize];
        let mut naive: Vec<Label> = Vec::new();
        for (v, &l) in previous.iter().enumerate() {
            loads[l as usize] += g.weighted_degree(v as VertexId) as i64;
            naive.push(l);
        }
        for v in previous.len()..g.num_vertices() as usize {
            let least = (0..k as usize).min_by_key(|&l| loads[l]).unwrap() as Label;
            loads[least as usize] += g.weighted_degree(v as VertexId) as i64;
            naive.push(least);
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn plain_lpa_ablation_loses_balance_on_skewed_graph() {
        let d = spinner_graph::generators::rmat(
            spinner_graph::generators::RmatConfig::graph500(11, 12, 3),
        );
        let g = to_weighted_undirected(&d);
        let mut balanced_cfg = small_cfg(8);
        balanced_cfg.max_iterations = 30;
        let mut plain_cfg = balanced_cfg.clone();
        plain_cfg.balance_penalty = false;
        plain_cfg.probabilistic_migration = false;
        let balanced = partition(&g, &balanced_cfg);
        let plain = partition(&g, &plain_cfg);
        assert!(
            plain.quality.rho > balanced.quality.rho + 0.3,
            "plain {} vs balanced {}",
            plain.quality.rho,
            balanced.quality.rho
        );
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::config::{BalanceObjective, RestartScope};
    use spinner_graph::generators::{planted_partition, rmat, RmatConfig, SbmConfig};
    use spinner_graph::mutation::{apply_delta, sample_new_edges};

    fn community_graph(n: u32, communities: u32, seed: u64) -> UndirectedGraph {
        to_weighted_undirected(&planted_partition(SbmConfig {
            n,
            communities,
            internal_degree: 8.0,
            external_degree: 1.5,
            skew: None,
            seed,
        }))
    }

    fn small_cfg(k: u32) -> SpinnerConfig {
        let mut cfg = SpinnerConfig::new(k);
        cfg.num_workers = 4;
        cfg.max_iterations = 60;
        cfg
    }

    #[test]
    fn heterogeneous_capacities_shift_load() {
        let g = community_graph(3000, 8, 31);
        // Partition 0 gets twice the capacity of each of the others.
        let mut weights = vec![1.0; 4];
        weights[0] = 2.0;
        let cfg = small_cfg(4).with_capacity_weights(weights);
        let r = partition(&g, &cfg);
        let total: u64 = r.quality.loads.iter().sum();
        let share0 = r.quality.loads[0] as f64 / total as f64;
        // Ideal share is 2/5 = 0.4 vs 0.2 for the others.
        assert!((0.30..=0.45).contains(&share0), "share0 {share0}");
        // Weighted rho stays near c.
        assert!(r.quality.rho < 1.2, "rho {}", r.quality.rho);
        for l in 1..4 {
            let share = r.quality.loads[l] as f64 / total as f64;
            assert!(share < share0, "partition {l} share {share} >= {share0}");
        }
    }

    #[test]
    fn vertex_objective_balances_vertex_counts_on_skewed_graph() {
        let g = to_weighted_undirected(&rmat(RmatConfig::graph500(11, 12, 5)));
        let mut cfg = small_cfg(8);
        cfg.objective = BalanceObjective::Vertices;
        let r = partition(&g, &cfg);
        let mut counts = [0u64; 8];
        for &l in &r.labels {
            counts[l as usize] += 1;
        }
        let ideal = g.num_vertices() as f64 / 8.0;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / ideal < 1.15, "vertex rho {}", max / ideal);
        // Edge loads are NOT balanced under this objective on a hub graph.
        let edge_rho = spinner_metrics::rho(&g, &r.labels, 8);
        assert!(edge_rho > max / ideal, "edge rho {edge_rho}");
    }

    #[test]
    fn affected_only_restart_is_cheaper_and_stable() {
        let directed = planted_partition(SbmConfig {
            n: 3000,
            communities: 6,
            internal_degree: 10.0,
            external_degree: 1.0,
            skew: None,
            seed: 77,
        });
        let g = to_weighted_undirected(&directed);
        let cfg = small_cfg(6);
        let initial = partition(&g, &cfg);

        let new_edges = sample_new_edges(&directed, 60, 0.8, 5); // 0.2% change
        let delta = spinner_graph::GraphDelta::additions(new_edges);
        let changed = apply_delta(&directed, &delta);
        let g2 = to_weighted_undirected(&changed);

        let mut scoped = cfg.clone();
        scoped.restart_scope = RestartScope::AffectedOnly;
        let affected_run = adapt_with_delta(&g2, &initial.labels, &delta, &scoped);
        let full_run = adapt_with_delta(&g2, &initial.labels, &delta, &cfg);

        // The affected-only strategy computes far fewer vertices.
        assert!(
            (affected_run.totals.computed as f64) < 0.7 * full_run.totals.computed as f64,
            "computed {} vs {}",
            affected_run.totals.computed,
            full_run.totals.computed
        );
        // Quality stays comparable.
        assert!(
            affected_run.quality.phi > full_run.quality.phi - 0.1,
            "phi {} vs {}",
            affected_run.quality.phi,
            full_run.quality.phi
        );
        // And it is at least as stable.
        let moved_affected =
            spinner_metrics::partitioning_difference(&initial.labels, &affected_run.labels);
        let moved_full =
            spinner_metrics::partitioning_difference(&initial.labels, &full_run.labels);
        assert!(moved_affected <= moved_full + 0.01);
    }

    #[test]
    fn exhaustive_scan_matches_optimized_quality() {
        let g = community_graph(2500, 5, 41);
        let cfg_opt = small_cfg(5);
        let mut cfg_ex = small_cfg(5);
        cfg_ex.exhaustive_candidate_scan = true;
        let opt = partition(&g, &cfg_opt);
        let ex = partition(&g, &cfg_ex);
        assert!(
            (opt.quality.phi - ex.quality.phi).abs() < 0.05,
            "phi {} vs {}",
            opt.quality.phi,
            ex.quality.phi
        );
        assert!(
            (opt.quality.rho - ex.quality.rho).abs() < 0.05,
            "rho {} vs {}",
            opt.quality.rho,
            ex.quality.rho
        );
    }
}
