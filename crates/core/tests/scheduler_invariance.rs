//! Scheduler invariance: *how* supersteps are executed — static contiguous
//! worker blocks vs work-stealing chunk claims, any chunk size, any
//! worker × thread grid, dense vertex scans vs the incremental active
//! list — is pure plumbing. With the §IV-A4 asynchronous load view
//! disabled, every combination must produce bit-identical labels **and**
//! history (φ/ρ/score per iteration, compared by raw f64 bits), plus
//! identical `computed` counts: the active list is by construction exactly
//! the visit set of the dense scan (dense computes `i` iff `!halted[i]`,
//! and delivery wakes every halted recipient before the next compute).
//!
//! This is what lets the engine default to work-stealing + active-set
//! scheduling without a correctness trade: determinism comes from merging
//! all per-worker partials engine-side in worker order, never from which
//! thread happened to run a worker.

use proptest::prelude::*;
use spinner_core::{
    partition_with_placement, PartitionResult, SpinnerConfig, StreamEvent, StreamSession,
    WindowReport,
};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::{barabasi_albert, planted_partition, SbmConfig};
use spinner_graph::{DeltaStream, DeltaStreamConfig, UndirectedGraph};
use spinner_pregel::Placement;

fn community_graph(n: u32, communities: u32, seed: u64) -> UndirectedGraph {
    to_weighted_undirected(&planted_partition(SbmConfig {
        n,
        communities,
        internal_degree: 7.0,
        external_degree: 1.5,
        skew: None,
        seed,
    }))
}

fn sync_cfg(k: u32, num_threads: usize) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(5);
    cfg.num_threads = num_threads;
    cfg.max_iterations = 25;
    cfg.async_worker_loads = false;
    cfg
}

/// Everything that must match bit-for-bit, including the computed-vertex
/// total: an active list that visited a different set than the dense scan
/// would show up here even if it happened to converge to the same labels.
fn digest(r: &PartitionResult) -> (&[u32], &[spinner_core::IterationStats], u32, u64, u64) {
    (&r.labels, &r.history, r.iterations, r.supersteps, r.totals.computed)
}

/// The scheduler arms under test: (work_stealing, steal_chunk). Chunk size
/// only matters when stealing; 0 means "auto" (contiguous blocks, the old
/// static split, now claimable by idle threads).
const SCHEDULERS: &[(bool, usize)] = &[(false, 0), (true, 0), (true, 1), (true, 5)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random community graphs: one serial dense reference per case; every
    /// scheduler × chunk × grid × scan-mode combination must match it.
    #[test]
    fn any_scheduler_yields_identical_labels_and_history(
        graph_seed in 0u64..1000,
        k in 3u32..7,
    ) {
        let g = community_graph(500, k, graph_seed);
        let mut ref_cfg = sync_cfg(k, 1);
        ref_cfg.dense_scan = true;
        let reference =
            partition_with_placement(&g, &ref_cfg, &Placement::contiguous(500, 1));
        prop_assert!(reference.iterations > 0);
        for &(workers, threads) in &[(3usize, 2usize), (5, 4), (8, 3)] {
            for &(stealing, chunk) in SCHEDULERS {
                for dense in [false, true] {
                    let mut cfg = sync_cfg(k, threads);
                    cfg.work_stealing = stealing;
                    cfg.steal_chunk = chunk;
                    cfg.dense_scan = dense;
                    let p = Placement::hashed(500, workers, 11);
                    let r = partition_with_placement(&g, &cfg, &p);
                    prop_assert_eq!(
                        digest(&r),
                        digest(&reference),
                        "diverged: stealing={} chunk={} dense={} workers={} threads={}",
                        stealing, chunk, dense, workers, threads
                    );
                }
            }
        }
    }
}

/// Deterministic anchor at a larger size with a hub-skewed placement — the
/// shape work-stealing exists for (contiguous placement parks the heavy
/// low-id hubs of a preferential-attachment graph on worker 0).
#[test]
fn scheduler_grid_anchor_on_skewed_hubs() {
    let g = to_weighted_undirected(&barabasi_albert(2000, 8, 7));
    let mut ref_cfg = sync_cfg(6, 1);
    ref_cfg.dense_scan = true;
    let reference = partition_with_placement(&g, &ref_cfg, &Placement::contiguous(2000, 1));
    assert!(reference.iterations > 0);
    for &(workers, threads) in &[(8usize, 4usize), (16, 8), (7, 3)] {
        for &(stealing, chunk) in SCHEDULERS {
            let mut cfg = sync_cfg(6, threads);
            cfg.work_stealing = stealing;
            cfg.steal_chunk = chunk;
            let p = Placement::contiguous(2000, workers);
            let r = partition_with_placement(&g, &cfg, &p);
            assert_eq!(
                digest(&r),
                digest(&reference),
                "diverged: stealing={stealing} chunk={chunk} workers={workers} threads={threads}"
            );
        }
    }
}

/// The per-window digest for the streaming arms — everything the report
/// carries except wall time, including the computed-vertex count the
/// active-set scheduler could get wrong.
fn window_digest(w: &WindowReport) -> (u32, f64, f64, f64, u32, u64, u64, u64, u64, u64, u64) {
    (
        w.window(),
        w.phi(),
        w.rho(),
        w.migration_fraction(),
        w.iterations(),
        w.supersteps(),
        w.messages(),
        w.sent_local(),
        w.sent_remote(),
        w.placement_moved(),
        w.computed(),
    )
}

fn stream_cfg(k: u32, dense_scan: bool) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(7);
    cfg.num_workers = 4;
    cfg.num_threads = 2;
    cfg.max_iterations = 30;
    cfg.async_worker_loads = false;
    cfg.frontier_windows = true;
    cfg.dense_scan = dense_scan;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random delta streams under frontier-seeded windows: the active-set
    /// arm must be bit-identical to the dense-scan arm window by window —
    /// same labels, same quality bits, same computed counts — while the
    /// frontier seeding keeps delta windows from re-running the full graph.
    #[test]
    fn active_set_stream_matches_dense_scan_stream(
        graph_seed in 0u64..1000,
        stream_seed in 0u64..1000,
        k in 4u32..8,
    ) {
        let base = barabasi_albert(1000, 6, graph_seed);
        let deltas: Vec<_> = DeltaStream::new(
            base.clone(),
            DeltaStreamConfig {
                windows: 3,
                hub_bias: 0.5,
                seed: stream_seed,
                ..DeltaStreamConfig::default()
            },
        )
        .collect();

        let mut dense = StreamSession::new(base.clone(), stream_cfg(k, true));
        let mut active = StreamSession::new(base, stream_cfg(k, false));
        for delta in deltas {
            dense.apply(StreamEvent::Delta(delta.clone()));
            active.apply(StreamEvent::Delta(delta));
        }

        prop_assert_eq!(dense.labels(), active.labels(), "labels diverged across scan modes");
        for (d, a) in dense.windows().iter().zip(active.windows()) {
            prop_assert_eq!(
                window_digest(d),
                window_digest(a),
                "window {} diverged across scan modes",
                d.window()
            );
            // Frontier-seeded delta windows park the untouched bulk of the
            // graph halted, so neither arm re-computes the full vertex set
            // every superstep.
            if d.window() >= 2 {
                prop_assert!(
                    d.active_fraction() < 1.0,
                    "window {} recomputed everything (active fraction {})",
                    d.window(),
                    d.active_fraction()
                );
            }
        }
    }
}
