//! Property-based tests on Spinner's core invariants: valid assignments,
//! load accounting, capacity behaviour, and adaptation stability — over
//! randomized graphs and configurations.

use proptest::prelude::*;
use spinner_core::{adapt, elastic, partition, SpinnerConfig};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::{erdos_renyi, planted_partition, SbmConfig};
use spinner_graph::UndirectedGraph;

fn sbm(n: u32, communities: u32, seed: u64) -> UndirectedGraph {
    to_weighted_undirected(&planted_partition(SbmConfig {
        n,
        communities,
        internal_degree: 6.0,
        external_degree: 1.5,
        skew: None,
        seed,
    }))
}

fn cfg(k: u32, seed: u64) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(seed);
    cfg.num_workers = 4;
    cfg.num_threads = 4;
    cfg.max_iterations = 30;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every run yields a complete valid assignment whose reported loads
    /// reconcile exactly with the graph.
    #[test]
    fn assignment_and_load_accounting(
        k in 2u32..9,
        seed in 0u64..50,
        n in 300u32..900,
    ) {
        let g = sbm(n, 4, seed);
        let r = partition(&g, &cfg(k, seed));
        prop_assert_eq!(r.labels.len(), g.num_vertices() as usize);
        prop_assert!(r.labels.iter().all(|&l| l < k));
        // Reported loads match a from-scratch recount.
        let recount = spinner_metrics::partition_loads(&g, &r.labels, k);
        prop_assert_eq!(&r.quality.loads, &recount);
        prop_assert_eq!(recount.iter().sum::<u64>(), g.total_weight());
        // phi/rho within meaningful ranges.
        prop_assert!((0.0..=1.0).contains(&r.quality.phi));
        prop_assert!(r.quality.rho >= 1.0 - 1e-9);
        // History is monotone in iteration index.
        for w in r.history.windows(2) {
            prop_assert!(w[1].iteration > w[0].iteration);
        }
    }

    /// The final reported phi agrees with an independent recomputation.
    #[test]
    fn reported_phi_matches_recomputation(seed in 0u64..30) {
        let g = sbm(600, 4, seed);
        let r = partition(&g, &cfg(4, seed));
        let phi = spinner_metrics::phi(&g, &r.labels);
        prop_assert!((phi - r.quality.phi).abs() < 1e-9,
            "reported {} vs recomputed {}", r.quality.phi, phi);
    }

    /// rho stays near c even on structureless random graphs (balance must
    /// not depend on community structure).
    #[test]
    fn capacity_respected_on_random_graphs(seed in 0u64..20) {
        let g = to_weighted_undirected(&erdos_renyi(800, 6000, seed));
        let c = 1.10;
        let r = partition(&g, &cfg(6, seed).with_c(c));
        prop_assert!(r.quality.rho <= c + 0.12, "rho {} with c {}", r.quality.rho, c);
    }

    /// Adaptation from any valid previous labelling stays valid and
    /// preserves the partitioning structure on an unchanged graph. Movement
    /// is judged by the *matched* difference: with a fresh random stream the
    /// full-restart strategy (§III-D) may relabel whole groups, but it must
    /// not dissolve them.
    #[test]
    fn adapt_is_stable_on_unchanged_graph(seed in 0u64..20) {
        // Strong community structure: stability is only an expected outcome
        // when the optimum is deep (the paper's Tuenti graph is such a
        // graph); on weakly-structured graphs the deliberate full restart
        // (§III-D) legitimately restructures.
        let g = to_weighted_undirected(&planted_partition(SbmConfig {
            n: 600,
            communities: 4,
            internal_degree: 12.0,
            external_degree: 1.0,
            skew: None,
            seed,
        }));
        let k = 4;
        let base = partition(&g, &cfg(k, seed));
        let re = adapt(&g, &base.labels, &cfg(k, seed + 1));
        prop_assert!(re.labels.iter().all(|&l| l < k));
        let moved = spinner_metrics::difference::partitioning_difference_matched(
            &base.labels,
            &re.labels,
        );
        prop_assert!(moved < 0.3, "matched-moved {} on unchanged graph", moved);
        // Quality must not degrade.
        prop_assert!(
            re.quality.phi > base.quality.phi - 0.1,
            "phi {} -> {}",
            base.quality.phi,
            re.quality.phi
        );
        // Note: even a converged state keeps a trickle of migrations when
        // re-run (halting is score-based, §III-C), so exact-zero movement is
        // not an invariant — structural stability above is.
    }

    /// Elastic resizing in both directions yields valid labelings with all
    /// partitions populated.
    #[test]
    fn elastic_resizing_is_valid(seed in 0u64..20, delta in 1u32..4) {
        let g = sbm(800, 8, seed);
        let old_k = 6;
        let base = partition(&g, &cfg(old_k, seed));
        let grown = elastic(&g, &base.labels, old_k, &cfg(old_k + delta, seed));
        prop_assert!(grown.labels.iter().all(|&l| l < old_k + delta));
        prop_assert!(grown.quality.loads.iter().all(|&l| l > 0), "empty partition after growth");
        let shrunk = elastic(&g, &base.labels, old_k, &cfg(old_k - delta.min(4), seed));
        prop_assert!(shrunk.labels.iter().all(|&l| l < old_k - delta.min(4)));
    }
}
