//! Broadcast-lane equivalence on streaming Spinner workloads: a
//! [`StreamSession`] running with the deduplicating broadcast fabric must
//! be **bit-identical** — labels, φ/ρ bits, iteration counts, logical
//! message totals — to the per-edge unicast arm, across hub-biased delta
//! windows that exercise the fan-out index through every lifecycle the
//! engine offers: the cold build, `warm_reset_undirected` after each
//! delta, and the `Engine::replace` migration that label-driven placement
//! feedback triggers mid-stream. The only permitted difference is the
//! physical record traffic, which the broadcast arm must strictly shrink
//! on hub-heavy graphs.

use proptest::prelude::*;
use spinner_core::{SpinnerConfig, StreamEvent, StreamSession, WindowReport};
use spinner_graph::generators::barabasi_albert;
use spinner_graph::{DeltaStream, DeltaStreamConfig, DirectedGraph};

/// Preferential-attachment base: the hub-heavy regime the dedup targets
/// (a hub with `d` neighbours over `L` workers costs `d` unicast records
/// but at most `L` broadcast records).
fn hub_graph(n: u32, seed: u64) -> DirectedGraph {
    barabasi_albert(n, 8, seed)
}

fn cfg(k: u32, seed: u64, broadcast: bool) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(seed);
    cfg.num_workers = 4;
    cfg.num_threads = 2;
    cfg.max_iterations = 30;
    cfg.broadcast_fabric = broadcast;
    // Feedback re-places the engine by computed label once the remote
    // share crosses 0.5 — on a 4-worker hash placement the bootstrap
    // window always does, so every stream exercises `Engine::replace`
    // with the fan-out index rebuilt on the migrated layout.
    cfg.placement_feedback = Some(0.5);
    cfg
}

/// The per-window digest that must match across the two lanes (everything
/// except the physical record counts; f64 fields compare by bits via
/// `PartialEq`, and none are NaN by construction).
fn digest(w: &WindowReport) -> (u32, f64, f64, f64, u32, u64, u64, u64, u64, u64) {
    (
        w.window(),
        w.phi(),
        w.rho(),
        w.migration_fraction(),
        w.iterations(),
        w.supersteps(),
        w.messages(),
        w.sent_local(),
        w.sent_remote(),
        w.placement_moved(),
    )
}

fn run_arms(graph_seed: u64, stream_seed: u64, k: u32) {
    let base = hub_graph(1200, graph_seed);
    let deltas: Vec<_> = DeltaStream::new(
        base.clone(),
        DeltaStreamConfig {
            windows: 3,
            add_fraction: 0.02,
            remove_fraction: 0.005,
            vertex_fraction: 0.004,
            attach_degree: 4,
            triadic_fraction: 0.5,
            hub_bias: 1.0,
            seed: stream_seed,
        },
    )
    .collect();

    let mut unicast = StreamSession::new(base.clone(), cfg(k, 7, false));
    let mut broadcast = StreamSession::new(base, cfg(k, 7, true));
    for delta in deltas {
        unicast.apply(StreamEvent::Delta(delta.clone()));
        broadcast.apply(StreamEvent::Delta(delta));
    }

    assert_eq!(unicast.labels(), broadcast.labels(), "labels diverged across lanes");
    // The feedback migration (Engine::replace) must actually have fired,
    // so the broadcast index demonstrably survived an in-place re-hosting.
    assert!(broadcast.windows()[0].placement_moved() > 0, "replace never triggered");
    let mut remote_unicast = 0u64;
    let mut remote_broadcast = 0u64;
    for (u, b) in unicast.windows().iter().zip(broadcast.windows()) {
        assert_eq!(digest(u), digest(b), "window {} diverged across lanes", u.window());
        // Unicast is the identity arm: records == logical messages.
        assert_eq!(u.sent_remote_records(), u.sent_remote());
        assert_eq!(u.sent_local_records(), u.sent_local());
        // Broadcast never ships more than unicast would.
        assert!(b.sent_remote_records() <= u.sent_remote_records());
        assert!(b.sent_local_records() <= u.sent_local_records());
        remote_unicast += u.sent_remote_records();
        remote_broadcast += b.sent_remote_records();
        // Warm resets and the replace keep both arms allocation-free once
        // capacities have warmed up.
        if u.window() >= 2 {
            assert_eq!(u.fabric_reallocs(), 0, "unicast window {} grew", u.window());
            assert_eq!(b.fabric_reallocs(), 0, "broadcast window {} grew", b.window());
        }
    }
    assert!(
        remote_broadcast < remote_unicast,
        "no dedup on a hub graph: {remote_broadcast} vs {remote_unicast}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random hub-biased streams: the broadcast arm matches the unicast arm
    /// bit-for-bit through cold build, warm resets, and the mid-stream
    /// placement-feedback `Engine::replace`, while shipping fewer records.
    #[test]
    fn broadcast_stream_matches_unicast_stream(
        graph_seed in 0u64..1000,
        stream_seed in 0u64..1000,
        k in 4u32..9,
    ) {
        run_arms(graph_seed, stream_seed, k);
    }
}

/// Deterministic anchor: on a preferential-attachment graph over 4 workers
/// the whole-stream dedup ratio (logical remote deliveries per grid
/// record) must be substantial, not marginal — the hub mass dominates the
/// announcement traffic.
#[test]
fn hub_stream_dedup_ratio_is_substantial() {
    let base = hub_graph(2000, 0xB0A);
    let mut session = StreamSession::new(base, cfg(8, 11, true));
    let deltas: Vec<_> = DeltaStream::new(
        session.graph().clone(),
        DeltaStreamConfig {
            windows: 2,
            hub_bias: 1.0,
            seed: 3,
            ..DeltaStreamConfig::default()
        },
    )
    .collect();
    for delta in deltas {
        session.apply(StreamEvent::Delta(delta));
    }
    let (logical, records) = session
        .windows()
        .iter()
        .fold((0u64, 0u64), |(l, r), w| (l + w.sent_remote(), r + w.sent_remote_records()));
    assert!(records > 0);
    let ratio = logical as f64 / records as f64;
    assert!(ratio > 2.0, "dedup ratio {ratio:.2} too small ({logical} / {records})");
}
