//! Placement invariance: with the §IV-A4 asynchronous load view disabled,
//! a Spinner run is a pure function of `(graph, config)` — *where* vertices
//! live is pure plumbing. Any permutation of the vertex → worker
//! [`Placement`] (hashed, modulo, contiguous, label-derived — balanced or
//! modulo-wrapped), over any logical-worker × thread grid, must produce
//! bit-identical labels **and** history (φ/ρ/score per iteration, compared
//! by raw f64 bits via `PartialEq`).
//!
//! This is the property the label-driven placement feedback loop leans on:
//! `StreamSession` may re-host every vertex mid-stream by computed label
//! without perturbing the label space. It holds because every aggregate
//! that feeds a decision is accumulated in integers (loads, candidates,
//! local weight — and the global score, in 2⁻²⁰ fixed point), so no
//! floating-point sum depends on how vertices are grouped onto workers.

use proptest::prelude::*;
use spinner_core::{partition_with_placement, PartitionResult, SpinnerConfig};
use spinner_graph::conversion::to_weighted_undirected;
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::rng::mix3;
use spinner_graph::UndirectedGraph;
use spinner_pregel::Placement;

fn community_graph(n: u32, communities: u32, seed: u64) -> UndirectedGraph {
    to_weighted_undirected(&planted_partition(SbmConfig {
        n,
        communities,
        internal_degree: 7.0,
        external_degree: 1.5,
        skew: None,
        seed,
    }))
}

fn sync_cfg(k: u32, num_threads: usize) -> SpinnerConfig {
    let mut cfg = SpinnerConfig::new(k).with_seed(5);
    cfg.num_threads = num_threads;
    cfg.max_iterations = 25;
    cfg.async_worker_loads = false;
    cfg
}

/// Everything that must match bit-for-bit. `IterationStats` derives
/// `PartialEq` over its f64 fields, so equal means equal bits (no NaNs
/// occur: φ/ρ/score are finite by construction).
fn digest(r: &PartitionResult) -> (&[u32], &[spinner_core::IterationStats], u32, u64) {
    (&r.labels, &r.history, r.iterations, r.supersteps)
}

/// The placements under test for a given `(n, workers, variant)` — every
/// constructor the crate offers, including an explicit per-vertex map (the
/// snapshot-restore path) and the balanced label packing built from an
/// arbitrary (seeded) labelling.
fn placement(variant: usize, n: u32, workers: usize, seed: u64) -> Placement {
    match variant {
        0 => Placement::hashed(n, workers, seed),
        1 => Placement::modulo(n, workers),
        2 => Placement::contiguous(n, workers),
        3 => {
            let worker_of: Vec<_> =
                (0..n).map(|v| (mix3(seed, v as u64, 0xD1A) % workers as u64) as u16).collect();
            Placement::explicit(worker_of, workers)
        }
        _ => {
            let labels: Vec<u32> = (0..n)
                .map(|v| (mix3(seed, v as u64, 0xD1B) % (2 * workers as u64 + 1)) as u32)
                .collect();
            Placement::from_labels_balanced(&labels, workers)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random graphs, every placement constructor, assorted worker/thread
    /// shapes: one reference run per case, everything else must match it.
    #[test]
    fn any_placement_yields_identical_labels_and_history(
        graph_seed in 0u64..1000,
        placement_seed in 0u64..1000,
        k in 3u32..7,
    ) {
        let g = community_graph(500, k, graph_seed);
        let reference =
            partition_with_placement(&g, &sync_cfg(k, 1), &Placement::contiguous(500, 1));
        prop_assert!(reference.iterations > 0);
        for &(workers, threads) in &[(1usize, 2usize), (3, 1), (5, 2), (8, 4)] {
            for variant in 0..5 {
                let p = placement(variant, 500, workers, placement_seed);
                let r = partition_with_placement(&g, &sync_cfg(k, threads), &p);
                prop_assert_eq!(
                    digest(&r),
                    digest(&reference),
                    "diverged: variant={} workers={} threads={}",
                    variant,
                    workers,
                    threads
                );
            }
        }
    }
}

/// A deterministic anchor for the same property at a larger size, so the
/// grid is exercised even when the property test's case budget is trimmed.
#[test]
fn placement_grid_anchor() {
    let g = community_graph(2000, 6, 13);
    let reference =
        partition_with_placement(&g, &sync_cfg(6, 1), &Placement::contiguous(2000, 1));
    // Sanity only (25 capped iterations): the run must have left the random
    // regime (~1/k) before we call its trajectory the reference.
    assert!(reference.quality.phi > 0.35, "phi {}", reference.quality.phi);
    for &(workers, threads) in &[(4usize, 2usize), (7, 3), (16, 8)] {
        for variant in 0..5 {
            let p = placement(variant, 2000, workers, 77);
            let r = partition_with_placement(&g, &sync_cfg(6, threads), &p);
            assert_eq!(
                digest(&r),
                digest(&reference),
                "diverged: variant={variant} workers={workers} threads={threads}"
            );
        }
    }
}

/// The async load view is *expected* to depend on placement (it is the
/// §IV-A4 worker-local shortcut); pin that the invariance claim is scoped
/// correctly rather than accidentally true everywhere.
#[test]
fn async_view_depends_on_placement_by_design() {
    let g = community_graph(2000, 6, 13);
    let mut cfg = sync_cfg(6, 2);
    cfg.async_worker_loads = true;
    let a = partition_with_placement(&g, &cfg, &Placement::hashed(2000, 4, 9));
    let b = partition_with_placement(&g, &cfg, &Placement::contiguous(2000, 4));
    // Same quality regime, different trajectories.
    assert!((a.quality.phi - b.quality.phi).abs() < 0.15);
    assert_ne!(a.labels, b.labels, "async view unexpectedly placement-invariant");
}
