//! Transport chaos properties: under *any* seeded recoverable fault plan —
//! drops, duplicates, reorders, bit flips, torn frames, delivery delays —
//! an engine run over the reliable transport either completes with results
//! bit-identical to the fault-free run, or aborts with a typed
//! [`HaltReason::TransportFailed`]. It never panics, never hangs past the
//! configured deadline, and never diverges silently. A `Stall` fault (the
//! one unrecoverable kind) must surface as a typed error within the retry
//! budget, and a subsequent run on the same engine must self-heal.

use proptest::prelude::*;
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::DirectedGraph;
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason};
use spinner_pregel::program::Program;
use spinner_pregel::{
    Placement, RetryConfig, TransportError, TransportFault, TransportFaultPlan, TransportKind,
    VertexContext,
};
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

fn sbm() -> DirectedGraph {
    planted_partition(SbmConfig {
        n: 300,
        communities: 4,
        internal_degree: 6.0,
        external_degree: 1.5,
        skew: None,
        seed: 11,
    })
}

/// Min-label propagation: any frame the fabric loses, corrupts, duplicates,
/// or reorders without the reliable layer repairing it shows up as a value
/// difference against the fault-free run.
struct MinLabel;

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, best);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, _acc: &mut u32, _msg: &u32) -> bool {
        false
    }
}

fn engine_for(
    g: &DirectedGraph,
    threads: usize,
    retry: RetryConfig,
    plan: Option<TransportFaultPlan>,
) -> Engine<MinLabel> {
    let placement = Placement::hashed(g.num_vertices(), WORKERS, 9);
    let cfg = EngineConfig {
        num_threads: threads,
        max_supersteps: 200,
        seed: 3,
        transport: TransportKind::Ring,
        transport_retry: retry,
        transport_faults: plan,
        ..EngineConfig::default()
    };
    Engine::from_directed(MinLabel, g, &placement, cfg, |_| u32::MAX, |_, _, _| ())
}

/// A short, test-friendly retry budget: enough retransmits to absorb
/// scripted fault bursts, and a deadline that turns any hang into a fast,
/// loud failure instead of a stuck suite.
fn fast_retry() -> RetryConfig {
    RetryConfig {
        reliable: true,
        max_retransmits: 8,
        backoff_base: Duration::from_micros(5),
        take_deadline: Duration::from_millis(500),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any seeded recoverable plan, serial or pooled: the run either
    /// completes bit-identical to the fault-free reference, or every abort
    /// is a typed transport error and re-running the same engine self-heals
    /// to the reference within a plan-bounded number of attempts.
    #[test]
    fn seeded_plans_are_absorbed_or_typed(
        seed in any::<u64>(),
        density_pct in 1u64..30,
        threads in 1u64..4,
    ) {
        let density = density_pct as f64 / 100.0;
        let threads = threads as usize;
        let g = sbm();
        let reference = {
            let mut engine = engine_for(&g, 1, fast_retry(), None);
            let summary = engine.run();
            prop_assert_eq!(summary.halt, HaltReason::AllHalted);
            engine.collect_values()
        };

        let plan = TransportFaultPlan::seeded(seed, WORKERS, 40, density);
        prop_assert!(!plan.has_stall(), "seeded plans script only recoverable faults");
        let mut engine = engine_for(&g, threads, fast_retry(), Some(plan));
        // Each rerun consumes at least the fault that killed the lane
        // (consumed faults stay consumed across the run's transport reset),
        // so the escalation loop is bounded by the plan size.
        let mut attempts = 0u32;
        let halt = loop {
            let summary = engine.run();
            match summary.halt {
                HaltReason::TransportFailed(err) => {
                    let (src, dst) = err.lane();
                    prop_assert!(src < WORKERS && dst < WORKERS, "error names a real lane");
                    attempts += 1;
                    prop_assert!(attempts <= 64, "escalation loop must terminate");
                }
                reason => break reason,
            }
        };
        prop_assert_eq!(halt, HaltReason::AllHalted);
        prop_assert_eq!(engine.collect_values(), reference);
        let (injected, _) = engine.transport_chaos_counts();
        prop_assert!(attempts == 0 || injected > 0, "aborts imply injected faults");
    }
}

/// Recoverable faults on exact frame coordinates are invisible in the
/// results and visible in the counters: the run stays bit-identical while
/// the receive-side stats record the repairs.
#[test]
fn scripted_recoverable_faults_keep_results_bit_identical() {
    let g = sbm();
    let reference = {
        let mut engine = engine_for(&g, 2, fast_retry(), None);
        assert_eq!(engine.run().halt, HaltReason::AllHalted);
        engine.collect_values()
    };
    let plan = TransportFaultPlan::new()
        .fail(0, 1, 0, TransportFault::Drop)
        .fail(1, 2, 1, TransportFault::Duplicate)
        .fail(2, 3, 0, TransportFault::Reorder { window: 2 })
        .fail(3, 0, 1, TransportFault::FlipBit { bit: 17 })
        .fail(0, 2, 2, TransportFault::Torn { keep: 3 })
        .fail(1, 3, 0, TransportFault::Delay { ticks: 2 });
    let mut engine = engine_for(&g, 2, fast_retry(), Some(plan));
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    assert_eq!(engine.collect_values(), reference, "recoverable chaos must be invisible");
    let (injected, remaining) = engine.transport_chaos_counts();
    assert_eq!(injected, 6, "every scripted fault fired");
    assert_eq!(remaining, 0);
    let stats = engine.transport_recv_stats();
    assert!(stats.recovery_actions() > 0, "the repairs must be accounted: {stats:?}");
    assert!(summary.totals().retransmits > 0, "drops and corruption force retransmits");
}

/// A stalled lane can never hang the engine: with retransmits effectively
/// unbounded the take deadline fires, and with a finite retransmit budget
/// the lane dies first — both surface as `TransportFailed` on the stalled
/// lane, well before the suite-level timeout.
#[test]
fn stalled_lanes_hit_the_deadline_not_a_hang() {
    let g = sbm();
    for (retry, expect_timeout) in [
        (
            RetryConfig {
                max_retransmits: u32::MAX,
                backoff_base: Duration::from_micros(50),
                take_deadline: Duration::from_millis(50),
                ..RetryConfig::default()
            },
            true,
        ),
        (fast_retry(), false),
    ] {
        let plan = TransportFaultPlan::new().stall_at(2, 0, 0);
        let mut engine = engine_for(&g, 2, retry, Some(plan));
        let start = Instant::now();
        let summary = engine.run();
        let elapsed = start.elapsed();
        let HaltReason::TransportFailed(err) = summary.halt else {
            panic!("stall must abort the run, got {:?}", summary.halt);
        };
        assert_eq!(err.lane(), (2, 0), "the stalled lane is named: {err}");
        if expect_timeout {
            assert!(matches!(err, TransportError::Timeout { .. }), "deadline path: {err}");
        } else {
            assert!(matches!(err, TransportError::LaneDead { .. }), "budget path: {err}");
        }
        assert!(elapsed < Duration::from_secs(5), "bounded abort, took {elapsed:?}");

        // The stall was consumed; the next run on the same engine resets
        // the transport (replacement worker connects fresh) and completes.
        let healed = engine.run();
        assert_eq!(healed.halt, HaltReason::AllHalted, "self-healing rerun");
    }
}

/// Lane health is observable while degraded and resets with the transport:
/// a recovered run reports fully healthy lanes again.
#[test]
fn lane_health_recovers_after_the_stall_is_consumed() {
    let g = sbm();
    let plan = TransportFaultPlan::new().stall_at(1, 2, 0);
    let mut engine = engine_for(&g, 1, fast_retry(), Some(plan));
    let summary = engine.run();
    assert!(matches!(summary.halt, HaltReason::TransportFailed(_)));
    let (_, dead) = engine.transport_health_counts();
    assert_eq!(dead, 1, "the stalled lane is reported dead");
    assert_eq!(engine.run().halt, HaltReason::AllHalted);
    let (degraded, dead) = engine.transport_health_counts();
    assert_eq!((degraded, dead), (0, 0), "clean rerun leaves every lane healthy");
}
