//! Wire-format and transport properties: arbitrary record batches must
//! round-trip bit-identically through `encode_frame`/`decode_frame` in both
//! formats, torn or corrupted frames must surface as typed errors (never a
//! panic), and a full engine run must produce bit-identical results across
//! every `{transport} x {wire format} x {sender fold}` arm.

use proptest::prelude::*;
use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::DirectedGraph;
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason};
use spinner_pregel::program::Program;
use spinner_pregel::wire::{decode_frame, encode_frame, WireError, WireRecord};
use spinner_pregel::{Placement, TransportKind, VertexContext, WireFormat};

/// Arbitrary wire record: broadcast flag, an id drawn from one of three
/// regimes (small, straddling the 2³¹ direct-path cap, full `u64`), and a
/// payload. Ids at and above `1 << 31` are the point: the frame format must
/// carry them even though the in-memory direct path cannot.
fn record() -> impl Strategy<Value = WireRecord<u64>> {
    (any::<bool>(), 0u8..3, any::<u64>(), any::<u64>()).prop_map(
        |(broadcast, regime, raw, msg)| {
            let id = match regime {
                0 => raw % 1000,
                1 => (1u64 << 31) - 2 + raw % 5,
                _ => raw,
            };
            WireRecord { broadcast, id, msg }
        },
    )
}

fn batch() -> impl Strategy<Value = Vec<WireRecord<u64>>> {
    prop::collection::vec(record(), 0..80)
}

fn roundtrip(
    format: WireFormat,
    records: &[WireRecord<u64>],
    unicast_logical: u64,
) -> (Vec<u8>, Vec<WireRecord<u64>>, u64) {
    let frame = encode_frame(format, records, unicast_logical, Vec::new());
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    let logical =
        decode_frame::<u64>(&frame, &mut scratch, &mut out).expect("valid frame decodes");
    (frame, out, logical)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every batch — any mix of broadcast and unicast, ids across the full
    /// `u64` range — decodes back to exactly the input, in order, in both
    /// formats, with the logical-count trailer intact.
    #[test]
    fn arbitrary_batches_round_trip(records in batch(), logical in any::<u64>()) {
        for format in [WireFormat::Raw, WireFormat::Compact] {
            let (_, decoded, got_logical) = roundtrip(format, &records, logical);
            prop_assert_eq!(&decoded, &records);
            prop_assert_eq!(got_logical, logical);
        }
    }

    /// Every strict prefix of a valid frame is a typed error — truncation
    /// can never panic or decode to records.
    #[test]
    fn torn_frames_are_typed_errors(records in batch()) {
        for format in [WireFormat::Raw, WireFormat::Compact] {
            let (frame, _, _) = roundtrip(format, &records, records.len() as u64);
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            for len in 0..frame.len() {
                let err = decode_frame::<u64>(&frame[..len], &mut scratch, &mut out)
                    .expect_err("torn frame must not decode");
                prop_assert!(matches!(
                    err,
                    WireError::Truncated
                        | WireError::ChecksumMismatch
                        | WireError::Corrupt(_)
                ));
            }
        }
    }

    /// Any single flipped bit is caught: CRC-32 is linear, so a one-bit
    /// change always breaks the checksum (or the length/magic checks first).
    #[test]
    fn corrupted_frames_are_typed_errors(
        records in batch(),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        for format in [WireFormat::Raw, WireFormat::Compact] {
            let (frame, _, _) = roundtrip(format, &records, 7);
            let mut bad = frame.clone();
            let pos = (byte_pick % frame.len() as u64) as usize;
            bad[pos] ^= 1 << bit;
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            prop_assert!(decode_frame::<u64>(&bad, &mut scratch, &mut out).is_err());
        }
    }

    /// Appending garbage after the checksum is rejected, not ignored: a
    /// frame is a complete unit.
    #[test]
    fn trailing_bytes_are_rejected(records in batch(), extra in 1u8..16) {
        let (mut frame, _, _) = roundtrip(WireFormat::Compact, &records, 0);
        frame.extend(std::iter::repeat_n(0xABu8, extra as usize));
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        let err = decode_frame::<u64>(&frame, &mut scratch, &mut out)
            .expect_err("padded frame must not decode");
        prop_assert!(matches!(
            err,
            WireError::TrailingBytes | WireError::ChecksumMismatch | WireError::Corrupt(_)
        ));
    }

    /// Fixed-width payloads (f64 here) survive bit-exactly, including NaN
    /// payload bits and signed zeros, in both formats.
    #[test]
    fn float_payloads_round_trip_bit_exact(bits in prop::collection::vec(any::<u64>(), 1..40)) {
        let records: Vec<WireRecord<f64>> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| WireRecord {
                broadcast: i % 3 == 0,
                id: i as u64,
                msg: f64::from_bits(b),
            })
            .collect();
        for format in [WireFormat::Raw, WireFormat::Compact] {
            let frame = encode_frame(format, &records, 0, Vec::new());
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            decode_frame::<f64>(&frame, &mut scratch, &mut out).expect("valid frame");
            prop_assert_eq!(out.len(), records.len());
            for (got, want) in out.iter().zip(&records) {
                prop_assert_eq!(got.broadcast, want.broadcast);
                prop_assert_eq!(got.id, want.id);
                prop_assert_eq!(got.msg.to_bits(), want.msg.to_bits());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: the wire path against the direct path.
// ---------------------------------------------------------------------------

fn sbm() -> DirectedGraph {
    planted_partition(SbmConfig {
        n: 600,
        communities: 5,
        internal_degree: 7.0,
        external_degree: 1.5,
        skew: None,
        seed: 42,
    })
}

/// Min-label propagation with optional combiner and broadcast sends — any
/// fabric bug that reorders, drops, duplicates, or mis-folds messages shows
/// up as a value or history difference.
struct MinLabel {
    combine: bool,
    broadcast: bool,
}

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            if self.broadcast {
                ctx.mail.broadcast(best);
            } else {
                for &t in ctx.edges.targets {
                    ctx.mail.send(t, best);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u32, msg: &u32) -> bool {
        if self.combine {
            *acc = (*acc).min(*msg);
            true
        } else {
            false
        }
    }
}

/// One superstep's integer history row: `(superstep, computed, sent, recv,
/// active_after)` — logical counts, identical across every fabric arm.
type HistoryRow = (u64, u64, u64, u64, u64);

struct Trace {
    values: Vec<u32>,
    history: Vec<HistoryRow>,
    halt_supersteps: u64,
    wire_bytes: u64,
    wire_folded: u64,
    /// Fabric growth events per superstep, to pin the steady state.
    reallocs: Vec<u64>,
}

struct Arm {
    transport: TransportKind,
    format: WireFormat,
    fold: bool,
}

fn run_arm(g: &DirectedGraph, threads: usize, program: MinLabel, arm: &Arm) -> Trace {
    let workers = 4;
    let placement = Placement::hashed(g.num_vertices(), workers, 9);
    let cfg = EngineConfig {
        num_threads: threads,
        max_supersteps: 200,
        seed: 3,
        transport: arm.transport,
        wire_format: arm.format,
        sender_fold: arm.fold,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::from_directed(program, g, &placement, cfg, |_| u32::MAX, |_, _, _| ());
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    let totals = summary.totals();
    Trace {
        values: engine.collect_values(),
        history: summary
            .metrics
            .iter()
            .map(|s| {
                let recv: u64 = s.per_worker.iter().map(|w| w.recv_total()).sum();
                (s.superstep, s.computed_total(), s.sent_total(), recv, s.active_after)
            })
            .collect(),
        halt_supersteps: summary.supersteps,
        wire_bytes: totals.wire_bytes,
        wire_folded: totals.wire_folded,
        reallocs: summary
            .metrics
            .iter()
            .map(|s| s.per_worker.iter().map(|w| w.fabric_reallocs).sum())
            .collect(),
    }
}

/// The full `{transport} x {format} x {fold}` grid, with and without a
/// combiner, unicast and broadcast sends, serial and pooled: values and the
/// logical message history must be bit-identical to the direct path
/// everywhere, while the wire arms actually serialise (bytes > 0), Compact
/// beats Raw, and folding only ever removes records the combiner would have
/// folded on the receiver anyway.
#[test]
fn wire_arms_are_bit_identical_to_direct() {
    let g = sbm();
    let arms = [
        Arm { transport: TransportKind::Ring, format: WireFormat::Raw, fold: false },
        Arm { transport: TransportKind::Ring, format: WireFormat::Raw, fold: true },
        Arm { transport: TransportKind::Ring, format: WireFormat::Compact, fold: false },
        Arm { transport: TransportKind::Ring, format: WireFormat::Compact, fold: true },
    ];
    for &combine in &[false, true] {
        for &broadcast in &[false, true] {
            for &threads in &[1usize, 3] {
                let direct = run_arm(
                    &g,
                    threads,
                    MinLabel { combine, broadcast },
                    &Arm {
                        transport: TransportKind::Direct,
                        format: WireFormat::Compact,
                        fold: true,
                    },
                );
                assert_eq!(direct.wire_bytes, 0, "direct path never serialises");
                let mut bytes_by_format = [0u64; 2];
                for arm in &arms {
                    let t = run_arm(&g, threads, MinLabel { combine, broadcast }, arm);
                    let tag = format!(
                        "combine={combine} broadcast={broadcast} threads={threads} \
                         format={:?} fold={}",
                        arm.format, arm.fold
                    );
                    assert_eq!(t.values, direct.values, "values diverged: {tag}");
                    assert_eq!(t.history, direct.history, "history diverged: {tag}");
                    assert_eq!(t.halt_supersteps, direct.halt_supersteps, "{tag}");
                    assert!(t.wire_bytes > 0, "wire arm must serialise: {tag}");
                    if combine && arm.fold {
                        assert!(t.wire_folded > 0, "combiner fold must engage: {tag}");
                    } else {
                        assert_eq!(t.wire_folded, 0, "nothing to fold: {tag}");
                    }
                    // Steady state: once capacities warm up the wire path
                    // allocates nothing — the tail supersteps are all zero.
                    let tail: u64 = t.reallocs.iter().skip(3).sum();
                    assert_eq!(tail, 0, "fabric must stop allocating: {tag}");
                    if !arm.fold {
                        bytes_by_format[arm.format as usize] = t.wire_bytes;
                    }
                }
                assert!(
                    bytes_by_format[WireFormat::Compact as usize]
                        < bytes_by_format[WireFormat::Raw as usize],
                    "compact must beat raw: combine={combine} broadcast={broadcast}"
                );
            }
        }
    }
}
