//! Behavioural tests of the BSP engine itself: superstep semantics, graph
//! mutation at barriers, aggregator persistence, combiner behaviour, halting
//! reasons, and metrics accounting.

use spinner_graph::GraphBuilder;
use spinner_pregel::aggregate::{AggOp, AggregatorSpec};
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason};
use spinner_pregel::program::{MasterContext, Program};
use spinner_pregel::{Placement, VertexContext};

fn config() -> EngineConfig {
    EngineConfig { num_threads: 2, max_supersteps: 50, seed: 1, ..Default::default() }
}

/// Adds a reverse edge for every received id, then stops — exercises the
/// mutation path (the NeighborDiscovery pattern).
struct Reverser;

impl Program for Reverser {
    type V = u32; // number of edges seen at the end
    type E = u8;
    type M = u32; // sender id
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        match ctx.superstep {
            0 => {
                let me = ctx.vertex;
                for &t in ctx.edges.targets {
                    ctx.mail.send(t, me);
                }
            }
            1 => {
                for &sender in messages {
                    if ctx.edges.index_of(sender).is_none() {
                        ctx.add_edge(sender, 9);
                    }
                }
            }
            _ => {
                *ctx.value = ctx.edges.len() as u32;
            }
        }
        if ctx.superstep >= 2 {
            ctx.vote_to_halt();
        }
    }

    fn master(&self, ctx: &mut MasterContext<'_, ()>) {
        if ctx.superstep >= 2 {
            ctx.halt();
        }
    }
}

#[test]
fn barrier_mutations_create_reverse_edges() {
    // Path 0 -> 1 -> 2 plus reciprocal 2 <-> 1.
    let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2), (2, 1)]).build();
    let placement = Placement::modulo(3, 2);
    let mut engine =
        Engine::from_directed(Reverser, &g, &placement, config(), |_| 0, |_, _, _| 1u8);
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::Master);
    let degrees = engine.collect_values();
    // After symmetrisation: 0:{1}, 1:{0,2}, 2:{1}.
    assert_eq!(degrees, vec![1, 2, 1]);
}

/// Counts both persistent and per-superstep aggregation.
struct Accumulator {
    steps: u64,
}

impl Program for Accumulator {
    type V = ();
    type E = ();
    type M = ();
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn aggregators(&self) -> Vec<AggregatorSpec> {
        vec![
            AggregatorSpec::persistent("lifetime", AggOp::SumI64, 0),
            AggregatorSpec::regular("per-step", AggOp::SumI64, 0),
            AggregatorSpec::regular("max", AggOp::MaxI64, 0),
        ]
    }

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, _messages: &[()]) {
        ctx.agg.add_i64(0, 1);
        ctx.agg.add_i64(1, 1);
        ctx.agg.max_i64(2, ctx.vertex as i64);
    }

    fn master(&self, ctx: &mut MasterContext<'_, ()>) {
        if ctx.superstep + 1 >= self.steps {
            ctx.halt();
        }
    }
}

#[test]
fn persistent_aggregators_accumulate_regular_ones_reset() {
    let g = GraphBuilder::new(4).add_edges([(0, 1)]).build();
    let placement = Placement::modulo(4, 2);
    let mut engine = Engine::from_directed(
        Accumulator { steps: 3 },
        &g,
        &placement,
        config(),
        |_| (),
        |_, _, _| (),
    );
    engine.run();
    // 4 vertices x 3 supersteps accumulated persistently...
    assert_eq!(engine.aggregate(0).as_i64(), 12);
    // ... but the regular aggregator holds only the last superstep.
    assert_eq!(engine.aggregate(1).as_i64(), 4);
    assert_eq!(engine.aggregate(2).as_i64(), 3);
}

/// A program that never halts must hit the superstep cap.
struct Forever;

impl Program for Forever {
    type V = ();
    type E = ();
    type M = ();
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, _ctx: &mut VertexContext<'_, Self>, _messages: &[()]) {}
}

#[test]
fn superstep_cap_is_enforced() {
    let g = GraphBuilder::new(2).add_edges([(0, 1)]).build();
    let placement = Placement::modulo(2, 1);
    let cfg = EngineConfig { num_threads: 1, max_supersteps: 7, seed: 1, ..Default::default() };
    let mut engine = Engine::from_directed(Forever, &g, &placement, cfg, |_| (), |_, _, _| ());
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::MaxSupersteps);
    assert_eq!(summary.supersteps, 7);
}

/// Message metrics: local vs remote accounting must follow the placement.
struct Broadcast;

impl Program for Broadcast {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        if ctx.superstep == 0 {
            for &t in ctx.edges.targets {
                ctx.mail.send(t, 1);
            }
        } else {
            *ctx.value = messages.iter().sum();
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn local_remote_split_follows_placement() {
    // 4-cycle. Two workers split {0,1} / {2,3}: edges 0->1 and 2->3 are
    // local; 1->2 and 3->0 are remote.
    let g = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
    let placement = Placement::contiguous(4, 2);
    let mut engine =
        Engine::from_directed(Broadcast, &g, &placement, config(), |_| 0, |_, _, _| ());
    let summary = engine.run();
    let m = &summary.metrics[0];
    let local: u64 = m.per_worker.iter().map(|w| w.sent_local).sum();
    let remote: u64 = m.per_worker.iter().map(|w| w.sent_remote).sum();
    assert_eq!(local, 2);
    assert_eq!(remote, 2);
    // Everything sent is received exactly once.
    let recv: u64 = m.per_worker.iter().map(|w| w.recv_total()).sum();
    assert_eq!(recv, 4);
}

#[test]
fn single_worker_means_no_remote_traffic() {
    let g = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).build();
    let placement = Placement::modulo(4, 1);
    let mut engine =
        Engine::from_directed(Broadcast, &g, &placement, config(), |_| 0, |_, _, _| ());
    let summary = engine.run();
    assert_eq!(summary.metrics[0].sent_remote(), 0);
    assert_eq!(summary.metrics[0].sent_total(), 4);
}

/// Vote-to-halt semantics: halted vertices are skipped until a message
/// arrives; the engine stops when all are halted with no traffic.
struct Relay {
    hops: u64,
}

impl Program for Relay {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        if ctx.superstep == 0 {
            if ctx.vertex == 0 {
                ctx.mail.send(1 % ctx.num_vertices as u32, 1);
            }
        } else if let Some(&hop) = messages.first() {
            *ctx.value = hop;
            if hop < self.hops {
                let next = (ctx.vertex + 1) % ctx.num_vertices as u32;
                ctx.mail.send(next, hop + 1);
            }
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn halted_vertices_wake_on_messages_and_engine_stops_when_quiet() {
    let g = GraphBuilder::new(5).add_edges((0..5u32).map(|i| (i, (i + 1) % 5))).build();
    let placement = Placement::modulo(5, 2);
    let mut engine =
        Engine::from_directed(Relay { hops: 3 }, &g, &placement, config(), |_| 0, |_, _, _| ());
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    let values = engine.collect_values();
    assert_eq!(values, vec![0, 1, 2, 3, 0]);
    // Per-superstep active counts shrink to zero.
    assert_eq!(summary.metrics.last().unwrap().active_after, 0);
}

#[test]
fn lane_status_names_why_broadcasts_fall_back() {
    use spinner_pregel::LaneStatus;
    let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2), (2, 1)]).build();
    let placement = Placement::modulo(3, 2);

    // Fabric on, small id space, no mutations yet: the lane is open.
    let mut engine =
        Engine::from_directed(Reverser, &g, &placement, config(), |_| 0, |_, _, _| 1u8);
    assert_eq!(engine.lane_status(), LaneStatus::Open);

    // Mid-run edge additions outdate the load-time fan-out index; the run
    // finishes with the lane closed and the cause named — this used to be a
    // silent unicast fallback visible only as a throughput cliff.
    engine.run();
    assert_eq!(engine.lane_status(), LaneStatus::ClosedByMutation);

    // With the fabric disabled by config the lane never opens, and the
    // status says so rather than blaming a mutation.
    let cfg = EngineConfig { broadcast_fabric: false, ..config() };
    let engine = Engine::from_directed(Reverser, &g, &placement, cfg, |_| 0, |_, _, _| 1u8);
    assert_eq!(engine.lane_status(), LaneStatus::DisabledByConfig);
    // (LaneStatus::IdSpaceExceeded needs > 2^31 vertices — beyond what a
    // unit test can allocate; the derivation is the same precedence chain.)
}
