//! Fabric determinism: the flat mailbox + persistent pool must produce
//! bit-identical results across every `num_workers x num_threads`
//! combination, with and without a message combiner, and must stop
//! allocating on the message path once buffer capacities have warmed up.

use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::{DirectedGraph, GraphBuilder};
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason};
use spinner_pregel::program::Program;
use spinner_pregel::{Placement, VertexContext};

fn sbm() -> DirectedGraph {
    planted_partition(SbmConfig {
        n: 600,
        communities: 5,
        internal_degree: 7.0,
        external_degree: 1.5,
        skew: None,
        seed: 42,
    })
}

/// Min-label propagation (WCC-style): deterministic regardless of message
/// order, so any fabric bug that reorders, drops, or duplicates messages
/// shows up as a value or metrics difference.
struct MinLabel {
    /// Whether to fold messages through the combiner (exercises the
    /// combine-into-chain-tail path) or deliver them individually
    /// (exercises multi-message chains).
    combine: bool,
}

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            let msg = best;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, msg);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u32, msg: &u32) -> bool {
        if self.combine {
            *acc = (*acc).min(*msg);
            true
        } else {
            false
        }
    }
}

/// Everything a run exposes that must be identical across the grid:
/// final values plus the integer per-superstep history.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    values: Vec<u32>,
    history: Vec<(u64, u64, u64, u64, u64)>,
    halt_supersteps: u64,
}

fn run(g: &DirectedGraph, workers: usize, threads: usize, combine: bool) -> Trace {
    let placement = Placement::hashed(g.num_vertices(), workers, 9);
    let cfg = EngineConfig { num_threads: threads, max_supersteps: 200, seed: 3 };
    let mut engine = Engine::from_directed(
        MinLabel { combine },
        g,
        &placement,
        cfg,
        |_| u32::MAX,
        |_, _, _| (),
    );
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    Trace {
        values: engine.collect_values(),
        history: summary
            .metrics
            .iter()
            .map(|s| {
                let recv: u64 = s.per_worker.iter().map(|w| w.recv_total()).sum();
                (s.superstep, s.computed_total(), s.sent_total(), recv, s.active_after)
            })
            .collect(),
        halt_supersteps: summary.supersteps,
    }
}

#[test]
fn identical_across_worker_and_thread_grid() {
    let g = sbm();
    for &combine in &[false, true] {
        let reference = run(&g, 1, 1, combine);
        // Values must match the offline WCC answer regardless of placement.
        assert!(reference.values.iter().all(|&v| v != u32::MAX));
        for &workers in &[1usize, 2, 4, 7] {
            for &threads in &[1usize, 2, 4, 7] {
                let trace = run(&g, workers, threads, combine);
                assert_eq!(
                    trace.values, reference.values,
                    "values diverged at workers={workers} threads={threads} combine={combine}"
                );
                assert_eq!(
                    trace.history, reference.history,
                    "history diverged at workers={workers} threads={threads} combine={combine}"
                );
                assert_eq!(trace.halt_supersteps, reference.halt_supersteps);
            }
        }
    }
}

#[test]
fn combiner_reduces_delivered_messages_but_not_results() {
    let g = sbm();
    let plain = run(&g, 4, 2, false);
    let combined = run(&g, 4, 2, true);
    assert_eq!(plain.values, combined.values);
    // Same sends, fewer (combined) deliveries overall.
    let sent: u64 = plain.history.iter().map(|h| h.2).sum();
    let sent_c: u64 = combined.history.iter().map(|h| h.2).sum();
    let recv: u64 = plain.history.iter().map(|h| h.3).sum();
    assert_eq!(sent, sent_c);
    assert_eq!(recv, sent, "every sent message is counted on receipt");
}

/// Constant-volume chatter: every vertex messages all neighbours every
/// superstep until the master halts.
struct Chatter;

impl Program for Chatter {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        *ctx.value += messages.iter().sum::<u64>();
        let msg = ctx.vertex as u64;
        for &t in ctx.edges.targets {
            ctx.mail.send(t, msg);
        }
    }
    fn master(&self, ctx: &mut spinner_pregel::program::MasterContext<'_, ()>) {
        if ctx.superstep >= 12 {
            ctx.halt();
        }
    }
}

#[test]
fn steady_state_inbox_path_does_not_allocate() {
    let g = GraphBuilder::new(64)
        .add_edges((0..64u32).flat_map(|v| {
            // Ring plus two chords: constant per-superstep message volume.
            [(v, (v + 1) % 64), (v, (v + 7) % 64), (v, (v + 19) % 64)]
        }))
        .build();
    for &(workers, threads) in &[(1usize, 1usize), (4, 2), (7, 4)] {
        let placement = Placement::hashed(g.num_vertices(), workers, 5);
        let cfg = EngineConfig { num_threads: threads, max_supersteps: 100, seed: 1 };
        let mut engine =
            Engine::from_directed(Chatter, &g, &placement, cfg, |_| 0, |_, _, _| ());
        let summary = engine.run();
        assert_eq!(summary.halt, HaltReason::Master);
        // Buffers may grow during the first supersteps; after that the
        // fabric must reuse capacity — zero growth events.
        for step in summary.metrics.iter().filter(|s| s.superstep >= 3) {
            let growth: u64 = step.per_worker.iter().map(|w| w.fabric_reallocs).sum();
            assert_eq!(
                growth, 0,
                "fabric buffers grew in steady state at superstep {} (workers={workers}, threads={threads})",
                step.superstep
            );
        }
    }
}
