//! Fabric determinism: the flat mailbox + persistent pool must produce
//! bit-identical results across every `num_workers x num_threads`
//! combination, with and without a message combiner, across the unicast
//! and deduplicated-broadcast lanes, and must stop allocating on the
//! message path once buffer capacities have warmed up.

use spinner_graph::generators::{planted_partition, SbmConfig};
use spinner_graph::{DirectedGraph, GraphBuilder};
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason};
use spinner_pregel::program::Program;
use spinner_pregel::{Placement, VertexContext};

fn sbm() -> DirectedGraph {
    planted_partition(SbmConfig {
        n: 600,
        communities: 5,
        internal_degree: 7.0,
        external_degree: 1.5,
        skew: None,
        seed: 42,
    })
}

/// Min-label propagation (WCC-style): deterministic regardless of message
/// order, so any fabric bug that reorders, drops, or duplicates messages
/// shows up as a value or metrics difference.
struct MinLabel {
    /// Whether to fold messages through the combiner (exercises the
    /// combine-into-chain-tail path) or deliver them individually
    /// (exercises multi-message chains).
    combine: bool,
    /// Send through [`spinner_pregel::Mailer::broadcast`] instead of a
    /// per-edge send loop (the payload is the same for every neighbour, so
    /// the two must deliver identically).
    broadcast: bool,
}

impl Program for MinLabel {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            let msg = best;
            if self.broadcast {
                ctx.mail.broadcast(msg);
            } else {
                for &t in ctx.edges.targets {
                    ctx.mail.send(t, msg);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u32, msg: &u32) -> bool {
        if self.combine {
            *acc = (*acc).min(*msg);
            true
        } else {
            false
        }
    }
}

/// Everything a run exposes that must be identical across the grid:
/// final values plus the integer per-superstep history (logical message
/// counts — lane-independent by design).
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    values: Vec<u32>,
    history: Vec<HistoryRow>,
    halt_supersteps: u64,
    /// Physical grid records over the whole run (NOT part of the
    /// equality digest: the broadcast lane exists to shrink this).
    remote_records: u64,
}

fn run_program(
    g: &DirectedGraph,
    workers: usize,
    threads: usize,
    program: MinLabel,
    fabric: bool,
) -> Trace {
    let placement = Placement::hashed(g.num_vertices(), workers, 9);
    let cfg = EngineConfig {
        num_threads: threads,
        max_supersteps: 200,
        seed: 3,
        broadcast_fabric: fabric,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::from_directed(program, g, &placement, cfg, |_| u32::MAX, |_, _, _| ());
    let summary = engine.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    Trace {
        values: engine.collect_values(),
        history: summary
            .metrics
            .iter()
            .map(|s| {
                let recv: u64 = s.per_worker.iter().map(|w| w.recv_total()).sum();
                (s.superstep, s.computed_total(), s.sent_total(), recv, s.active_after)
            })
            .collect(),
        halt_supersteps: summary.supersteps,
        remote_records: summary.metrics.iter().map(|s| s.sent_remote_records()).sum(),
    }
}

fn run(g: &DirectedGraph, workers: usize, threads: usize, combine: bool) -> Trace {
    run_program(g, workers, threads, MinLabel { combine, broadcast: false }, true)
}

/// One superstep's integer history row: `(superstep, computed, sent, recv,
/// active_after)`.
type HistoryRow = (u64, u64, u64, u64, u64);

fn digest(t: &Trace) -> (&[u32], &[HistoryRow], u64) {
    (&t.values, &t.history, t.halt_supersteps)
}

#[test]
fn identical_across_worker_and_thread_grid() {
    let g = sbm();
    for &combine in &[false, true] {
        let reference = run(&g, 1, 1, combine);
        // Values must match the offline WCC answer regardless of placement.
        assert!(reference.values.iter().all(|&v| v != u32::MAX));
        for &workers in &[1usize, 2, 4, 7] {
            for &threads in &[1usize, 2, 4, 7] {
                let trace = run(&g, workers, threads, combine);
                assert_eq!(
                    trace.values, reference.values,
                    "values diverged at workers={workers} threads={threads} combine={combine}"
                );
                assert_eq!(
                    trace.history, reference.history,
                    "history diverged at workers={workers} threads={threads} combine={combine}"
                );
                assert_eq!(trace.halt_supersteps, reference.halt_supersteps);
            }
        }
    }
}

/// The broadcast lane against the per-edge baseline, over the full
/// combiner x workers x threads grid: values, logical message history, and
/// superstep counts must be bit-identical whether the program broadcasts
/// with the lane open, broadcasts with the lane closed (per-edge
/// fallback), or unicasts — while the open lane strictly reduces the
/// physical cross-worker records on every multi-worker shape.
#[test]
fn broadcast_lane_is_bit_identical_to_unicast() {
    let g = sbm();
    for &combine in &[false, true] {
        let reference = run_program(&g, 1, 1, MinLabel { combine, broadcast: false }, false);
        for &workers in &[1usize, 2, 4, 7] {
            for &threads in &[1usize, 2, 4] {
                let unicast = run_program(
                    &g,
                    workers,
                    threads,
                    MinLabel { combine, broadcast: false },
                    false,
                );
                let fallback = run_program(
                    &g,
                    workers,
                    threads,
                    MinLabel { combine, broadcast: true },
                    false,
                );
                let broadcast = run_program(
                    &g,
                    workers,
                    threads,
                    MinLabel { combine, broadcast: true },
                    true,
                );
                for (name, t) in
                    [("unicast", &unicast), ("fallback", &fallback), ("broadcast", &broadcast)]
                {
                    assert_eq!(
                        digest(t),
                        digest(&reference),
                        "{name} diverged at workers={workers} threads={threads} combine={combine}"
                    );
                }
                // The closed lane is record-for-record the unicast path.
                assert_eq!(fallback.remote_records, unicast.remote_records);
                if workers > 1 {
                    assert!(
                        broadcast.remote_records < unicast.remote_records,
                        "no dedup at workers={workers}: {} vs {}",
                        broadcast.remote_records,
                        unicast.remote_records
                    );
                } else {
                    assert_eq!(broadcast.remote_records, 0);
                }
            }
        }
    }
}

#[test]
fn combiner_reduces_delivered_messages_but_not_results() {
    let g = sbm();
    let plain = run(&g, 4, 2, false);
    let combined = run(&g, 4, 2, true);
    assert_eq!(plain.values, combined.values);
    // Same sends, fewer (combined) deliveries overall.
    let sent: u64 = plain.history.iter().map(|h| h.2).sum();
    let sent_c: u64 = combined.history.iter().map(|h| h.2).sum();
    let recv: u64 = plain.history.iter().map(|h| h.3).sum();
    assert_eq!(sent, sent_c);
    assert_eq!(recv, sent, "every sent message is counted on receipt");
}

/// `send_to_all` routes through the broadcast lane exactly when handed the
/// vertex's full adjacency slice; any sub-slice stays per-edge (the
/// receiver could not expand it to a partial target set).
struct SendToAll {
    /// Pass the full adjacency (lane-eligible) or skip the first neighbour.
    full: bool,
}

impl Program for SendToAll {
    type V = u32;
    type E = ();
    type M = u32;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        if ctx.superstep == 0 {
            let targets = if self.full { ctx.edges.targets } else { &ctx.edges.targets[1..] };
            let msg = ctx.vertex;
            ctx.mail.send_to_all(targets, &msg);
        } else {
            *ctx.value = messages.iter().sum();
        }
        ctx.vote_to_halt();
    }
}

#[test]
fn send_to_all_routes_full_adjacency_through_the_lane() {
    // Complete-ish graph: every vertex has neighbours on both workers.
    let g = GraphBuilder::new(8)
        .add_edges(
            (0..8u32).flat_map(|v| (0..8u32).filter(move |&t| t != v).map(move |t| (v, t))),
        )
        .build();
    let placement = Placement::modulo(8, 2);
    let cfg =
        EngineConfig { num_threads: 1, max_supersteps: 10, seed: 1, ..Default::default() };
    let records = |full: bool| {
        let mut engine = Engine::from_directed(
            SendToAll { full },
            &g,
            &placement,
            cfg.clone(),
            |_| 0,
            |_, _, _| (),
        );
        let summary = engine.run();
        let step0 = &summary.metrics[0];
        (step0.sent_remote(), step0.sent_remote_records(), engine.collect_values())
    };
    let (full_logical, full_records, full_values) = records(true);
    let (part_logical, part_records, _) = records(false);
    // Full adjacency: 8 vertices x 4 remote neighbours logical, but only
    // one record each to the single other worker.
    assert_eq!(full_logical, 32);
    assert_eq!(full_records, 8);
    // Sub-slice: plain unicast, record per message.
    assert_eq!(part_records, part_logical);
    // Each vertex hears every other vertex exactly once.
    let expect: u32 = (0..8).sum();
    assert!(full_values.iter().enumerate().all(|(v, &x)| x == expect - v as u32));
}

/// Constant-volume chatter: every vertex messages all neighbours every
/// superstep until the master halts.
struct Chatter {
    /// Announce through the broadcast lane instead of per-edge sends.
    broadcast: bool,
}

impl Program for Chatter {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();
    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        *ctx.value += messages.iter().sum::<u64>();
        let msg = ctx.vertex as u64;
        if self.broadcast {
            ctx.mail.broadcast(msg);
        } else {
            for &t in ctx.edges.targets {
                ctx.mail.send(t, msg);
            }
        }
    }
    fn master(&self, ctx: &mut spinner_pregel::program::MasterContext<'_, ()>) {
        if ctx.superstep >= 12 {
            ctx.halt();
        }
    }
}

#[test]
fn steady_state_inbox_path_does_not_allocate() {
    let g = GraphBuilder::new(64)
        .add_edges((0..64u32).flat_map(|v| {
            // Ring plus two chords: constant per-superstep message volume.
            [(v, (v + 1) % 64), (v, (v + 7) % 64), (v, (v + 19) % 64)]
        }))
        .build();
    for &broadcast in &[false, true] {
        for &(workers, threads) in &[(1usize, 1usize), (4, 2), (7, 4)] {
            let placement = Placement::hashed(g.num_vertices(), workers, 5);
            let cfg = EngineConfig {
                num_threads: threads,
                max_supersteps: 100,
                seed: 1,
                ..Default::default()
            };
            let mut engine = Engine::from_directed(
                Chatter { broadcast },
                &g,
                &placement,
                cfg,
                |_| 0,
                |_, _, _| (),
            );
            let summary = engine.run();
            assert_eq!(summary.halt, HaltReason::Master);
            // Buffers may grow during the first supersteps; after that the
            // fabric must reuse capacity — zero growth events.
            for step in summary.metrics.iter().filter(|s| s.superstep >= 3) {
                let growth: u64 = step.per_worker.iter().map(|w| w.fabric_reallocs).sum();
                assert_eq!(
                    growth, 0,
                    "fabric buffers grew in steady state at superstep {} \
                     (workers={workers}, threads={threads}, broadcast={broadcast})",
                    step.superstep
                );
            }
        }
    }
}
