//! Warm restart: an engine re-targeted at a mutated graph via
//! `warm_reset_undirected` must behave bit-identically to a cold engine
//! built over the same graph, and the reused fabric must not allocate on the
//! message path — not even in the warm run's first superstep, thanks to the
//! inbound-volume pre-reservation.

use spinner_graph::conversion::from_undirected_edges;
use spinner_graph::{DirectedGraph, GraphBuilder, UndirectedGraph};
use spinner_pregel::engine::{Engine, EngineConfig, HaltReason, RunSummary};
use spinner_pregel::program::Program;
use spinner_pregel::{Placement, VertexContext};

/// Min-label propagation over the weighted undirected view: deterministic
/// regardless of message order, so any divergence between a warm and a cold
/// engine shows up in values or metrics.
struct MinLabel;

impl Program for MinLabel {
    type V = u32;
    type E = u8;
    type M = u32;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u32]) {
        let mut best = *ctx.value;
        if ctx.superstep == 0 {
            best = ctx.vertex;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best != *ctx.value || ctx.superstep == 0 {
            *ctx.value = best;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, best);
            }
        }
        ctx.vote_to_halt();
    }
}

fn ring_graph(n: u32) -> UndirectedGraph {
    from_undirected_edges(
        &GraphBuilder::new(n)
            .add_edges((0..n).flat_map(|v| [(v, (v + 1) % n), (v, (v + 7) % n)]))
            .build(),
    )
}

/// The ring plus chords, with `extra` appended vertices each chained to the
/// existing range (a delta-grown graph).
fn grown_graph(n: u32, extra: u32) -> UndirectedGraph {
    let mut edges: Vec<(u32, u32)> =
        (0..n).flat_map(|v| [(v, (v + 1) % n), (v, (v + 7) % n)]).collect();
    for i in 0..extra {
        edges.push((n + i, (i * 13) % n));
        edges.push((n + i, (i * 29 + 5) % n));
    }
    from_undirected_edges(&GraphBuilder::new(n + extra).add_edges(edges).build())
}

fn engine_over(g: &UndirectedGraph, workers: usize, threads: usize) -> Engine<MinLabel> {
    let placement = Placement::hashed(g.num_vertices(), workers, 9);
    let cfg = EngineConfig {
        num_threads: threads,
        max_supersteps: 300,
        seed: 3,
        ..Default::default()
    };
    Engine::from_undirected(MinLabel, g, &placement, cfg, |_| u32::MAX, |_, _, w| w)
}

fn trace(summary: &RunSummary) -> Vec<(u64, u64, u64, u64)> {
    summary
        .metrics
        .iter()
        .map(|s| {
            let recv: u64 = s.per_worker.iter().map(|w| w.recv_total()).sum();
            (s.computed_total(), s.sent_total(), recv, s.active_after)
        })
        .collect()
}

#[test]
fn warm_reset_matches_cold_engine_bit_for_bit() {
    let g1 = ring_graph(200);
    let g2 = grown_graph(200, 40);
    for &(workers, threads) in &[(1usize, 1usize), (4, 2), (7, 3)] {
        // Warm path: run over g1, then reset onto g2 and run again.
        let mut warm = engine_over(&g1, workers, threads);
        assert_eq!(warm.run().halt, HaltReason::AllHalted);
        let placement2 = Placement::hashed(g2.num_vertices(), workers, 9);
        warm.warm_reset_undirected(MinLabel, &g2, &placement2, |_| u32::MAX, |_, _, w| w);
        let warm_summary = warm.run();

        // Cold path: a fresh engine over g2.
        let mut cold = engine_over(&g2, workers, threads);
        let cold_summary = cold.run();

        assert_eq!(warm_summary.halt, cold_summary.halt);
        assert_eq!(warm_summary.supersteps, cold_summary.supersteps);
        assert_eq!(
            warm.collect_values(),
            cold.collect_values(),
            "values diverged at workers={workers} threads={threads}"
        );
        assert_eq!(trace(&warm_summary), trace(&cold_summary));

        // The warm run inherits warmed-up capacities plus the inbound
        // reservation for the grown graph: zero fabric growth anywhere.
        for step in &warm_summary.metrics {
            let growth: u64 = step.per_worker.iter().map(|w| w.fabric_reallocs).sum();
            assert_eq!(
                growth, 0,
                "warm fabric grew at superstep {} (workers={workers})",
                step.superstep
            );
        }
    }
}

#[test]
fn warm_reset_supports_shrinking_vertex_sets() {
    let big = grown_graph(200, 40);
    let small = ring_graph(80);
    let mut warm = engine_over(&big, 4, 2);
    warm.run();
    let placement = Placement::hashed(small.num_vertices(), 4, 9);
    warm.warm_reset_undirected(MinLabel, &small, &placement, |_| u32::MAX, |_, _, w| w);
    let summary = warm.run();
    assert_eq!(summary.halt, HaltReason::AllHalted);
    assert_eq!(warm.num_vertices(), 80);

    let mut cold = engine_over(&small, 4, 2);
    cold.run();
    assert_eq!(warm.collect_values(), cold.collect_values());
}

/// Repeated warm resets over a growing stream of graphs: after the first
/// window the fabric never grows again.
#[test]
fn fabric_stays_warm_across_many_windows() {
    let mut engine = engine_over(&ring_graph(300), 5, 2);
    engine.run();
    for window in 1..=6u32 {
        let g = grown_graph(300, window * 15);
        let placement = Placement::hashed(g.num_vertices(), 5, 9);
        engine.warm_reset_undirected(MinLabel, &g, &placement, |_| u32::MAX, |_, _, w| w);
        let summary = engine.run();
        assert_eq!(summary.halt, HaltReason::AllHalted);
        let growth: u64 = summary
            .metrics
            .iter()
            .flat_map(|s| s.per_worker.iter().map(|w| w.fabric_reallocs))
            .sum();
        assert_eq!(growth, 0, "fabric grew during window {window}");
    }
}

/// `Engine::replace` re-hosts all per-vertex state on a new placement
/// without touching results: values survive byte-for-byte, halted flags
/// carry over (an immediately re-run engine halts without computing), and a
/// subsequent run over the migrated layout matches a cold engine built on
/// the new placement directly.
#[test]
fn replace_migrates_state_between_placements() {
    let g = grown_graph(200, 40);
    for &(workers, threads) in &[(4usize, 2usize), (7, 3)] {
        let mut engine = engine_over(&g, workers, threads);
        assert_eq!(engine.run().halt, HaltReason::AllHalted);
        let values_before = engine.collect_values();

        // Re-place by the computed component labels (Spinner's §V-F move).
        let new_placement = Placement::from_labels_balanced(&values_before, workers);
        let stats = engine.replace(&new_placement);
        assert!(stats.moved > 0, "label placement should differ from hash");
        assert_eq!(stats.total, g.num_vertices() as u64);
        assert_eq!(engine.collect_values(), values_before, "values changed in transit");

        // All vertices voted to halt before the migration; re-running the
        // engine must observe that immediately (flags survived the move).
        let idle = engine.run();
        assert_eq!(idle.halt, HaltReason::AllHalted);
        assert_eq!(idle.supersteps, 1);
        assert_eq!(idle.metrics[0].computed_total(), 0);

        // A fresh run over the migrated layout behaves exactly like a cold
        // engine built on the new placement, and the preserved fabric
        // capacities plus the reload-time reservation mean zero growth.
        engine.warm_reset_undirected(MinLabel, &g, &new_placement, |_| u32::MAX, |_, _, w| w);
        let warm_summary = engine.run();
        let cfg = EngineConfig {
            num_threads: threads,
            max_supersteps: 300,
            seed: 3,
            ..Default::default()
        };
        let mut cold = Engine::from_undirected(
            MinLabel,
            &g,
            &new_placement,
            cfg,
            |_| u32::MAX,
            |_, _, w| w,
        );
        let cold_summary = cold.run();
        assert_eq!(engine.collect_values(), cold.collect_values());
        assert_eq!(trace(&warm_summary), trace(&cold_summary));
        let growth: u64 = warm_summary
            .metrics
            .iter()
            .flat_map(|s| s.per_worker.iter().map(|w| w.fabric_reallocs))
            .sum();
        assert_eq!(growth, 0, "fabric grew after replace at workers={workers}");
    }
}

/// `DirectedGraph` import sanity: the warm API composes with the same
/// conversion the streaming driver uses.
#[test]
fn conversion_roundtrip_compiles() {
    let d: DirectedGraph = GraphBuilder::new(3).add_edges([(0, 1), (1, 2)]).build();
    let u = from_undirected_edges(&d);
    assert_eq!(u.num_vertices(), 3);
}
