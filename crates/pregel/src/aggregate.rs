//! Aggregators: global commutative/associative reductions.
//!
//! Pregel aggregators let vertices contribute values during a superstep and
//! read the merged result in the next superstep. Giraph shards each
//! aggregator across workers for scalability; in shared memory the
//! equivalent is a per-worker partial merged at the barrier in worker order
//! (which also keeps floating-point sums deterministic).
//!
//! Spinner relies on *persistent* aggregators (Giraph's
//! `registerPersistentAggregator`) for the partition loads `b(l)`: vertices
//! send load deltas on migration and the aggregator accumulates them across
//! supersteps instead of resetting.

/// The reduction operator of an aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of `i64`.
    SumI64,
    /// Sum of `f64`.
    SumF64,
    /// Element-wise sum of a fixed-length `i64` vector.
    VecSumI64,
    /// Element-wise sum of a fixed-length `f64` vector.
    VecSumF64,
    /// Maximum of `i64`.
    MaxI64,
    /// Maximum of `f64`.
    MaxF64,
    /// Logical OR.
    Or,
}

/// A (name, operator, persistence) registration, one per aggregator.
#[derive(Debug, Clone)]
pub struct AggregatorSpec {
    /// Human-readable name (for debugging/metrics).
    pub name: &'static str,
    /// Reduction operator.
    pub op: AggOp,
    /// Vector length for the `VecSum*` ops; ignored otherwise.
    pub vec_len: usize,
    /// Persistent aggregators accumulate across supersteps; regular ones
    /// reset to the identity at each superstep start.
    pub persistent: bool,
}

impl AggregatorSpec {
    /// A regular (per-superstep) scalar/vec aggregator.
    pub fn regular(name: &'static str, op: AggOp, vec_len: usize) -> Self {
        Self { name, op, vec_len, persistent: false }
    }

    /// A persistent aggregator accumulating across supersteps.
    pub fn persistent(name: &'static str, op: AggOp, vec_len: usize) -> Self {
        Self { name, op, vec_len, persistent: true }
    }

    /// The identity element of the operator.
    pub fn identity(&self) -> AggValue {
        match self.op {
            AggOp::SumI64 => AggValue::I64(0),
            AggOp::SumF64 => AggValue::F64(0.0),
            AggOp::VecSumI64 => AggValue::VecI64(vec![0; self.vec_len]),
            AggOp::VecSumF64 => AggValue::VecF64(vec![0.0; self.vec_len]),
            AggOp::MaxI64 => AggValue::I64(i64::MIN),
            AggOp::MaxF64 => AggValue::F64(f64::NEG_INFINITY),
            AggOp::Or => AggValue::Bool(false),
        }
    }

    /// Resets `acc` to the operator's identity in place, keeping any vector
    /// allocation (the per-superstep partial reset on the engine's hot path).
    /// Falls back to a fresh identity on type mismatch.
    pub fn reset_to_identity(&self, acc: &mut AggValue) {
        match (self.op, &mut *acc) {
            (AggOp::SumI64, AggValue::I64(a)) => *a = 0,
            (AggOp::SumF64, AggValue::F64(a)) => *a = 0.0,
            (AggOp::VecSumI64, AggValue::VecI64(a)) if a.len() == self.vec_len => a.fill(0),
            (AggOp::VecSumF64, AggValue::VecF64(a)) if a.len() == self.vec_len => a.fill(0.0),
            (AggOp::MaxI64, AggValue::I64(a)) => *a = i64::MIN,
            (AggOp::MaxF64, AggValue::F64(a)) => *a = f64::NEG_INFINITY,
            (AggOp::Or, AggValue::Bool(a)) => *a = false,
            _ => *acc = self.identity(),
        }
    }

    /// Merges `other` into `acc` according to the operator.
    pub fn merge(&self, acc: &mut AggValue, other: &AggValue) {
        match (self.op, acc, other) {
            (AggOp::SumI64, AggValue::I64(a), AggValue::I64(b)) => *a += b,
            (AggOp::SumF64, AggValue::F64(a), AggValue::F64(b)) => *a += b,
            (AggOp::VecSumI64, AggValue::VecI64(a), AggValue::VecI64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (AggOp::VecSumF64, AggValue::VecF64(a), AggValue::VecF64(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (AggOp::MaxI64, AggValue::I64(a), AggValue::I64(b)) => *a = (*a).max(*b),
            (AggOp::MaxF64, AggValue::F64(a), AggValue::F64(b)) => *a = a.max(*b),
            (AggOp::Or, AggValue::Bool(a), AggValue::Bool(b)) => *a |= b,
            (op, acc, other) => {
                panic!("aggregator type mismatch: op {op:?}, acc {acc:?}, other {other:?}")
            }
        }
    }
}

/// A type-erased aggregator value.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Scalar integer.
    I64(i64),
    /// Scalar float.
    F64(f64),
    /// Integer vector (element-wise ops).
    VecI64(Vec<i64>),
    /// Float vector (element-wise ops).
    VecF64(Vec<f64>),
    /// Boolean.
    Bool(bool),
}

impl AggValue {
    /// The scalar integer, panicking on type mismatch.
    pub fn as_i64(&self) -> i64 {
        match self {
            AggValue::I64(v) => *v,
            other => panic!("expected I64 aggregate, got {other:?}"),
        }
    }

    /// The scalar float, panicking on type mismatch.
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::F64(v) => *v,
            other => panic!("expected F64 aggregate, got {other:?}"),
        }
    }

    /// The integer vector, panicking on type mismatch.
    pub fn as_vec_i64(&self) -> &[i64] {
        match self {
            AggValue::VecI64(v) => v,
            other => panic!("expected VecI64 aggregate, got {other:?}"),
        }
    }

    /// The float vector, panicking on type mismatch.
    pub fn as_vec_f64(&self) -> &[f64] {
        match self {
            AggValue::VecF64(v) => v,
            other => panic!("expected VecF64 aggregate, got {other:?}"),
        }
    }

    /// The boolean, panicking on type mismatch.
    pub fn as_bool(&self) -> bool {
        match self {
            AggValue::Bool(v) => *v,
            other => panic!("expected Bool aggregate, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_identities_and_merge() {
        let spec = AggregatorSpec::regular("s", AggOp::SumI64, 0);
        let mut acc = spec.identity();
        spec.merge(&mut acc, &AggValue::I64(4));
        spec.merge(&mut acc, &AggValue::I64(-1));
        assert_eq!(acc.as_i64(), 3);
    }

    #[test]
    fn vec_sum_merges_elementwise() {
        let spec = AggregatorSpec::persistent("loads", AggOp::VecSumI64, 3);
        let mut acc = spec.identity();
        spec.merge(&mut acc, &AggValue::VecI64(vec![1, 2, 3]));
        spec.merge(&mut acc, &AggValue::VecI64(vec![10, 0, -3]));
        assert_eq!(acc.as_vec_i64(), &[11, 2, 0]);
    }

    #[test]
    fn max_and_or() {
        let mx = AggregatorSpec::regular("m", AggOp::MaxF64, 0);
        let mut acc = mx.identity();
        mx.merge(&mut acc, &AggValue::F64(1.5));
        mx.merge(&mut acc, &AggValue::F64(-2.0));
        assert_eq!(acc.as_f64(), 1.5);

        let or = AggregatorSpec::regular("o", AggOp::Or, 0);
        let mut acc = or.identity();
        assert!(!acc.as_bool());
        or.merge(&mut acc, &AggValue::Bool(true));
        or.merge(&mut acc, &AggValue::Bool(false));
        assert!(acc.as_bool());
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn mismatched_merge_panics() {
        let spec = AggregatorSpec::regular("s", AggOp::SumI64, 0);
        let mut acc = spec.identity();
        spec.merge(&mut acc, &AggValue::F64(1.0));
    }

    #[test]
    #[should_panic(expected = "expected F64")]
    fn accessor_mismatch_panics() {
        AggValue::I64(3).as_f64();
    }
}
