//! Minimal binary codec shared by the engine's wire format and the serving
//! crate's snapshot/WAL encodings: LEB128 varints, fixed-width little-endian
//! scalars, and a CRC-32 frame check. Dependency-free by construction (the
//! build environment vendors no serde).
//!
//! This module began life in `spinner-serving` (the snapshot + WAL codec);
//! it moved here so the message fabric's wire format ([`crate::wire`]) and
//! the persistence layer share one implementation. `spinner_serving::codec`
//! re-exports everything, so existing callers and the serving test suite
//! pin the behaviour unchanged.

use std::fmt;

/// Decoding failure: the byte stream is truncated or structurally invalid.
///
/// A `Corrupt` *tail* of a write-ahead log is expected after a crash and is
/// handled by truncating to the last whole record; corruption anywhere else
/// is surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptError {
    /// What the decoder was reading when the bytes ran out or mismatched.
    pub context: &'static str,
}

impl fmt::Display for CorruptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt or truncated encoding while reading {}", self.context)
    }
}

impl std::error::Error for CorruptError {}

/// Shorthand for codec results.
pub type Result<T> = std::result::Result<T, CorruptError>;

/// Append-only byte sink with varint primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer appending to `buf` — lets callers recycle a drained buffer
    /// (e.g. a transport frame) so its capacity persists across encodes.
    pub fn wrap(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Appends `value` as an LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an `f64` as its fixed 8-byte little-endian bit pattern
    /// (bit-exact round trip; varints would mangle NaN payloads and cost
    /// more for typical doubles anyway).
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a fixed 4-byte little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a fixed 8-byte little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Forward-only reader over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads an LEB128 varint appended by [`ByteWriter::put_varint`].
    pub fn varint(&mut self, context: &'static str) -> Result<u64> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *self.buf.get(self.pos).ok_or(CorruptError { context })?;
            self.pos += 1;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CorruptError { context })
    }

    /// Reads a fixed 8-byte `f64` appended by [`ByteWriter::put_f64`].
    pub fn f64(&mut self, context: &'static str) -> Result<f64> {
        let end = self.pos.checked_add(8).ok_or(CorruptError { context })?;
        let bytes = self.buf.get(self.pos..end).ok_or(CorruptError { context })?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))))
    }

    /// Reads one raw byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8> {
        let byte = *self.buf.get(self.pos).ok_or(CorruptError { context })?;
        self.pos += 1;
        Ok(byte)
    }

    /// Reads a fixed 4-byte little-endian `u32` appended by
    /// [`ByteWriter::put_u32`].
    pub fn u32(&mut self, context: &'static str) -> Result<u32> {
        let end = self.pos.checked_add(4).ok_or(CorruptError { context })?;
        let bytes = self.buf.get(self.pos..end).ok_or(CorruptError { context })?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a fixed 8-byte little-endian `u64` appended by
    /// [`ByteWriter::put_u64`].
    pub fn u64(&mut self, context: &'static str) -> Result<u64> {
        let end = self.pos.checked_add(8).ok_or(CorruptError { context })?;
        let bytes = self.buf.get(self.pos..end).ok_or(CorruptError { context })?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the frame check appended to every snapshot,
/// WAL record, and wire frame so a torn or bit-rotted tail is detected
/// before any of it is interpreted.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let values =
            [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX / 2, u64::MAX - 1, u64::MAX];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.varint("test").expect("decodes"), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        let values = [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY, f64::NAN];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.f64("test").expect("decodes").to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fixed_width_scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 12);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32("test").expect("decodes"), 0xDEAD_BEEF);
        assert_eq!(r.u64("test").expect("decodes"), u64::MAX - 7);
        assert!(r.is_exhausted());
        assert!(ByteReader::new(&bytes[..3]).u32("test").is_err());
    }

    #[test]
    fn wrap_keeps_the_buffer_capacity() {
        let mut buf = Vec::with_capacity(64);
        buf.clear();
        let cap = buf.capacity();
        let mut w = ByteWriter::wrap(buf);
        w.put_varint(5);
        let buf = w.into_bytes();
        assert_eq!(buf.capacity(), cap, "wrap/into_bytes must not reallocate");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_varint(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(r.varint("test").is_err());
        let mut r = ByteReader::new(&[0xFF; 11]);
        assert!(r.varint("test").is_err(), "over-long varint accepted");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
