//! Vertex-to-worker placement.
//!
//! Giraph assigns vertices to workers with hash partitioning by default;
//! the whole point of Spinner is to replace that mapping with the computed
//! labels (paper §V-F: "we plug a hash function that uses only the l_j field
//! of the pair"). Placement here is an explicit map so both options (and a
//! contiguous-range option for tests) are available.

use crate::types::WorkerId;
use spinner_graph::rng::mix3;
use spinner_graph::VertexId;

/// An explicit vertex → logical-worker assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    worker_of: Vec<WorkerId>,
    num_workers: usize,
}

impl Placement {
    /// Hash placement: `worker(v) = hash(v) mod L`. Mirrors Giraph's default
    /// hash partitioning (a seeded mix avoids accidental alignment with
    /// generator id ranges, like Java object hash codes do).
    pub fn hashed(num_vertices: VertexId, num_workers: usize, seed: u64) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of = (0..num_vertices)
            .map(|v| (mix3(seed, v as u64, 0x9A57) % num_workers as u64) as WorkerId)
            .collect();
        Self { worker_of, num_workers }
    }

    /// Modulo placement: `worker(v) = v mod L` (round-robin).
    pub fn modulo(num_vertices: VertexId, num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of =
            (0..num_vertices).map(|v| (v as usize % num_workers) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// Contiguous ranges: vertex ids split into `L` equal chunks. Useful in
    /// tests because community-structured generators emit contiguous
    /// communities.
    pub fn contiguous(num_vertices: VertexId, num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let n = num_vertices as u64;
        let l = num_workers as u64;
        let worker_of = (0..n).map(|v| ((v * l) / n.max(1)) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// Placement defined by partition labels (Spinner's output): vertices
    /// with the same label land on the same worker, via the paper's §V-F
    /// hash `worker(v) = l(v) mod L`.
    ///
    /// `num_workers` may exceed the number of distinct labels; labels are
    /// taken modulo `num_workers`.
    ///
    /// **Balance hazard**: when the label count `k` exceeds `num_workers`,
    /// the modulo wrap can pile several large labels onto the same worker
    /// (labels `w, w + L, w + 2L, …` all collide) while other workers host
    /// only small ones — worker loads then bear no relation to the
    /// partitioning's balance guarantee. Use [`Self::from_labels_balanced`]
    /// whenever worker balance matters; this variant is kept for the
    /// paper-faithful hash and for `k <= num_workers` setups, where the two
    /// differ only in which worker a label lands on.
    #[deprecated(
        since = "0.1.0",
        note = "the modulo wrap piles large labels onto one worker when k > num_workers; \
                use `from_labels_balanced` (or `from_label_assignment` to reuse a map)"
    )]
    pub fn from_labels(labels: &[u32], num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of =
            labels.iter().map(|&l| (l as usize % num_workers) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// Balance-aware label placement: labels are packed onto workers with a
    /// greedy longest-processing-time heuristic (largest label first, onto
    /// the currently least-loaded worker) instead of [`Self::from_labels`]'s
    /// modulo wrap, so worker loads stay within the packing bound even when
    /// `k > num_workers`. Vertices with the same label still land on the
    /// same worker. Fully deterministic: equal vertex counts break ties on
    /// the smaller label, equal worker loads on the smaller worker id.
    pub fn from_labels_balanced(labels: &[u32], num_workers: usize) -> Self {
        let assignment = Self::balanced_label_assignment(labels, num_workers);
        Self::from_label_assignment(labels, &assignment, num_workers)
    }

    /// The greedy label → worker packing behind
    /// [`Self::from_labels_balanced`], exposed so callers that must extend a
    /// placement to new vertices later (e.g. a streaming session whose
    /// deltas append vertices) can keep the map and reapply it with
    /// [`Self::from_label_assignment`]. `assignment[l]` is the worker
    /// hosting label `l`, for every label value occurring in `labels`.
    pub fn balanced_label_assignment(labels: &[u32], num_workers: usize) -> Vec<WorkerId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let k = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        let mut counts = vec![0u64; k];
        for &l in labels {
            counts[l as usize] += 1;
        }
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&l| (Reverse(counts[l]), l));
        let mut loads: BinaryHeap<Reverse<(u64, WorkerId)>> =
            (0..num_workers).map(|w| Reverse((0u64, w as WorkerId))).collect();
        let mut assignment = vec![0 as WorkerId; k];
        for l in order {
            let Reverse((load, w)) = loads.pop().expect("num_workers >= 1");
            assignment[l] = w;
            loads.push(Reverse((load + counts[l], w)));
        }
        assignment
    }

    /// Placement from an explicit per-vertex worker vector — the inverse of
    /// [`Self::as_slice`], used to rehost an engine on a placement restored
    /// from a serialized snapshot (see `spinner_serving`). Panics if any
    /// entry names a worker outside `0..num_workers`.
    pub fn explicit(worker_of: Vec<WorkerId>, num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        assert!(
            worker_of.iter().all(|&w| (w as usize) < num_workers),
            "worker id out of range"
        );
        Self { worker_of, num_workers }
    }

    /// Placement from an explicit label → worker `assignment` (as produced
    /// by [`Self::balanced_label_assignment`]). Labels beyond the
    /// assignment's range — e.g. partitions added by an elastic resize after
    /// the assignment was computed — fall back to the modulo wrap.
    pub fn from_label_assignment(
        labels: &[u32],
        assignment: &[WorkerId],
        num_workers: usize,
    ) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        debug_assert!(assignment.iter().all(|&w| (w as usize) < num_workers));
        let worker_of = labels
            .iter()
            .map(|&l| match assignment.get(l as usize) {
                Some(&w) => w,
                None => (l as usize % num_workers) as WorkerId,
            })
            .collect();
        Self { worker_of, num_workers }
    }

    /// The number of logical workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The worker hosting vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: VertexId) -> WorkerId {
        self.worker_of[v as usize]
    }

    /// The full map as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[WorkerId] {
        &self.worker_of
    }

    /// The number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.worker_of.len() as VertexId
    }

    /// Number of vertices per worker (for balance checks).
    pub fn worker_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_workers];
        for &w in &self.worker_of {
            sizes[w as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_is_roughly_balanced() {
        let p = Placement::hashed(100_000, 16, 42);
        let sizes = p.worker_sizes();
        let expect = 100_000 / 16;
        for &s in &sizes {
            assert!((s as i64 - expect as i64).unsigned_abs() < expect / 10);
        }
    }

    #[test]
    fn modulo_and_contiguous_cover_all_workers() {
        for p in [Placement::modulo(100, 7), Placement::contiguous(100, 7)] {
            let sizes = p.worker_sizes();
            assert_eq!(sizes.len(), 7);
            assert!(sizes.iter().all(|&s| s > 0));
            assert_eq!(sizes.iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn contiguous_is_monotone() {
        let p = Placement::contiguous(10, 3);
        let ws: Vec<_> = (0..10).map(|v| p.worker_of(v)).collect();
        let mut sorted = ws.clone();
        sorted.sort_unstable();
        assert_eq!(ws, sorted);
    }

    #[test]
    fn from_labels_balanced_groups_by_label() {
        let labels = vec![2, 0, 2, 1, 0];
        let p = Placement::from_labels_balanced(&labels, 3);
        assert_eq!(p.worker_of(0), p.worker_of(2));
        assert_eq!(p.worker_of(1), p.worker_of(4));
        assert_ne!(p.worker_of(0), p.worker_of(3));
    }

    /// Pinned behavior of the deprecated `from_labels`: the §V-F modulo hash
    /// `worker(v) = l(v) mod L`, including the wrap that motivates the
    /// deprecation (labels 5 and 1 collide on worker 1 with L = 4). Keep
    /// until `from_labels` is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_from_labels_wraps_modulo_workers() {
        let labels = vec![5, 1];
        let p = Placement::from_labels(&labels, 4);
        assert_eq!(p.worker_of(0), 1);
        assert_eq!(p.worker_of(1), 1);
        // Same label still lands on the same worker.
        let q = Placement::from_labels(&[2, 0, 2, 1, 0], 3);
        assert_eq!(q.worker_of(0), q.worker_of(2));
        assert_eq!(q.worker_of(1), q.worker_of(4));
    }

    /// The documented `from_labels` hazard: with k > L the modulo wrap can
    /// stack the heaviest labels on one worker (labels 0 and 2 collide mod 2
    /// for worker sizes [100, 10]); the balanced packing keeps the
    /// same-label-same-worker property while spreading the load.
    #[test]
    fn balanced_fixes_modulo_pileup() {
        // Labels 0 and 2 are huge and collide modulo 2; labels 1 and 3 tiny.
        let mut labels = Vec::new();
        labels.extend(std::iter::repeat_n(0u32, 50));
        labels.extend(std::iter::repeat_n(2u32, 50));
        labels.extend(std::iter::repeat_n(1u32, 5));
        labels.extend(std::iter::repeat_n(3u32, 5));
        let balanced = Placement::from_labels_balanced(&labels, 2);
        assert_eq!(balanced.worker_sizes(), vec![55, 55]);
        // Same label still means same worker.
        for (v, &l) in labels.iter().enumerate() {
            let first = labels.iter().position(|&x| x == l).unwrap();
            assert_eq!(balanced.worker_of(v as u32), balanced.worker_of(first as u32));
        }
    }

    #[test]
    fn balanced_assignment_is_deterministic_and_total() {
        let labels: Vec<u32> = (0..1000u32).map(|v| v % 7).collect();
        let a = Placement::balanced_label_assignment(&labels, 3);
        let b = Placement::balanced_label_assignment(&labels, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        assert!(a.iter().all(|&w| w < 3));
        // With k <= L each label gets its own worker.
        let few = Placement::balanced_label_assignment(&[0, 1, 2], 4);
        let mut sorted = few.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "labels doubled up despite spare workers: {few:?}");
    }

    #[test]
    fn assignment_fallback_covers_new_labels() {
        // Assignment knows labels 0..2; label 5 (added later) wraps.
        let assignment = vec![1 as WorkerId, 0];
        let p = Placement::from_label_assignment(&[0, 1, 5], &assignment, 3);
        assert_eq!(p.worker_of(0), 1);
        assert_eq!(p.worker_of(1), 0);
        assert_eq!(p.worker_of(2), 2);
    }

    #[test]
    fn explicit_round_trips_as_slice() {
        let p = Placement::hashed(100, 5, 9);
        let q = Placement::explicit(p.as_slice().to_vec(), 5);
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "worker id out of range")]
    fn explicit_rejects_out_of_range_workers() {
        let _ = Placement::explicit(vec![0, 3], 3);
    }

    #[test]
    fn empty_labels_make_empty_placement() {
        let p = Placement::from_labels_balanced(&[], 4);
        assert_eq!(p.num_vertices(), 0);
        assert_eq!(p.num_workers(), 4);
    }
}
