//! Vertex-to-worker placement.
//!
//! Giraph assigns vertices to workers with hash partitioning by default;
//! the whole point of Spinner is to replace that mapping with the computed
//! labels (paper §V-F: "we plug a hash function that uses only the l_j field
//! of the pair"). Placement here is an explicit map so both options (and a
//! contiguous-range option for tests) are available.

use crate::types::WorkerId;
use spinner_graph::rng::mix3;
use spinner_graph::VertexId;

/// An explicit vertex → logical-worker assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    worker_of: Vec<WorkerId>,
    num_workers: usize,
}

impl Placement {
    /// Hash placement: `worker(v) = hash(v) mod L`. Mirrors Giraph's default
    /// hash partitioning (a seeded mix avoids accidental alignment with
    /// generator id ranges, like Java object hash codes do).
    pub fn hashed(num_vertices: VertexId, num_workers: usize, seed: u64) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of = (0..num_vertices)
            .map(|v| (mix3(seed, v as u64, 0x9A57) % num_workers as u64) as WorkerId)
            .collect();
        Self { worker_of, num_workers }
    }

    /// Modulo placement: `worker(v) = v mod L` (round-robin).
    pub fn modulo(num_vertices: VertexId, num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of =
            (0..num_vertices).map(|v| (v as usize % num_workers) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// Contiguous ranges: vertex ids split into `L` equal chunks. Useful in
    /// tests because community-structured generators emit contiguous
    /// communities.
    pub fn contiguous(num_vertices: VertexId, num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let n = num_vertices as u64;
        let l = num_workers as u64;
        let worker_of = (0..n).map(|v| ((v * l) / n.max(1)) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// Placement defined by partition labels (Spinner's output): vertices
    /// with the same label land on the same worker.
    ///
    /// `num_workers` may exceed the number of distinct labels; labels are
    /// taken modulo `num_workers`.
    pub fn from_labels(labels: &[u32], num_workers: usize) -> Self {
        assert!(num_workers > 0 && num_workers <= WorkerId::MAX as usize + 1);
        let worker_of =
            labels.iter().map(|&l| (l as usize % num_workers) as WorkerId).collect();
        Self { worker_of, num_workers }
    }

    /// The number of logical workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The worker hosting vertex `v`.
    #[inline]
    pub fn worker_of(&self, v: VertexId) -> WorkerId {
        self.worker_of[v as usize]
    }

    /// The full map as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[WorkerId] {
        &self.worker_of
    }

    /// The number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.worker_of.len() as VertexId
    }

    /// Number of vertices per worker (for balance checks).
    pub fn worker_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_workers];
        for &w in &self.worker_of {
            sizes[w as usize] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_is_roughly_balanced() {
        let p = Placement::hashed(100_000, 16, 42);
        let sizes = p.worker_sizes();
        let expect = 100_000 / 16;
        for &s in &sizes {
            assert!((s as i64 - expect as i64).unsigned_abs() < expect / 10);
        }
    }

    #[test]
    fn modulo_and_contiguous_cover_all_workers() {
        for p in [Placement::modulo(100, 7), Placement::contiguous(100, 7)] {
            let sizes = p.worker_sizes();
            assert_eq!(sizes.len(), 7);
            assert!(sizes.iter().all(|&s| s > 0));
            assert_eq!(sizes.iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn contiguous_is_monotone() {
        let p = Placement::contiguous(10, 3);
        let ws: Vec<_> = (0..10).map(|v| p.worker_of(v)).collect();
        let mut sorted = ws.clone();
        sorted.sort_unstable();
        assert_eq!(ws, sorted);
    }

    #[test]
    fn from_labels_groups_by_label() {
        let labels = vec![2, 0, 2, 1, 0];
        let p = Placement::from_labels(&labels, 3);
        assert_eq!(p.worker_of(0), p.worker_of(2));
        assert_eq!(p.worker_of(1), p.worker_of(4));
        assert_ne!(p.worker_of(0), p.worker_of(3));
    }

    #[test]
    fn labels_wrap_modulo_workers() {
        let labels = vec![5, 1];
        let p = Placement::from_labels(&labels, 4);
        assert_eq!(p.worker_of(0), 1);
        assert_eq!(p.worker_of(1), 1);
    }
}
