//! PageRank: the ranking workhorse of §V-F ("PR is commonly used at the core
//! of ranking graph algorithms"). Fixed-iteration variant, as in the paper's
//! Table IV experiment (20 iterations).

use crate::engine::{Engine, EngineConfig, RunSummary};
use crate::program::{MasterContext, Program};
use crate::{Placement, VertexContext};
use spinner_graph::DirectedGraph;

/// PageRank over a directed graph with damping factor `damping`.
pub struct PageRank {
    /// Number of rank-update iterations.
    pub iterations: u64,
    /// Damping factor (0.85 in the standard formulation).
    pub damping: f64,
}

impl Program for PageRank {
    type V = f64;
    type E = ();
    type M = f64;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[f64]) {
        let n = ctx.num_vertices as f64;
        if ctx.superstep == 0 {
            *ctx.value = 1.0 / n;
        } else {
            let sum: f64 = messages.iter().sum();
            *ctx.value = (1.0 - self.damping) / n + self.damping * sum;
        }
        if ctx.superstep < self.iterations {
            // Identical share per out-neighbour — broadcast-eligible, but
            // kept per-edge: uniform low-degree graphs have ~1 neighbour
            // per destination worker, where the broadcast lane's expansion
            // costs more than its record dedup saves.
            let share = *ctx.value / ctx.edges.len().max(1) as f64;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, share);
            }
        }
    }

    fn master(&self, ctx: &mut MasterContext<'_, ()>) {
        // Iterations 1..=self.iterations update ranks; halt afterwards.
        if ctx.superstep >= self.iterations {
            ctx.halt();
        }
    }

    fn combine(&self, acc: &mut f64, msg: &f64) -> bool {
        *acc += *msg;
        true
    }
}

/// Runs PageRank and returns `(ranks, run summary)`.
pub fn run_pagerank(
    graph: &DirectedGraph,
    placement: &Placement,
    config: EngineConfig,
    iterations: u64,
) -> (Vec<f64>, RunSummary) {
    let program = PageRank { iterations, damping: 0.85 };
    let mut engine =
        Engine::from_directed(program, graph, placement, config, |_| 0.0, |_, _, _| ());
    let summary = engine.run();
    (engine.collect_values(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::GraphBuilder;

    /// A 3-cycle must converge to uniform ranks.
    #[test]
    fn uniform_on_cycle() {
        let g = GraphBuilder::new(3).add_edges([(0, 1), (1, 2), (2, 0)]).build();
        let p = Placement::hashed(3, 2, 1);
        let (ranks, summary) = run_pagerank(&g, &p, EngineConfig::default(), 30);
        assert_eq!(summary.supersteps, 31);
        for &r in &ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-9, "rank {r}");
        }
    }

    /// A "sink hub" pointed at by everyone collects the most rank.
    #[test]
    fn hub_ranks_highest() {
        let mut b = GraphBuilder::new(10);
        for v in 1..10 {
            b.add_edge(v, 0);
            b.add_edge(0, v);
        }
        let g = b.build();
        let p = Placement::hashed(10, 3, 1);
        let (ranks, _) = run_pagerank(&g, &p, EngineConfig::default(), 25);
        let hub = ranks[0];
        for &r in &ranks[1..] {
            assert!(hub > 2.0 * r, "hub {hub} vs {r}");
        }
        // Ranks must sum to ~1.
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    /// Results are identical across thread counts (determinism).
    #[test]
    fn deterministic_across_thread_counts() {
        let g = spinner_graph::generators::erdos_renyi(500, 3000, 3);
        let p = Placement::hashed(500, 8, 1);
        let cfg1 = EngineConfig { num_threads: 1, ..Default::default() };
        let cfg8 = EngineConfig { num_threads: 8, ..Default::default() };
        let (r1, _) = run_pagerank(&g, &p, cfg1, 10);
        let (r8, _) = run_pagerank(&g, &p, cfg8, 10);
        assert_eq!(r1, r8);
    }
}
