//! Weakly connected components via minimum-label propagation (§V-F:
//! "Connected Components, as a general approach to finding communities").

use crate::engine::{Engine, EngineConfig, RunSummary};
use crate::program::Program;
use crate::{Placement, VertexContext};
use spinner_graph::{UndirectedGraph, VertexId};

/// Connected components: every vertex converges to the minimum vertex id in
/// its component. Runs on the undirected view (weak connectivity).
pub struct Wcc;

impl Program for Wcc {
    type V = VertexId;
    type E = ();
    type M = VertexId;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[VertexId]) {
        let incoming = messages.iter().copied().min();
        let best = match incoming {
            Some(m) => m.min(*ctx.value),
            None => *ctx.value,
        };
        let changed = best < *ctx.value || ctx.superstep == 0;
        if best < *ctx.value {
            *ctx.value = best;
        }
        if changed {
            // Same payload to every neighbour — broadcast-eligible, but
            // deliberately per-edge: on the uniform low-degree graphs these
            // example algorithms run on, per-worker fan-out is ~1 and the
            // lane's expansion overhead outweighs its record dedup. Use
            // `ctx.mail.broadcast` for announce patterns on fan-out-heavy
            // graphs (see the Spinner program).
            let v = *ctx.value;
            for &t in ctx.edges.targets {
                ctx.mail.send(t, v);
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut VertexId, msg: &VertexId) -> bool {
        *acc = (*acc).min(*msg);
        true
    }
}

/// Runs WCC and returns `(component ids, run summary)`.
pub fn run_wcc(
    graph: &UndirectedGraph,
    placement: &Placement,
    config: EngineConfig,
) -> (Vec<VertexId>, RunSummary) {
    let mut engine =
        Engine::from_undirected(Wcc, graph, placement, config, |v| v, |_, _, _| ());
    let summary = engine.run();
    (engine.collect_values(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::conversion::from_undirected_edges;
    use spinner_graph::GraphBuilder;

    fn undirected(n: u32, edges: &[(u32, u32)]) -> UndirectedGraph {
        from_undirected_edges(&GraphBuilder::new(n).add_edges(edges.iter().copied()).build())
    }

    #[test]
    fn two_components() {
        let g = undirected(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let p = Placement::modulo(6, 2);
        let (comp, _) = run_wcc(&g, &p, EngineConfig::default());
        assert_eq!(comp, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn singleton_components() {
        let g = undirected(3, &[]);
        let p = Placement::modulo(3, 2);
        let (comp, _) = run_wcc(&g, &p, EngineConfig::default());
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn long_chain_converges() {
        let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
        let g = undirected(100, &edges);
        let p = Placement::hashed(100, 4, 3);
        let (comp, summary) = run_wcc(&g, &p, EngineConfig::default());
        assert!(comp.iter().all(|&c| c == 0));
        // Chain of length 100: min label needs ~100 supersteps to propagate.
        assert!(summary.supersteps >= 99);
    }

    #[test]
    fn matches_union_find_on_random_graph() {
        let d = spinner_graph::generators::erdos_renyi(400, 500, 11);
        let g = from_undirected_edges(&d);
        let p = Placement::hashed(400, 8, 5);
        let (comp, _) = run_wcc(&g, &p, EngineConfig::default());
        // Union-find reference.
        let mut parent: Vec<u32> = (0..400).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for (u, v) in d.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        for v in 0..400u32 {
            let expect = find(&mut parent, v);
            // comp holds min id of component; the union-find root with
            // min-root union is exactly that.
            assert_eq!(comp[v as usize], expect, "vertex {v}");
        }
    }
}
