//! Reference Pregel applications.
//!
//! The paper measures Spinner's impact on three representative analytical
//! applications run on Giraph (§V-F, Fig. 9): Single-Source Shortest Paths
//! computed through BFS, PageRank, and Weakly Connected Components. These are
//! also the engine's primary correctness tests, since their fixpoints are
//! independently checkable.

mod degree;
mod pagerank;
mod sssp;
mod wcc;

pub use degree::{run_degree_count, DegreeCount};
pub use pagerank::{run_pagerank, PageRank};
pub use sssp::{run_sssp, Sssp, UNREACHED};
pub use wcc::{run_wcc, Wcc};
