//! In-degree counting: the engine's simplest end-to-end exercise (one
//! message per edge, one aggregation), used by tests and benchmarks.

use crate::aggregate::{AggOp, AggValue, AggregatorSpec};
use crate::engine::{Engine, EngineConfig, RunSummary};
use crate::program::{MasterContext, Program};
use crate::{Placement, VertexContext};
use spinner_graph::DirectedGraph;

/// Computes every vertex's in-degree (vertex value) and the total edge count
/// (aggregator 0).
pub struct DegreeCount;

impl Program for DegreeCount {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn aggregators(&self) -> Vec<AggregatorSpec> {
        // Persistent: the count is contributed in superstep 0 only and must
        // survive the reset at the end of superstep 1.
        vec![AggregatorSpec::persistent("edges", AggOp::SumI64, 0)]
    }

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        if ctx.superstep == 0 {
            ctx.agg.add_i64(0, ctx.edges.len() as i64);
            for &t in ctx.edges.targets {
                ctx.mail.send(t, 1);
            }
        } else {
            *ctx.value = messages.iter().sum();
        }
        ctx.vote_to_halt();
    }

    fn master(&self, ctx: &mut MasterContext<'_, ()>) {
        if ctx.superstep >= 1 {
            ctx.halt();
        }
    }
}

/// Runs the degree count; returns `(in_degrees, total_edges, summary)`.
pub fn run_degree_count(
    graph: &DirectedGraph,
    placement: &Placement,
    config: EngineConfig,
) -> (Vec<u64>, u64, RunSummary) {
    let mut engine =
        Engine::from_directed(DegreeCount, graph, placement, config, |_| 0, |_, _, _| ());
    let summary = engine.run();
    let edges = match engine.aggregate(0) {
        AggValue::I64(v) => *v as u64,
        _ => unreachable!(),
    };
    (engine.collect_values(), edges, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinner_graph::GraphBuilder;

    #[test]
    fn counts_in_degrees_and_edges() {
        let g = GraphBuilder::new(4).add_edges([(0, 3), (1, 3), (2, 3), (3, 0)]).build();
        let p = Placement::modulo(4, 2);
        let (deg, edges, summary) = run_degree_count(&g, &p, EngineConfig::default());
        assert_eq!(deg, vec![1, 0, 0, 3]);
        assert_eq!(edges, 4);
        assert_eq!(summary.supersteps, 2);
    }

    #[test]
    fn message_metrics_match_edges() {
        let g = spinner_graph::generators::erdos_renyi(200, 1000, 4);
        let p = Placement::hashed(200, 4, 9);
        let (_, edges, summary) = run_degree_count(&g, &p, EngineConfig::default());
        assert_eq!(summary.metrics[0].sent_total(), edges);
        // Local + remote received must equal sent.
        let recv: u64 = summary.metrics[0].per_worker.iter().map(|w| w.recv_total()).sum();
        // Received counts are recorded during the delivery phase of the same
        // superstep in which they were sent.
        assert_eq!(recv, edges);
    }
}
