//! Single-source shortest paths via BFS (§V-F: "Shortest Paths, computed
//! through BFS, is commonly used to study the connectivity of the vertices
//! and centrality").

use crate::engine::{Engine, EngineConfig, RunSummary};
use crate::program::Program;
use crate::{Placement, VertexContext};
use spinner_graph::{DirectedGraph, VertexId};

/// Distance value of unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// BFS shortest paths from a single source over unit-weight edges.
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Program for Sssp {
    type V = u64;
    type E = ();
    type M = u64;
    type G = ();
    type WorkerState = ();

    fn init_global(&self) {}
    fn init_worker(&self, _g: &(), _w: u16) {}

    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[u64]) {
        let proposed = if ctx.superstep == 0 {
            if ctx.vertex == self.source {
                Some(0)
            } else {
                None
            }
        } else {
            messages.iter().copied().min().map(|d| d.min(*ctx.value))
        };
        if let Some(d) = proposed {
            if d < *ctx.value {
                *ctx.value = d;
                for &t in ctx.edges.targets {
                    ctx.mail.send(t, d + 1);
                }
            }
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, acc: &mut u64, msg: &u64) -> bool {
        *acc = (*acc).min(*msg);
        true
    }
}

/// Runs BFS-SSSP and returns `(distances, run summary)`. Unreached vertices
/// hold [`UNREACHED`].
pub fn run_sssp(
    graph: &DirectedGraph,
    placement: &Placement,
    config: EngineConfig,
    source: VertexId,
) -> (Vec<u64>, RunSummary) {
    let mut engine = Engine::from_directed(
        Sssp { source },
        graph,
        placement,
        config,
        |_| UNREACHED,
        |_, _, _| (),
    );
    let summary = engine.run();
    (engine.collect_values(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HaltReason;
    use spinner_graph::GraphBuilder;

    #[test]
    fn distances_on_path_graph() {
        let g = GraphBuilder::new(5).add_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build();
        let p = Placement::modulo(5, 2);
        let (dist, summary) = run_sssp(&g, &p, EngineConfig::default(), 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(summary.halt, HaltReason::AllHalted);
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = GraphBuilder::new(4).add_edges([(0, 1), (2, 3)]).build();
        let p = Placement::modulo(4, 2);
        let (dist, _) = run_sssp(&g, &p, EngineConfig::default(), 0);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], UNREACHED);
        assert_eq!(dist[3], UNREACHED);
    }

    #[test]
    fn shortcut_edges_win() {
        // 0->1->2->3 and a shortcut 0->3.
        let g = GraphBuilder::new(4).add_edges([(0, 1), (1, 2), (2, 3), (0, 3)]).build();
        let p = Placement::modulo(4, 3);
        let (dist, _) = run_sssp(&g, &p, EngineConfig::default(), 0);
        assert_eq!(dist[3], 1);
    }

    #[test]
    fn matches_sequential_bfs_on_random_graph() {
        let g = spinner_graph::generators::erdos_renyi(300, 1200, 5);
        let p = Placement::hashed(300, 4, 2);
        let (dist, _) = run_sssp(&g, &p, EngineConfig::default(), 7);
        // Sequential BFS reference.
        let mut expect = vec![UNREACHED; 300];
        let mut queue = std::collections::VecDeque::new();
        expect[7] = 0;
        queue.push_back(7u32);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if expect[v as usize] == UNREACHED {
                    expect[v as usize] = expect[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        assert_eq!(dist, expect);
    }
}
