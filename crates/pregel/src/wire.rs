//! Compact wire format for message-record batches.
//!
//! A *frame* is the unit a [`crate::transport::Transport`] moves between two
//! workers: every record one worker's outbox holds for one destination
//! worker at the end of a compute phase, encoded into a single contiguous
//! byte buffer. Two encodings share the frame envelope:
//!
//! - [`WireFormat::Raw`] — 8-byte little-endian absolute ids plus
//!   fixed-width payloads ([`WirePayload::write_fixed`]). The verification
//!   arm: trivially correct, cap-free, byte-hungry.
//! - [`WireFormat::Compact`] — destination ids as LEB128 varints with
//!   delta encoding inside sorted unicast runs, and payload-width
//!   specialized value encoding ([`WirePayload::write_compact`]: varints
//!   for unsigned integers, zigzag varints for signed, fixed bit patterns
//!   for floats).
//!
//! # Frame layout
//!
//! ```text
//! [format: u8] [section]* [0x00 terminator] [varint unicast_logical] [crc32 LE u32]
//!
//! section := varint h = (record_count << 1) | broadcast_flag   (count ≥ 1 ⇒ h ≥ 2)
//!            ids (columnar)                                     payloads (columnar)
//!   Raw     ids: count × u64 LE                                 count × write_fixed
//!   Compact unicast ids:   varint first, then (count-1) varint deltas (≥ 0)
//!           broadcast ids: count × varint absolute               count × write_compact
//! ```
//!
//! The broadcast flag rides in the **section header**, not the id top bit
//! (the in-memory lane's `BROADCAST_TAG` trick), so the wire keeps the
//! broadcast lane open for ids ≥ 2^31 — ids are full `u64` on the wire.
//! The trailing `unicast_logical` varint carries the *pre-fold* logical
//! unicast record count, so receiver-side `recv_remote` accounting is
//! invariant under sender-side combiner folding. The CRC-32 covers every
//! preceding byte and is validated before anything is interpreted, so a
//! torn or corrupted frame yields a typed [`WireError`], never a panic.
//!
//! Encoders split a Compact unicast run defensively whenever the next id is
//! smaller than the previous one, so arbitrary (unsorted) batches still
//! round-trip bit-identically; the engine sorts runs by destination before
//! encoding, which both maximizes delta compression and makes same-
//! destination records adjacent for combiner folding.

use crate::codec::{crc32, ByteReader, ByteWriter, CorruptError};
use std::fmt;

/// Which record-batch encoding frames use on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Absolute 8-byte ids + fixed-width payloads (verification arm).
    Raw = 0,
    /// Delta/varint ids + width-specialized payloads (default).
    #[default]
    Compact = 1,
}

/// Typed decode failure: the frame is torn, corrupted, or structurally
/// invalid. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Frame shorter than the minimal envelope (format byte + terminator +
    /// logical count + CRC).
    Truncated,
    /// CRC-32 over the frame body does not match the stored check value.
    ChecksumMismatch,
    /// Unknown format discriminant in the frame header.
    UnknownFormat(u8),
    /// A field inside the (checksum-valid) body failed to parse.
    Corrupt(CorruptError),
    /// Bytes remain after the logical-count trailer — the body is longer
    /// than its own structure claims.
    TrailingBytes,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame shorter than the minimal envelope"),
            Self::ChecksumMismatch => write!(f, "frame CRC-32 mismatch"),
            Self::UnknownFormat(b) => write!(f, "unknown wire format discriminant {b}"),
            Self::Corrupt(e) => write!(f, "corrupt frame body: {e}"),
            Self::TrailingBytes => write!(f, "trailing bytes after frame body"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CorruptError> for WireError {
    fn from(e: CorruptError) -> Self {
        Self::Corrupt(e)
    }
}

/// A message payload that knows how to serialize itself onto the wire.
///
/// Every engine message type ([`crate::Program::M`]) implements this.
/// `write_fixed`/`read_fixed` must round-trip bit-exactly in exactly
/// [`WIDTH`](Self::WIDTH) bytes; `write_compact`/`read_compact` may use a
/// variable-length encoding (they default to the fixed one) and must also
/// round-trip bit-exactly.
pub trait WirePayload: Sized {
    /// Encoded size in bytes under the fixed-width encoding.
    const WIDTH: usize;

    /// Appends the fixed-width encoding.
    fn write_fixed(&self, w: &mut ByteWriter);

    /// Reads a value appended by [`write_fixed`](Self::write_fixed).
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self>;

    /// Appends the width-specialized compact encoding (defaults to fixed).
    fn write_compact(&self, w: &mut ByteWriter) {
        self.write_fixed(w);
    }

    /// Reads a value appended by [`write_compact`](Self::write_compact).
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Self::read_fixed(r)
    }
}

impl WirePayload for () {
    const WIDTH: usize = 0;
    fn write_fixed(&self, _w: &mut ByteWriter) {}
    fn read_fixed(_r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(())
    }
}

impl WirePayload for u8 {
    const WIDTH: usize = 1;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        r.u8("u8 payload")
    }
}

impl WirePayload for u16 {
    const WIDTH: usize = 2;
    fn write_fixed(&self, w: &mut ByteWriter) {
        let b = self.to_le_bytes();
        w.put_u8(b[0]);
        w.put_u8(b[1]);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(u16::from_le_bytes([r.u8("u16 payload")?, r.u8("u16 payload")?]))
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        w.put_varint(u64::from(*self));
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        let v = r.varint("u16 payload")?;
        u16::try_from(v).map_err(|_| CorruptError { context: "u16 payload range" })
    }
}

impl WirePayload for u32 {
    const WIDTH: usize = 4;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        r.u32("u32 payload")
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        w.put_varint(u64::from(*self));
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        let v = r.varint("u32 payload")?;
        u32::try_from(v).map_err(|_| CorruptError { context: "u32 payload range" })
    }
}

impl WirePayload for u64 {
    const WIDTH: usize = 8;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        r.u64("u64 payload")
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        w.put_varint(*self);
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        r.varint("u64 payload")
    }
}

/// Zigzag-encodes a signed integer so small magnitudes get small varints.
fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag64`].
fn unzigzag64(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

impl WirePayload for i32 {
    const WIDTH: usize = 4;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u32(*self as u32);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(r.u32("i32 payload")? as i32)
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        w.put_varint(zigzag64(i64::from(*self)));
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        let v = unzigzag64(r.varint("i32 payload")?);
        i32::try_from(v).map_err(|_| CorruptError { context: "i32 payload range" })
    }
}

impl WirePayload for i64 {
    const WIDTH: usize = 8;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(r.u64("i64 payload")? as i64)
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        w.put_varint(zigzag64(*self));
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(unzigzag64(r.varint("i64 payload")?))
    }
}

impl WirePayload for f32 {
    const WIDTH: usize = 4;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_u32(self.to_bits());
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok(f32::from_bits(r.u32("f32 payload")?))
    }
}

impl WirePayload for f64 {
    const WIDTH: usize = 8;
    fn write_fixed(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        r.f64("f64 payload")
    }
}

impl<A: WirePayload, B: WirePayload> WirePayload for (A, B) {
    const WIDTH: usize = A::WIDTH + B::WIDTH;
    fn write_fixed(&self, w: &mut ByteWriter) {
        self.0.write_fixed(w);
        self.1.write_fixed(w);
    }
    fn read_fixed(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok((A::read_fixed(r)?, B::read_fixed(r)?))
    }
    fn write_compact(&self, w: &mut ByteWriter) {
        self.0.write_compact(w);
        self.1.write_compact(w);
    }
    fn read_compact(r: &mut ByteReader<'_>) -> crate::codec::Result<Self> {
        Ok((A::read_compact(r)?, B::read_compact(r)?))
    }
}

/// One decoded message record: destination (or sender, for broadcasts)
/// vertex id, broadcast flag, and payload.
///
/// `id` is `u64` on the wire — the wire path has no 2^31 cap, unlike the
/// in-memory lane's tag-bit scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRecord<M> {
    /// True when this record is a broadcast (id names the *sender*; the
    /// receiver expands it through its fan-out index).
    pub broadcast: bool,
    /// Destination vertex id (unicast) or global sender id (broadcast).
    pub id: u64,
    /// The message payload.
    pub msg: M,
}

/// Encodes `records` into a frame, appending to `buf` (which the caller
/// typically recycles via the transport so its capacity persists).
///
/// `unicast_logical` is the *pre-fold* count of logical unicast records the
/// batch represents; it rides in the frame trailer so receiver-side
/// accounting is invariant under sender-side folding. Records are split
/// into sections at every broadcast-flag change (and, for
/// [`WireFormat::Compact`], at any descending unicast id, so unsorted input
/// still round-trips).
pub fn encode_frame<M: WirePayload>(
    format: WireFormat,
    records: &[WireRecord<M>],
    unicast_logical: u64,
    buf: Vec<u8>,
) -> Vec<u8> {
    let mut w = ByteWriter::wrap(buf);
    w.put_u8(format as u8);
    let mut i = 0;
    while i < records.len() {
        let flag = records[i].broadcast;
        let mut j = i + 1;
        while j < records.len() && records[j].broadcast == flag {
            if format == WireFormat::Compact && !flag && records[j].id < records[j - 1].id {
                break;
            }
            j += 1;
        }
        let run = &records[i..j];
        w.put_varint(((run.len() as u64) << 1) | u64::from(flag));
        match format {
            WireFormat::Raw => {
                for r in run {
                    w.put_u64(r.id);
                }
            }
            WireFormat::Compact if !flag => {
                w.put_varint(run[0].id);
                for k in 1..run.len() {
                    w.put_varint(run[k].id - run[k - 1].id);
                }
            }
            WireFormat::Compact => {
                for r in run {
                    w.put_varint(r.id);
                }
            }
        }
        for r in run {
            match format {
                WireFormat::Raw => r.msg.write_fixed(&mut w),
                WireFormat::Compact => r.msg.write_compact(&mut w),
            }
        }
        i = j;
    }
    w.put_varint(0); // section terminator
    w.put_varint(unicast_logical);
    let crc = crc32(w.as_slice());
    w.put_u32(crc);
    w.into_bytes()
}

/// Smallest well-formed frame: format byte + section-terminator varint +
/// logical-count varint + 4-byte CRC. Transport decorators use this bound
/// to reject torn frames before structural decoding.
pub const MIN_FRAME_LEN: usize = 7;

/// Whether `bytes` ends with a valid frame CRC — the fast structural check
/// a transport reliability layer runs before accepting a frame, without
/// decoding any records. Equivalent to [`decode_frame`]'s first gate.
pub fn frame_checksum_ok(bytes: &[u8]) -> bool {
    if bytes.len() < MIN_FRAME_LEN {
        return false;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let expect = u32::from_le_bytes(tail.try_into().expect("4-byte CRC tail"));
    crc32(body) == expect
}

/// Decodes a frame produced by [`encode_frame`], appending the records to
/// `out` in their encoded order and returning the pre-fold logical unicast
/// count from the trailer.
///
/// The CRC is validated **first**, before any field is interpreted; torn,
/// truncated, or corrupted frames return a typed [`WireError`] and never
/// panic. `id_scratch` is working storage for a section's ids (kept by the
/// caller so steady-state decoding allocates nothing once warm).
pub fn decode_frame<M: WirePayload>(
    bytes: &[u8],
    id_scratch: &mut Vec<u64>,
    out: &mut Vec<WireRecord<M>>,
) -> Result<u64, WireError> {
    if bytes.len() < MIN_FRAME_LEN {
        return Err(WireError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let expect = u32::from_le_bytes(tail.try_into().expect("4-byte CRC tail"));
    if crc32(body) != expect {
        return Err(WireError::ChecksumMismatch);
    }
    let mut r = ByteReader::new(body);
    let format = match r.u8("wire format")? {
        0 => WireFormat::Raw,
        1 => WireFormat::Compact,
        b => return Err(WireError::UnknownFormat(b)),
    };
    loop {
        let h = r.varint("section header")?;
        if h == 0 {
            break;
        }
        if h == 1 {
            // count 0 with the broadcast flag set: structurally impossible
            // output of encode_frame.
            return Err(WireError::Corrupt(CorruptError { context: "empty section" }));
        }
        let broadcast = h & 1 == 1;
        let count = usize::try_from(h >> 1)
            .map_err(|_| WireError::Corrupt(CorruptError { context: "section count" }))?;
        // Every id costs at least one body byte, so a count beyond the
        // remaining bytes is corrupt; this also caps the reserve below.
        if count > r.remaining() {
            return Err(WireError::Corrupt(CorruptError { context: "section count" }));
        }
        id_scratch.clear();
        id_scratch.reserve(count);
        match format {
            WireFormat::Raw => {
                for _ in 0..count {
                    id_scratch.push(r.u64("record id")?);
                }
            }
            WireFormat::Compact if !broadcast => {
                let mut id = r.varint("record id")?;
                id_scratch.push(id);
                for _ in 1..count {
                    let delta = r.varint("record id delta")?;
                    id = id
                        .checked_add(delta)
                        .ok_or(WireError::Corrupt(CorruptError { context: "id overflow" }))?;
                    id_scratch.push(id);
                }
            }
            WireFormat::Compact => {
                for _ in 0..count {
                    id_scratch.push(r.varint("record id")?);
                }
            }
        }
        out.reserve(count);
        for &id in id_scratch.iter() {
            let msg = match format {
                WireFormat::Raw => M::read_fixed(&mut r)?,
                WireFormat::Compact => M::read_compact(&mut r)?,
            };
            out.push(WireRecord { broadcast, id, msg });
        }
    }
    let unicast_logical = r.varint("logical unicast count")?;
    if !r.is_exhausted() {
        return Err(WireError::TrailingBytes);
    }
    Ok(unicast_logical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: WirePayload + PartialEq + Copy + std::fmt::Debug>(
        format: WireFormat,
        records: &[WireRecord<M>],
        logical: u64,
    ) -> Vec<u8> {
        let frame = encode_frame(format, records, logical, Vec::new());
        let mut out = Vec::new();
        let got = decode_frame::<M>(&frame, &mut Vec::new(), &mut out).expect("decodes");
        assert_eq!(got, logical);
        assert_eq!(out, records);
        frame
    }

    #[test]
    fn empty_batch_round_trips() {
        for format in [WireFormat::Raw, WireFormat::Compact] {
            roundtrip::<u64>(format, &[], 0);
        }
    }

    #[test]
    fn mixed_batch_round_trips_in_order() {
        let records = [
            WireRecord { broadcast: false, id: 3, msg: 10u64 },
            WireRecord { broadcast: false, id: 3, msg: 11 },
            WireRecord { broadcast: false, id: 9, msg: 12 },
            WireRecord { broadcast: true, id: 4, msg: 13 },
            WireRecord { broadcast: true, id: 2, msg: 14 },
            WireRecord { broadcast: false, id: 7, msg: 15 },
        ];
        for format in [WireFormat::Raw, WireFormat::Compact] {
            roundtrip(format, &records, 4);
        }
    }

    #[test]
    fn ids_beyond_the_lane_cap_round_trip() {
        // The in-memory lane caps ids below 2^31 (the BROADCAST_TAG bit);
        // the wire carries full u64 ids in both formats.
        let records = [
            WireRecord { broadcast: true, id: 1u64 << 31, msg: 1u32 },
            WireRecord { broadcast: true, id: u64::MAX, msg: 2 },
            WireRecord { broadcast: false, id: (1 << 31) + 5, msg: 3 },
            WireRecord { broadcast: false, id: u64::MAX - 1, msg: 4 },
        ];
        for format in [WireFormat::Raw, WireFormat::Compact] {
            roundtrip(format, &records, 2);
        }
    }

    #[test]
    fn unsorted_unicast_ids_still_round_trip_compact() {
        // Descending ids force the encoder's defensive section split.
        let records: Vec<WireRecord<u32>> = (0..20)
            .map(|i| WireRecord { broadcast: false, id: (19 - i) * 7, msg: i as u32 })
            .collect();
        roundtrip(WireFormat::Compact, &records, 20);
    }

    #[test]
    fn compact_is_smaller_on_sorted_runs() {
        let records: Vec<WireRecord<u32>> = (0..100)
            .map(|i| WireRecord { broadcast: false, id: 1000 + i, msg: 1u32 })
            .collect();
        let raw = encode_frame(WireFormat::Raw, &records, 100, Vec::new());
        let compact = encode_frame(WireFormat::Compact, &records, 100, Vec::new());
        assert!(
            compact.len() * 2 < raw.len(),
            "compact {} not 2x smaller than raw {}",
            compact.len(),
            raw.len()
        );
    }

    #[test]
    fn torn_and_corrupt_frames_are_typed_errors() {
        let records = [WireRecord { broadcast: false, id: 42, msg: 7u64 }];
        let frame = encode_frame(WireFormat::Compact, &records, 1, Vec::new());
        // Every proper prefix fails (truncation tears the CRC).
        for len in 0..frame.len() {
            let err = decode_frame::<u64>(&frame[..len], &mut Vec::new(), &mut Vec::new())
                .expect_err("truncated frame accepted");
            assert!(
                matches!(err, WireError::Truncated | WireError::ChecksumMismatch),
                "unexpected error {err:?} at prefix {len}"
            );
        }
        // Every single-bit flip fails the checksum or parses as corrupt.
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 0x01;
            assert!(
                decode_frame::<u64>(&bad, &mut Vec::new(), &mut Vec::new()).is_err(),
                "bit flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag64(zigzag64(v)), v);
        }
    }

    #[test]
    fn payload_impls_round_trip_both_encodings() {
        fn check<M: WirePayload + PartialEq + std::fmt::Debug>(v: M) {
            let mut w = ByteWriter::new();
            v.write_fixed(&mut w);
            assert_eq!(w.as_slice().len(), M::WIDTH);
            v.write_compact(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(M::read_fixed(&mut r).expect("fixed"), v);
            assert_eq!(M::read_compact(&mut r).expect("compact"), v);
            assert!(r.is_exhausted());
        }
        check(());
        check(0xABu8);
        check(0xABCDu16);
        check(0xDEAD_BEEFu32);
        check(u64::MAX - 3);
        check(-5i32);
        check(i64::MIN);
        check(1.5f32);
        check(-0.0f64);
        check((42u32, 7u32));
        check((u64::MAX, -1i64));
    }
}
