//! The vertex-program and master-compute traits.

use crate::aggregate::{AggValue, AggregatorSpec};
use crate::context::VertexContext;
use crate::types::{Value, WorkerId};
use crate::wire::WirePayload;

/// A Pregel program: associated data types plus the per-vertex compute
/// function and the per-superstep master compute.
///
/// The program object itself is immutable during a run (shared by all
/// threads); mutable algorithm state lives in the vertex values (`V`), the
/// broadcast global state (`G`, mutated only by the master), and the
/// per-worker state (`W`, rebuilt each superstep).
pub trait Program: Send + Sync + Sized + 'static {
    /// Vertex value.
    type V: Value;
    /// Edge value.
    type E: Value;
    /// Message payload. The [`WirePayload`] bound gives every message a
    /// wire encoding, so any program can run behind a serialising
    /// [`crate::transport::Transport`]; scalar and pair payloads are
    /// covered by the blanket impls in [`crate::wire`].
    type M: Value + WirePayload;
    /// Global state broadcast to every vertex, mutated by [`Program::master`]
    /// between supersteps (Giraph: master compute + broadcast aggregators).
    type G: Value;
    /// Worker-local scratch state shared by all vertices on one logical
    /// worker within a superstep (Giraph: `WorkerContext`).
    type WorkerState: Send;

    /// Builds the initial global state (before superstep 0).
    fn init_global(&self) -> Self::G;

    /// Builds the worker-local state at the start of each superstep.
    fn init_worker(&self, global: &Self::G, worker: WorkerId) -> Self::WorkerState;

    /// Re-initialises last superstep's worker state in place instead of
    /// building a fresh one. Return `true` when `state` was fully reset;
    /// returning `false` (the default) makes the engine fall back to
    /// [`Program::init_worker`]. Implement this when the state owns heap
    /// buffers worth keeping warm across supersteps.
    fn reset_worker(
        &self,
        _state: &mut Self::WorkerState,
        _global: &Self::G,
        _worker: WorkerId,
    ) -> bool {
        false
    }

    /// The aggregators this program uses, addressed by index in
    /// [`VertexContext`] and [`MasterContext`].
    fn aggregators(&self) -> Vec<AggregatorSpec> {
        Vec::new()
    }

    /// The per-vertex compute function, invoked for every active vertex each
    /// superstep with the messages sent to it in the previous superstep.
    fn compute(&self, ctx: &mut VertexContext<'_, Self>, messages: &[Self::M]);

    /// Master compute, invoked once after every superstep. Reads this
    /// superstep's aggregates, may mutate the global state for the next
    /// superstep, and may halt the computation.
    fn master(&self, _ctx: &mut MasterContext<'_, Self::G>) {}

    /// Optional message combiner: fold `msg` into `acc` (both addressed to
    /// the same vertex) and return `true`, or return `false` to keep
    /// messages separate. Must be commutative and associative.
    fn combine(&self, _acc: &mut Self::M, _msg: &Self::M) -> bool {
        false
    }
}

/// Master-compute context: aggregate access, global state, and halt control.
pub struct MasterContext<'a, G> {
    /// The superstep that just finished.
    pub superstep: u64,
    /// The global state, broadcast to vertices next superstep.
    pub global: &'a mut G,
    /// Aggregated values of the superstep that just finished. Entries may be
    /// overwritten to "set" an aggregator for the next superstep (Giraph's
    /// `setAggregatedValue`).
    pub aggregates: &'a mut [AggValue],
    /// Vertices still active after this superstep.
    pub active: u64,
    /// Messages sent during this superstep.
    pub messages_sent: u64,
    pub(crate) halt: bool,
}

impl<'a, G> MasterContext<'a, G> {
    /// Reads an aggregate by registration index.
    pub fn read(&self, id: usize) -> &AggValue {
        &self.aggregates[id]
    }

    /// Stops the computation after this superstep.
    pub fn halt(&mut self) {
        self.halt = true;
    }
}
