//! Per-superstep, per-worker execution metrics.
//!
//! These counters drive the cluster simulation ([`crate::sim`]) and the
//! paper's cost/savings experiments (messages exchanged in Figs. 7–8, worker
//! balance in Table IV).

/// Counters for one logical worker within one superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Vertices whose compute function ran.
    pub computed: u64,
    /// Messages sent to vertices on the same worker.
    pub sent_local: u64,
    /// Messages sent to vertices on other workers (network traffic).
    pub sent_remote: u64,
    /// Messages received from the same worker.
    pub recv_local: u64,
    /// Messages received from other workers.
    pub recv_remote: u64,
    /// Wall-clock nanoseconds spent in the compute phase of this worker.
    pub compute_ns: u64,
    /// Delivery-phase buffer growth events: how many message-fabric buffers
    /// (staging, chain links, flat inbox) grew during this superstep's
    /// delivery. Zero in the steady state — the fabric reuses all capacity
    /// across supersteps — so a nonzero tail is an allocation regression.
    pub fabric_reallocs: u64,
}

impl WorkerMetrics {
    /// Total messages sent by this worker.
    pub fn sent_total(&self) -> u64 {
        self.sent_local + self.sent_remote
    }

    /// Total messages received by this worker.
    pub fn recv_total(&self) -> u64 {
        self.recv_local + self.recv_remote
    }

    /// Resets all counters to zero (reused across supersteps).
    pub fn reset(&mut self) {
        *self = WorkerMetrics::default();
    }
}

/// Metrics for one superstep across all logical workers.
#[derive(Debug, Clone)]
pub struct SuperstepMetrics {
    /// The superstep index.
    pub superstep: u64,
    /// Per-logical-worker counters.
    pub per_worker: Vec<WorkerMetrics>,
    /// Wall-clock nanoseconds of the whole superstep (compute + delivery +
    /// barrier work), as executed on this machine.
    pub wall_ns: u64,
    /// Vertices still active (not halted) after the superstep.
    pub active_after: u64,
}

impl SuperstepMetrics {
    /// Total messages sent in this superstep.
    pub fn sent_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_total()).sum()
    }

    /// Total remote (cross-worker) messages in this superstep: the network
    /// traffic a distributed deployment would see.
    pub fn sent_remote(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_remote).sum()
    }

    /// Total worker-local messages in this superstep — the traffic served by
    /// the fabric's locality fast path instead of the network.
    pub fn sent_local(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_local).sum()
    }

    /// Total vertices computed.
    pub fn computed_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.computed).sum()
    }
}

/// Aggregates a whole run's metrics.
#[derive(Debug, Clone, Default)]
pub struct RunTotals {
    /// Total messages sent across all supersteps.
    pub messages: u64,
    /// Total remote messages (network traffic proxy).
    pub remote_messages: u64,
    /// Total vertex computations.
    pub computed: u64,
    /// Total wall nanoseconds.
    pub wall_ns: u64,
}

impl RunTotals {
    /// Sums the given superstep metrics.
    pub fn from_supersteps(steps: &[SuperstepMetrics]) -> Self {
        let mut t = RunTotals::default();
        for s in steps {
            t.messages += s.sent_total();
            t.remote_messages += s.sent_remote();
            t.computed += s.computed_total();
            t.wall_ns += s.wall_ns;
        }
        t
    }

    /// Total worker-local messages: `messages - remote_messages`.
    pub fn local_messages(&self) -> u64 {
        self.messages - self.remote_messages
    }

    /// Share of the run's messages that stayed worker-local (1.0 for a run
    /// that exchanged no messages at all). This is the number a label-driven
    /// placement is meant to push up — remote share `1 - local_share` is the
    /// network-cost proxy.
    pub fn local_share(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.local_messages() as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm(sl: u64, sr: u64) -> WorkerMetrics {
        WorkerMetrics { computed: 1, sent_local: sl, sent_remote: sr, ..Default::default() }
    }

    #[test]
    fn totals_roll_up() {
        let s = SuperstepMetrics {
            superstep: 0,
            per_worker: vec![wm(2, 3), wm(0, 5)],
            wall_ns: 100,
            active_after: 4,
        };
        assert_eq!(s.sent_total(), 10);
        assert_eq!(s.sent_remote(), 8);
        assert_eq!(s.sent_local(), 2);
        assert_eq!(s.computed_total(), 2);
        let t = RunTotals::from_supersteps(&[s.clone(), s]);
        assert_eq!(t.messages, 20);
        assert_eq!(t.remote_messages, 16);
        assert_eq!(t.local_messages(), 4);
        assert!((t.local_share() - 0.2).abs() < 1e-12);
        assert_eq!(t.wall_ns, 200);
    }

    #[test]
    fn empty_run_is_fully_local() {
        assert_eq!(RunTotals::default().local_share(), 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut m = wm(1, 2);
        m.reset();
        assert_eq!(m, WorkerMetrics::default());
    }
}
