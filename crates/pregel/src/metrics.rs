//! Per-superstep, per-worker execution metrics.
//!
//! These counters drive the cluster simulation ([`crate::sim`]) and the
//! paper's cost/savings experiments (messages exchanged in Figs. 7–8, worker
//! balance in Table IV).

/// Counters for one logical worker within one superstep.
///
/// Message counters come in two flavours since the broadcast lane landed:
/// **logical** counts (`sent_local`/`sent_remote`/`recv_*`) tally the
/// per-destination-vertex deliveries a program's sends imply — identical
/// whether the fabric moves them as per-edge unicasts or deduplicated
/// broadcasts — while **record** counts (`sent_local_records`/
/// `sent_remote_records`) tally the physical entries pushed into the
/// fabric's buffers, the thing a distributed deployment would serialise
/// onto the wire. Under pure unicast the two coincide; under broadcast the
/// record count drops to one per `(sender, destination worker)` pair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Vertices whose compute function ran.
    pub computed: u64,
    /// Messages (logical deliveries) sent to vertices on the same worker.
    pub sent_local: u64,
    /// Messages (logical deliveries) sent to vertices on other workers.
    pub sent_remote: u64,
    /// Physical records pushed into the worker-local fast-path queue (one
    /// per broadcast regardless of local fan-out; equals `sent_local` under
    /// pure unicast).
    pub sent_local_records: u64,
    /// Physical records pushed into the cross-worker outbox grid — the
    /// network traffic a distributed deployment would see (one per
    /// `(sender, destination worker)` pair for broadcasts; equals
    /// `sent_remote` under pure unicast).
    pub sent_remote_records: u64,
    /// Messages received from the same worker.
    pub recv_local: u64,
    /// Messages received from other workers.
    pub recv_remote: u64,
    /// Wall-clock nanoseconds spent in the compute phase of this worker.
    pub compute_ns: u64,
    /// Delivery-phase buffer growth events: how many message-fabric buffers
    /// (staging, chain links, flat inbox) grew during this superstep's
    /// delivery. Zero in the steady state — the fabric reuses all capacity
    /// across supersteps — so a nonzero tail is an allocation regression.
    pub fabric_reallocs: u64,
    /// Bytes of encoded frames this worker published through the transport
    /// (zero on the direct in-memory path, which moves buffers by pointer
    /// swap and never serialises).
    pub bytes_sent: u64,
    /// Encoded frames published through the transport (at most one per
    /// destination worker per superstep).
    pub frames_sent: u64,
    /// Outbox records eliminated by sender-side combiner folding before
    /// framing (records to the same destination vertex merged through
    /// [`crate::Program::combine`] — exactly the fold the receiver's
    /// staging chains would have applied, so results are unchanged).
    pub wire_folded: u64,
    /// Frames the transport reliability layer re-published to recover a
    /// detected gap while delivering to this worker. Zero on the direct
    /// path and on any fault-free run — the delivery-overhead figure the
    /// chaos gates bound.
    pub retransmits: u64,
}

impl WorkerMetrics {
    /// Total messages sent by this worker.
    pub fn sent_total(&self) -> u64 {
        self.sent_local + self.sent_remote
    }

    /// Total messages received by this worker.
    pub fn recv_total(&self) -> u64 {
        self.recv_local + self.recv_remote
    }

    /// Resets all counters to zero (reused across supersteps).
    pub fn reset(&mut self) {
        *self = WorkerMetrics::default();
    }
}

/// Metrics for one superstep across all logical workers.
#[derive(Debug, Clone)]
pub struct SuperstepMetrics {
    /// The superstep index.
    pub superstep: u64,
    /// Per-logical-worker counters.
    pub per_worker: Vec<WorkerMetrics>,
    /// Wall-clock nanoseconds of the whole superstep (compute + delivery +
    /// barrier work), as executed on this machine.
    pub wall_ns: u64,
    /// Vertices still active (not halted) after the superstep.
    pub active_after: u64,
}

impl SuperstepMetrics {
    /// Total messages sent in this superstep.
    pub fn sent_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_total()).sum()
    }

    /// Total remote (cross-worker) messages in this superstep: the network
    /// traffic a distributed deployment would see.
    pub fn sent_remote(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_remote).sum()
    }

    /// Total worker-local messages in this superstep — the traffic served by
    /// the fabric's locality fast path instead of the network.
    pub fn sent_local(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_local).sum()
    }

    /// Total cross-worker *records* in this superstep — the entries the
    /// outbox grid physically carried (≤ [`Self::sent_remote`]; strictly
    /// fewer when the broadcast lane deduplicated fan-outs).
    pub fn sent_remote_records(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_remote_records).sum()
    }

    /// Total worker-local *records* in this superstep (one per broadcast on
    /// the fast path, one per message for unicasts).
    pub fn sent_local_records(&self) -> u64 {
        self.per_worker.iter().map(|w| w.sent_local_records).sum()
    }

    /// Total vertices computed.
    pub fn computed_total(&self) -> u64 {
        self.per_worker.iter().map(|w| w.computed).sum()
    }

    /// Total encoded frame bytes published through the transport.
    pub fn bytes_sent(&self) -> u64 {
        self.per_worker.iter().map(|w| w.bytes_sent).sum()
    }

    /// Total frames published through the transport.
    pub fn frames_sent(&self) -> u64 {
        self.per_worker.iter().map(|w| w.frames_sent).sum()
    }

    /// Total records eliminated by sender-side combiner folding.
    pub fn wire_folded(&self) -> u64 {
        self.per_worker.iter().map(|w| w.wire_folded).sum()
    }

    /// Total reliability-layer retransmissions during delivery.
    pub fn retransmits(&self) -> u64 {
        self.per_worker.iter().map(|w| w.retransmits).sum()
    }
}

/// Aggregates a whole run's metrics.
#[derive(Debug, Clone, Default)]
pub struct RunTotals {
    /// Total messages (logical deliveries) sent across all supersteps.
    pub messages: u64,
    /// Total remote messages — logical deliveries that crossed workers.
    pub remote_messages: u64,
    /// Total cross-worker records the fabric physically carried (the
    /// network-traffic proxy after broadcast dedup; equals
    /// `remote_messages` under pure unicast).
    pub remote_records: u64,
    /// Total worker-local records (fast-path queue entries).
    pub local_records: u64,
    /// Total vertex computations.
    pub computed: u64,
    /// Total wall nanoseconds.
    pub wall_ns: u64,
    /// Total encoded frame bytes moved through the transport (zero on the
    /// direct in-memory path).
    pub wire_bytes: u64,
    /// Total frames moved through the transport.
    pub wire_frames: u64,
    /// Total outbox records eliminated by sender-side combiner folding.
    pub wire_folded: u64,
    /// Total frames the transport reliability layer retransmitted (zero on
    /// the direct path and on fault-free runs).
    pub retransmits: u64,
}

impl RunTotals {
    /// Sums the given superstep metrics.
    pub fn from_supersteps(steps: &[SuperstepMetrics]) -> Self {
        let mut t = RunTotals::default();
        for s in steps {
            t.messages += s.sent_total();
            t.remote_messages += s.sent_remote();
            t.remote_records += s.sent_remote_records();
            t.local_records += s.sent_local_records();
            t.computed += s.computed_total();
            t.wall_ns += s.wall_ns;
            t.wire_bytes += s.bytes_sent();
            t.wire_frames += s.frames_sent();
            t.wire_folded += s.wire_folded();
            t.retransmits += s.retransmits();
        }
        t
    }

    /// Retransmitted frames per frame originally published (0.0 on the
    /// direct path or any fault-free run). The reliability layer's recovery
    /// cost, which the chaos experiment gates to a bounded value.
    pub fn retransmit_ratio(&self) -> f64 {
        if self.wire_frames == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.wire_frames as f64
        }
    }

    /// Encoded wire bytes per remote *logical* message — the cost figure
    /// the compact format is built to shrink (0.0 when nothing crossed a
    /// worker, or on the direct path where nothing is serialised).
    pub fn wire_bytes_per_remote_message(&self) -> f64 {
        if self.remote_messages == 0 {
            0.0
        } else {
            self.wire_bytes as f64 / self.remote_messages as f64
        }
    }

    /// Sender-side fold ratio: outbox records per record actually framed
    /// (1.0 when nothing folded — direct path, fold disabled, or no
    /// combiner; > 1.0 when the sender's combiner fold shrank the batch).
    pub fn fold_ratio(&self) -> f64 {
        let framed = self.remote_records.saturating_sub(self.wire_folded);
        if framed == 0 {
            1.0
        } else {
            self.remote_records as f64 / framed as f64
        }
    }

    /// Remote dedup ratio: logical cross-worker deliveries per physical
    /// grid record (1.0 under pure unicast or when nothing crossed a
    /// worker; grows with the fan-out the broadcast lane compressed away).
    pub fn remote_dedup(&self) -> f64 {
        if self.remote_records == 0 {
            1.0
        } else {
            self.remote_messages as f64 / self.remote_records as f64
        }
    }

    /// Total worker-local messages: `messages - remote_messages`.
    pub fn local_messages(&self) -> u64 {
        self.messages - self.remote_messages
    }

    /// Share of the run's messages that stayed worker-local (1.0 for a run
    /// that exchanged no messages at all). This is the number a label-driven
    /// placement is meant to push up — remote share `1 - local_share` is the
    /// network-cost proxy.
    pub fn local_share(&self) -> f64 {
        if self.messages == 0 {
            1.0
        } else {
            self.local_messages() as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm(sl: u64, sr: u64) -> WorkerMetrics {
        WorkerMetrics {
            computed: 1,
            sent_local: sl,
            sent_remote: sr,
            sent_local_records: sl,
            sent_remote_records: sr / 2,
            ..Default::default()
        }
    }

    #[test]
    fn totals_roll_up() {
        let s = SuperstepMetrics {
            superstep: 0,
            per_worker: vec![wm(2, 3), wm(0, 5)],
            wall_ns: 100,
            active_after: 4,
        };
        assert_eq!(s.sent_total(), 10);
        assert_eq!(s.sent_remote(), 8);
        assert_eq!(s.sent_local(), 2);
        assert_eq!(s.sent_remote_records(), 3);
        assert_eq!(s.sent_local_records(), 2);
        assert_eq!(s.computed_total(), 2);
        let t = RunTotals::from_supersteps(&[s.clone(), s]);
        assert_eq!(t.messages, 20);
        assert_eq!(t.remote_messages, 16);
        assert_eq!(t.remote_records, 6);
        assert_eq!(t.local_records, 4);
        assert_eq!(t.local_messages(), 4);
        assert!((t.local_share() - 0.2).abs() < 1e-12);
        assert!((t.remote_dedup() - 16.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.wall_ns, 200);
    }

    #[test]
    fn unicast_runs_have_neutral_dedup() {
        assert_eq!(RunTotals::default().remote_dedup(), 1.0);
        let t = RunTotals { remote_messages: 7, remote_records: 7, ..Default::default() };
        assert_eq!(t.remote_dedup(), 1.0);
    }

    #[test]
    fn empty_run_is_fully_local() {
        assert_eq!(RunTotals::default().local_share(), 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut m = wm(1, 2);
        m.reset();
        assert_eq!(m, WorkerMetrics::default());
    }

    #[test]
    fn wire_counters_roll_up() {
        let mut w = wm(0, 8);
        w.bytes_sent = 40;
        w.frames_sent = 2;
        w.wire_folded = 1;
        w.retransmits = 1;
        let s =
            SuperstepMetrics { superstep: 0, per_worker: vec![w], wall_ns: 1, active_after: 0 };
        assert_eq!(s.bytes_sent(), 40);
        assert_eq!(s.frames_sent(), 2);
        assert_eq!(s.wire_folded(), 1);
        assert_eq!(s.retransmits(), 1);
        let t = RunTotals::from_supersteps(&[s]);
        assert_eq!(t.wire_bytes, 40);
        assert_eq!(t.wire_frames, 2);
        assert_eq!(t.wire_folded, 1);
        assert_eq!(t.retransmits, 1);
        assert!((t.retransmit_ratio() - 0.5).abs() < 1e-12);
        // 8 remote logical messages, 40 bytes => 5 bytes/message.
        assert!((t.wire_bytes_per_remote_message() - 5.0).abs() < 1e-12);
        // 4 outbox records, 1 folded => 4/3.
        assert!((t.fold_ratio() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn direct_path_ratios_are_neutral() {
        let t = RunTotals::default();
        assert_eq!(t.wire_bytes_per_remote_message(), 0.0);
        assert_eq!(t.fold_ratio(), 1.0);
        assert_eq!(t.retransmit_ratio(), 0.0);
    }
}
