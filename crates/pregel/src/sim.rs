//! Cluster cost model: turns per-logical-worker counters into simulated
//! superstep times for a distributed deployment.
//!
//! The paper's application experiments (Table IV, Fig. 9) run on Hadoop
//! clusters where a synchronous superstep lasts as long as its slowest
//! worker ("with hash partitioning the workers are idling on average for 31%
//! of the superstep"). We reproduce that with an explicit linear cost model:
//! a worker's superstep time is a weighted sum of the vertices it computes
//! and the messages it sends/receives, with remote (cross-worker) messages
//! costing much more than local ones — the locality effect Spinner exploits.

use crate::metrics::SuperstepMetrics;

/// Linear per-worker cost model, in nanoseconds per unit.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost per vertex computed.
    pub per_vertex_ns: f64,
    /// Cost per message delivered within the same worker.
    pub per_local_msg_ns: f64,
    /// Cost per message crossing workers (serialisation + network + deser).
    pub per_remote_msg_ns: f64,
    /// Fixed barrier/synchronisation overhead per superstep.
    pub barrier_ns: f64,
}

impl Default for CostModel {
    /// Defaults calibrated to commodity-cluster magnitudes: remote messages
    /// are ~20x local ones, and barriers cost a few milliseconds. Only the
    /// *ratios* matter for the reproduced shapes.
    fn default() -> Self {
        Self {
            per_vertex_ns: 150.0,
            per_local_msg_ns: 25.0,
            per_remote_msg_ns: 500.0,
            barrier_ns: 5e6,
        }
    }
}

/// Simulated timings for one superstep.
#[derive(Debug, Clone)]
pub struct SimSuperstep {
    /// Simulated seconds per worker.
    pub worker_seconds: Vec<f64>,
    /// The superstep's simulated duration: barrier + slowest worker.
    pub duration: f64,
    /// Mean worker time (excluding barrier).
    pub mean_worker: f64,
    /// Fastest worker time.
    pub min_worker: f64,
    /// Slowest worker time.
    pub max_worker: f64,
}

impl CostModel {
    /// Simulates one superstep from its per-worker metrics.
    pub fn simulate_superstep(&self, m: &SuperstepMetrics) -> SimSuperstep {
        let worker_seconds: Vec<f64> = m
            .per_worker
            .iter()
            .map(|w| {
                (w.computed as f64 * self.per_vertex_ns
                    + (w.sent_local + w.recv_local) as f64 * self.per_local_msg_ns
                    + (w.sent_remote + w.recv_remote) as f64 * self.per_remote_msg_ns)
                    * 1e-9
            })
            .collect();
        let max_worker = worker_seconds.iter().copied().fold(0.0, f64::max);
        let min_worker = worker_seconds.iter().copied().fold(f64::INFINITY, f64::min);
        let mean_worker =
            worker_seconds.iter().sum::<f64>() / worker_seconds.len().max(1) as f64;
        SimSuperstep {
            duration: self.barrier_ns * 1e-9 + max_worker,
            worker_seconds,
            mean_worker,
            min_worker: if min_worker.is_finite() { min_worker } else { 0.0 },
            max_worker,
        }
    }

    /// Simulates a whole run; returns per-superstep simulations.
    pub fn simulate_run(&self, metrics: &[SuperstepMetrics]) -> Vec<SimSuperstep> {
        metrics.iter().map(|m| self.simulate_superstep(m)).collect()
    }

    /// Total simulated runtime in seconds.
    pub fn total_seconds(&self, metrics: &[SuperstepMetrics]) -> f64 {
        self.simulate_run(metrics).iter().map(|s| s.duration).sum()
    }
}

/// Mean/max/min ± stddev summary over supersteps (the format of Table IV).
#[derive(Debug, Clone)]
pub struct SuperstepTimeSummary {
    /// Mean over supersteps of the mean worker time.
    pub mean: f64,
    /// Stddev of the above.
    pub mean_sd: f64,
    /// Mean over supersteps of the slowest worker time.
    pub max: f64,
    /// Stddev of the above.
    pub max_sd: f64,
    /// Mean over supersteps of the fastest worker time.
    pub min: f64,
    /// Stddev of the above.
    pub min_sd: f64,
}

/// Builds the Table IV style summary from simulated supersteps.
pub fn summarize(sims: &[SimSuperstep]) -> SuperstepTimeSummary {
    fn mean_sd(xs: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
        let n = xs.clone().count().max(1) as f64;
        let mean = xs.clone().sum::<f64>() / n;
        let var = xs.map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var.sqrt())
    }
    let (mean, mean_sd_v) = mean_sd(sims.iter().map(|s| s.mean_worker));
    let (max, max_sd) = mean_sd(sims.iter().map(|s| s.max_worker));
    let (min, min_sd) = mean_sd(sims.iter().map(|s| s.min_worker));
    SuperstepTimeSummary { mean, mean_sd: mean_sd_v, max, max_sd, min, min_sd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::WorkerMetrics;

    fn step(workers: Vec<WorkerMetrics>) -> SuperstepMetrics {
        SuperstepMetrics { superstep: 0, per_worker: workers, wall_ns: 0, active_after: 0 }
    }

    #[test]
    fn slowest_worker_dominates() {
        let m = step(vec![
            WorkerMetrics { computed: 1_000, ..Default::default() },
            WorkerMetrics { computed: 100_000, ..Default::default() },
        ]);
        let sim = CostModel::default().simulate_superstep(&m);
        assert!(sim.max_worker > 50.0 * sim.min_worker);
        assert!(sim.duration >= sim.max_worker);
    }

    #[test]
    fn remote_messages_cost_more() {
        let local = step(vec![WorkerMetrics {
            sent_local: 10_000,
            recv_local: 10_000,
            ..Default::default()
        }]);
        let remote = step(vec![WorkerMetrics {
            sent_remote: 10_000,
            recv_remote: 10_000,
            ..Default::default()
        }]);
        let cm = CostModel::default();
        assert!(
            cm.simulate_superstep(&remote).max_worker
                > 5.0 * cm.simulate_superstep(&local).max_worker
        );
    }

    #[test]
    fn summary_statistics() {
        let cm = CostModel::default();
        let sims = cm.simulate_run(&[
            step(vec![WorkerMetrics { computed: 1000, ..Default::default() }]),
            step(vec![WorkerMetrics { computed: 3000, ..Default::default() }]),
        ]);
        let s = summarize(&sims);
        assert!(s.mean > 0.0);
        assert!(s.max >= s.mean);
        assert!(s.mean_sd > 0.0);
    }
}
