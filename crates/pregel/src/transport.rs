//! Transport abstraction for framed record batches.
//!
//! The engine's default message path hands outbox buffers to the
//! [`crate::types::OutboxGrid`] by pointer swap — zero copies, zero
//! serialization, but inherently single-process. A [`Transport`] is the
//! serialization boundary a distributed backend needs: at the end of a
//! compute phase each worker encodes one frame ([`crate::wire`]) per
//! non-empty destination and publishes it; during delivery each worker
//! takes the frames addressed to it and decodes them. The engine only ever
//! speaks this trait, so process-local and cross-process backends are
//! interchangeable:
//!
//! - [`RingTransport`] — in-memory per-channel ring buffers with frame
//!   recycling (this PR; the arm every test grid exercises).
//! - TCP/UDS — a follow-up that implements the same four methods over
//!   sockets; nothing above the trait changes.
//!
//! Frame buffers are *recycled*: a consumed frame goes back to its
//! channel's free list via [`Transport::recycle`], and [`Transport::begin`]
//! hands it out again (cleared, capacity intact) for the next superstep, so
//! steady-state supersteps allocate nothing on the wire path — the same
//! invariant [`crate::WorkerMetrics::fabric_reallocs`] pins for the direct
//! path.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How the engine moves message batches between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-memory pointer swap through the `OutboxGrid` — no serialization.
    /// The default and the bit-identity verification arm.
    #[default]
    Direct,
    /// Serialize every cross-worker batch through [`RingTransport`] using
    /// the configured [`crate::wire::WireFormat`].
    Ring,
}

/// A point-to-point frame mover between logical workers.
///
/// One channel exists per ordered `(src, dst)` worker pair; `publish` /
/// `take` on distinct channels never contend. Within a channel, frames are
/// delivered in publish order. Implementations must be `Send + Sync`: the
/// thread pool drives many workers concurrently.
pub trait Transport: Send + Sync {
    /// Hands out a cleared buffer for `src` to encode its next frame to
    /// `dst` into — recycled from a previously consumed frame when one is
    /// available, so its capacity persists across supersteps.
    fn begin(&self, src: usize, dst: usize) -> Vec<u8>;

    /// Publishes an encoded frame from `src` to `dst`.
    fn publish(&self, src: usize, dst: usize, frame: Vec<u8>);

    /// Takes the next pending frame on the `(src, dst)` channel, if any.
    fn take(&self, src: usize, dst: usize) -> Option<Vec<u8>>;

    /// Returns a consumed frame's buffer to the `(src, dst)` channel's free
    /// list for reuse by a later [`begin`](Self::begin).
    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>);
}

/// One `(src, dst)` channel: pending frames plus a free list of spent
/// buffers awaiting reuse.
#[derive(Debug, Default)]
struct Channel {
    ready: VecDeque<Vec<u8>>,
    free: Vec<Vec<u8>>,
}

/// Process-local [`Transport`]: a `W × W` grid of mutex-guarded ring
/// buffers with frame recycling.
///
/// Senders and receivers touch disjoint channels in the engine's superstep
/// protocol (worker `w` publishes row `w` during the publish phase and
/// drains column `w` during delivery, separated by a barrier), so the
/// per-channel mutexes are uncontended in practice; they exist so the type
/// is safely `Sync` without unsafe code.
#[derive(Debug)]
pub struct RingTransport {
    workers: usize,
    cells: Vec<Mutex<Channel>>,
}

impl RingTransport {
    /// A transport connecting `workers` logical workers.
    pub fn new(workers: usize) -> Self {
        let cells = (0..workers * workers).map(|_| Mutex::new(Channel::default())).collect();
        Self { workers, cells }
    }

    /// Number of workers the grid connects.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn cell(&self, src: usize, dst: usize) -> &Mutex<Channel> {
        debug_assert!(src < self.workers && dst < self.workers);
        &self.cells[src * self.workers + dst]
    }
}

impl Transport for RingTransport {
    fn begin(&self, src: usize, dst: usize) -> Vec<u8> {
        let mut buf =
            self.cell(src, dst).lock().expect("transport lock").free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    fn publish(&self, src: usize, dst: usize, frame: Vec<u8>) {
        self.cell(src, dst).lock().expect("transport lock").ready.push_back(frame);
    }

    fn take(&self, src: usize, dst: usize) -> Option<Vec<u8>> {
        self.cell(src, dst).lock().expect("transport lock").ready.pop_front()
    }

    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>) {
        self.cell(src, dst).lock().expect("transport lock").free.push(frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_publish_order_per_channel() {
        let t = RingTransport::new(3);
        t.publish(0, 2, vec![1]);
        t.publish(0, 2, vec![2]);
        t.publish(1, 2, vec![9]);
        assert_eq!(t.take(0, 2), Some(vec![1]));
        assert_eq!(t.take(0, 2), Some(vec![2]));
        assert_eq!(t.take(0, 2), None);
        assert_eq!(t.take(1, 2), Some(vec![9]));
    }

    #[test]
    fn recycled_buffers_keep_their_capacity() {
        let t = RingTransport::new(2);
        let mut frame = t.begin(0, 1);
        frame.extend_from_slice(&[0u8; 128]);
        let cap = frame.capacity();
        t.publish(0, 1, frame);
        let frame = t.take(0, 1).expect("published");
        t.recycle(0, 1, frame);
        let reused = t.begin(0, 1);
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "begin must reuse the recycled buffer");
    }

    #[test]
    fn channels_are_independent() {
        let t = RingTransport::new(2);
        t.publish(0, 1, vec![5]);
        assert_eq!(t.take(1, 0), None, "reverse channel must be empty");
        assert_eq!(t.take(0, 0), None);
        assert_eq!(t.take(0, 1), Some(vec![5]));
    }
}
