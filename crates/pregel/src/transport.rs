//! Transport abstraction for framed record batches.
//!
//! The engine's default message path hands outbox buffers to the
//! [`crate::types::OutboxGrid`] by pointer swap — zero copies, zero
//! serialization, but inherently single-process. A [`Transport`] is the
//! serialization boundary a distributed backend needs: at the end of a
//! compute phase each worker encodes one frame ([`crate::wire`]) per
//! non-empty destination and publishes it; during delivery each worker
//! takes the frames addressed to it and decodes them. The engine only ever
//! speaks this trait, so process-local and cross-process backends are
//! interchangeable:
//!
//! - [`RingTransport`] — in-memory per-channel ring buffers with frame
//!   recycling (the arm every test grid exercises).
//! - [`crate::fault::FaultyTransport`] — a chaos wrapper that injects
//!   scripted frame-level faults into any inner transport.
//! - [`crate::reliable::ReliableTransport`] — the seq/ack/retransmit
//!   reliability layer that masks those faults (and a lossy socket's).
//! - TCP/UDS — a follow-up that implements the same methods over sockets;
//!   nothing above the trait changes, and the reliability layer already
//!   handles loss, duplication, reordering, and corruption for it.
//!
//! Frame buffers are *recycled*: a consumed frame goes back to its
//! channel's free list via [`Transport::recycle`], and [`Transport::begin`]
//! hands it out again (cleared, capacity intact) for the next superstep, so
//! steady-state supersteps allocate nothing on the wire path — the same
//! invariant [`crate::WorkerMetrics::fabric_reallocs`] pins for the direct
//! path.
//!
//! Faults are *typed*, never panics: `publish`/`take` return a
//! [`TransportError`] when a peer panicked mid-superstep (mutex poisoning),
//! a frame could not be recovered within the configured retry budget, or a
//! stalled sender ran the receiver past its deadline. The engine surfaces
//! the first such error as [`crate::engine::HaltReason::TransportFailed`],
//! which the streaming session escalates into the same reseed-and-
//! reconverge path a `StreamEvent::WorkerLoss` takes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// How the engine moves message batches between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-memory pointer swap through the `OutboxGrid` — no serialization.
    /// The default and the bit-identity verification arm.
    #[default]
    Direct,
    /// Serialize every cross-worker batch through [`RingTransport`] using
    /// the configured [`crate::wire::WireFormat`] (wrapped by the
    /// reliability layer unless [`RetryConfig::reliable`] is off).
    Ring,
}

/// Typed failure of a transport operation. `Copy` and lane-addressed so the
/// engine can carry it across threads and the recovery path can name the
/// peer it should presume lost ([`TransportError::sender`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// A peer worker panicked while holding the `(src, dst)` channel lock.
    /// The queue state itself is recovered (frames are plain bytes), but
    /// the superstep the peer abandoned cannot complete.
    PeerPanicked {
        /// Sending worker of the poisoned channel.
        src: usize,
        /// Receiving worker of the poisoned channel.
        dst: usize,
    },
    /// The receiver's blocking `take` ran past
    /// [`RetryConfig::take_deadline`] with a frame still outstanding — a
    /// stalled sender, surfaced as a timeout instead of a wedged barrier.
    Timeout {
        /// Sending worker of the stalled lane.
        src: usize,
        /// Receiving worker of the stalled lane.
        dst: usize,
    },
    /// The lane exhausted its retransmit budget
    /// ([`RetryConfig::max_retransmits`]) and is [`LaneHealth::Dead`].
    LaneDead {
        /// Sending worker of the dead lane.
        src: usize,
        /// Receiving worker of the dead lane.
        dst: usize,
    },
    /// A frame failed structural decoding after passing transport-level
    /// checks (only reachable without the reliability layer, whose CRC
    /// reject → NACK path retransmits instead).
    Corrupt {
        /// Sending worker of the corrupt frame.
        src: usize,
        /// Receiving worker of the corrupt frame.
        dst: usize,
    },
}

impl TransportError {
    /// The `(src, dst)` lane the failure occurred on.
    pub fn lane(&self) -> (usize, usize) {
        match *self {
            Self::PeerPanicked { src, dst }
            | Self::Timeout { src, dst }
            | Self::LaneDead { src, dst }
            | Self::Corrupt { src, dst } => (src, dst),
        }
    }

    /// The worker the receiver should presume lost: the sender whose
    /// frames stopped arriving (or arrived corrupt) — the input the
    /// `WorkerLoss` escalation reseeds.
    pub fn sender(&self) -> usize {
        self.lane().0
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (src, dst) = self.lane();
        match self {
            Self::PeerPanicked { .. } => {
                write!(f, "peer panicked on transport lane {src} -> {dst}")
            }
            Self::Timeout { .. } => {
                write!(f, "take deadline exceeded on transport lane {src} -> {dst}")
            }
            Self::LaneDead { .. } => {
                write!(f, "retransmit budget exhausted on transport lane {src} -> {dst}")
            }
            Self::Corrupt { .. } => {
                write!(f, "unrecoverable corrupt frame on transport lane {src} -> {dst}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Health of one ordered `(src, dst)` lane, as tracked by the reliability
/// layer: `Healthy` until the first recovery action, `Degraded` (sticky for
/// the run — it means "this lane needed recovery", not "currently failing")
/// once a retransmit/NACK/reorder fired, `Dead` once the retry budget or
/// deadline was exhausted. A `Dead` lane fails every subsequent `take` with
/// a typed [`TransportError`] until the transport is [`Transport::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum LaneHealth {
    /// No anomaly observed on the lane.
    #[default]
    Healthy,
    /// The lane recovered from at least one fault this run.
    Degraded,
    /// The lane exhausted its recovery budget; a replacement worker (and a
    /// transport reset) is required.
    Dead,
}

/// Retry/timeout budgets for the transport reliability layer
/// ([`crate::reliable::ReliableTransport`]), configured through
/// `EngineConfig::transport_retry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Wrap serialising transports in the seq/ack/retransmit reliability
    /// layer. Default `true`; `false` is the bare-fabric verification arm
    /// (faults then surface as typed decode errors instead of being
    /// masked).
    pub reliable: bool,
    /// Consecutive recovery attempts per outstanding frame before the lane
    /// is declared [`LaneHealth::Dead`].
    pub max_retransmits: u32,
    /// Base of the exponential backoff between retransmit attempts
    /// (attempt `n` sleeps `backoff_base << n`). `Duration::ZERO` disables
    /// the sleep (useful in tests); results never depend on it.
    pub backoff_base: Duration,
    /// Hard wall-clock deadline for one blocking `take`: a stalled sender
    /// yields [`TransportError::Timeout`] instead of wedging the superstep
    /// barrier. Default is generous — it only fires when the retransmit
    /// budget alone cannot bound the wait.
    pub take_deadline: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            reliable: true,
            max_retransmits: 6,
            backoff_base: Duration::from_micros(20),
            take_deadline: Duration::from_secs(5),
        }
    }
}

/// Cumulative receive-side recovery counters, per receiving worker (see
/// [`Transport::recv_stats`]). Monotonic — callers diff snapshots to
/// attribute activity to a delivery phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames re-published from the retransmit buffer to fill a gap.
    pub retransmits: u64,
    /// Frames rejected by the reliability layer's CRC/structure check
    /// (each reject is an implicit NACK: the gap triggers a retransmit).
    pub nacks: u64,
    /// Duplicate frames discarded by the sequence window.
    pub duplicates_dropped: u64,
    /// Frames that arrived ahead of sequence and were held in the reorder
    /// window.
    pub reordered: u64,
}

impl TransportStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &TransportStats) {
        self.retransmits += other.retransmits;
        self.nacks += other.nacks;
        self.duplicates_dropped += other.duplicates_dropped;
        self.reordered += other.reordered;
    }

    /// Total recovery actions — the "extra work" count the delivery-
    /// overhead gates bound.
    pub fn recovery_actions(&self) -> u64 {
        self.retransmits + self.nacks + self.duplicates_dropped + self.reordered
    }
}

/// A point-to-point frame mover between logical workers.
///
/// One channel exists per ordered `(src, dst)` worker pair; `publish` /
/// `take` on distinct channels never contend. Within a channel, frames are
/// delivered in publish order (the reliability layer restores that order
/// when an inner transport violates it). Implementations must be
/// `Send + Sync`: the thread pool drives many workers concurrently.
pub trait Transport: Send + Sync {
    /// Hands out a cleared buffer for `src` to encode its next frame to
    /// `dst` into — recycled from a previously consumed frame when one is
    /// available, so its capacity persists across supersteps.
    fn begin(&self, src: usize, dst: usize) -> Vec<u8>;

    /// Publishes an encoded frame from `src` to `dst`. Fails only on
    /// lane-level conditions ([`TransportError::PeerPanicked`], a dead
    /// lane); an in-flight fault is the receiver's problem to recover.
    fn publish(&self, src: usize, dst: usize, frame: Vec<u8>) -> Result<(), TransportError>;

    /// Takes the next pending frame on the `(src, dst)` channel.
    /// `Ok(None)` means the channel is drained *and consistent* (under the
    /// reliability layer: every published frame was delivered). A typed
    /// error reports an unrecoverable lane — the caller must not expect
    /// further frames from `src` this run.
    fn take(&self, src: usize, dst: usize) -> Result<Option<Vec<u8>>, TransportError>;

    /// Returns a consumed frame's buffer to the `(src, dst)` channel's free
    /// list for reuse by a later [`begin`](Self::begin).
    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>);

    /// Clears in-flight state — pending frames, sequence windows, lane
    /// health — while *keeping* every pooled buffer (capacities persist, so
    /// a reset does not reintroduce steady-state allocations). Called by
    /// the engine at the start of every run; after an aborted run this is
    /// what models the replacement worker's fresh connections. Default:
    /// nothing to clear.
    fn reset(&self) {}

    /// Cumulative recovery counters for frames addressed *to* `dst`
    /// (summed over all senders). Default: all zero (perfect transports
    /// never recover anything).
    fn recv_stats(&self, _dst: usize) -> TransportStats {
        TransportStats::default()
    }

    /// Health of the ordered `(src, dst)` lane. Default: always healthy.
    fn lane_health(&self, _src: usize, _dst: usize) -> LaneHealth {
        LaneHealth::Healthy
    }

    /// `(degraded, dead)` lane tallies across the whole grid. Default:
    /// `(0, 0)`.
    fn health_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// `(injected, remaining)` scripted-fault tallies when a chaos layer is
    /// stacked ([`crate::fault::FaultyTransport`]); `(0, 0)` otherwise.
    fn chaos_counts(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn begin(&self, src: usize, dst: usize) -> Vec<u8> {
        (**self).begin(src, dst)
    }
    fn publish(&self, src: usize, dst: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        (**self).publish(src, dst, frame)
    }
    fn take(&self, src: usize, dst: usize) -> Result<Option<Vec<u8>>, TransportError> {
        (**self).take(src, dst)
    }
    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>) {
        (**self).recycle(src, dst, frame)
    }
    fn reset(&self) {
        (**self).reset()
    }
    fn recv_stats(&self, dst: usize) -> TransportStats {
        (**self).recv_stats(dst)
    }
    fn lane_health(&self, src: usize, dst: usize) -> LaneHealth {
        (**self).lane_health(src, dst)
    }
    fn health_counts(&self) -> (u64, u64) {
        (**self).health_counts()
    }
    fn chaos_counts(&self) -> (u64, u64) {
        (**self).chaos_counts()
    }
}

/// One `(src, dst)` channel: pending frames plus a free list of spent
/// buffers awaiting reuse.
#[derive(Debug, Default)]
struct Channel {
    ready: VecDeque<Vec<u8>>,
    free: Vec<Vec<u8>>,
}

/// Process-local [`Transport`]: a `W × W` grid of mutex-guarded ring
/// buffers with frame recycling.
///
/// Senders and receivers touch disjoint channels in the engine's superstep
/// protocol (worker `w` publishes row `w` during the publish phase and
/// drains column `w` during delivery, separated by a barrier), so the
/// per-channel mutexes are uncontended in practice; they exist so the type
/// is safely `Sync` without unsafe code.
///
/// A worker thread that panics mid-superstep poisons whatever channel lock
/// it held. Frames are plain byte vectors — the queue state is consistent
/// regardless of where the panic landed — so every operation *recovers* the
/// inner state instead of propagating the poison as a second panic:
/// `begin`/`recycle` proceed silently, while `publish`/`take` report the
/// condition as a typed [`TransportError::PeerPanicked`] so surviving
/// workers back off cleanly.
#[derive(Debug)]
pub struct RingTransport {
    workers: usize,
    cells: Vec<Mutex<Channel>>,
}

impl RingTransport {
    /// A transport connecting `workers` logical workers.
    pub fn new(workers: usize) -> Self {
        let cells = (0..workers * workers).map(|_| Mutex::new(Channel::default())).collect();
        Self { workers, cells }
    }

    /// Number of workers the grid connects.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn cell(&self, src: usize, dst: usize) -> &Mutex<Channel> {
        debug_assert!(src < self.workers && dst < self.workers);
        &self.cells[src * self.workers + dst]
    }

    /// Locks a channel, recovering the guard when a panicking peer
    /// poisoned it. Returns the guard plus whether poison was observed.
    fn lock(&self, src: usize, dst: usize) -> (MutexGuard<'_, Channel>, bool) {
        match self.cell(src, dst).lock() {
            Ok(guard) => (guard, false),
            Err(poisoned) => (poisoned.into_inner(), true),
        }
    }
}

impl Transport for RingTransport {
    fn begin(&self, src: usize, dst: usize) -> Vec<u8> {
        let (mut ch, _) = self.lock(src, dst);
        let mut buf = ch.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    fn publish(&self, src: usize, dst: usize, frame: Vec<u8>) -> Result<(), TransportError> {
        let (mut ch, poisoned) = self.lock(src, dst);
        ch.ready.push_back(frame);
        if poisoned {
            Err(TransportError::PeerPanicked { src, dst })
        } else {
            Ok(())
        }
    }

    fn take(&self, src: usize, dst: usize) -> Result<Option<Vec<u8>>, TransportError> {
        let (mut ch, poisoned) = self.lock(src, dst);
        if poisoned {
            return Err(TransportError::PeerPanicked { src, dst });
        }
        Ok(ch.ready.pop_front())
    }

    fn recycle(&self, src: usize, dst: usize, frame: Vec<u8>) {
        let (mut ch, _) = self.lock(src, dst);
        ch.free.push(frame);
    }

    fn reset(&self) {
        for cell in &self.cells {
            let mut ch = match cell.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            // Pending frames from an aborted run become free buffers —
            // contents are stale, capacity is the asset.
            while let Some(frame) = ch.ready.pop_front() {
                ch.free.push(frame);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_arrive_in_publish_order_per_channel() {
        let t = RingTransport::new(3);
        t.publish(0, 2, vec![1]).unwrap();
        t.publish(0, 2, vec![2]).unwrap();
        t.publish(1, 2, vec![9]).unwrap();
        assert_eq!(t.take(0, 2).unwrap(), Some(vec![1]));
        assert_eq!(t.take(0, 2).unwrap(), Some(vec![2]));
        assert_eq!(t.take(0, 2).unwrap(), None);
        assert_eq!(t.take(1, 2).unwrap(), Some(vec![9]));
    }

    #[test]
    fn recycled_buffers_keep_their_capacity() {
        let t = RingTransport::new(2);
        let mut frame = t.begin(0, 1);
        frame.extend_from_slice(&[0u8; 128]);
        let cap = frame.capacity();
        t.publish(0, 1, frame).unwrap();
        let frame = t.take(0, 1).unwrap().expect("published");
        t.recycle(0, 1, frame);
        let reused = t.begin(0, 1);
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "begin must reuse the recycled buffer");
    }

    #[test]
    fn channels_are_independent() {
        let t = RingTransport::new(2);
        t.publish(0, 1, vec![5]).unwrap();
        assert_eq!(t.take(1, 0).unwrap(), None, "reverse channel must be empty");
        assert_eq!(t.take(0, 0).unwrap(), None);
        assert_eq!(t.take(0, 1).unwrap(), Some(vec![5]));
    }

    #[test]
    fn reset_turns_pending_frames_into_free_buffers() {
        let t = RingTransport::new(2);
        let mut frame = t.begin(0, 1);
        frame.extend_from_slice(&[7u8; 64]);
        let cap = frame.capacity();
        t.publish(0, 1, frame).unwrap();
        t.reset();
        assert_eq!(t.take(0, 1).unwrap(), None, "reset discards pending frames");
        let reused = t.begin(0, 1);
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap, "reset must keep the buffer pooled");
    }

    /// A panicking peer poisons a channel lock; survivors get a typed
    /// error from `take`/`publish` instead of a propagated panic, and the
    /// queue state (plain bytes) stays usable for `begin`/`recycle`.
    #[test]
    fn poisoned_channel_reports_peer_panicked_not_panic() {
        let t = RingTransport::new(2);
        t.publish(0, 1, vec![1]).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = t.cell(0, 1).lock().unwrap();
            panic!("worker dies mid-superstep");
        }));
        assert!(result.is_err());
        assert_eq!(t.take(0, 1), Err(TransportError::PeerPanicked { src: 0, dst: 1 }));
        assert_eq!(
            t.publish(0, 1, vec![2]),
            Err(TransportError::PeerPanicked { src: 0, dst: 1 })
        );
        // Unrelated channels are unaffected.
        assert_eq!(t.take(1, 0).unwrap(), None);
        // begin/recycle recover silently: buffers keep flowing.
        let buf = t.begin(0, 1);
        t.recycle(0, 1, buf);
    }

    #[test]
    fn transport_error_names_its_lane_and_sender() {
        let e = TransportError::LaneDead { src: 3, dst: 1 };
        assert_eq!(e.lane(), (3, 1));
        assert_eq!(e.sender(), 3);
        assert!(e.to_string().contains("3 -> 1"));
    }
}
